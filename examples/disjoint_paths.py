"""Using correlation-subset probabilities to pick failure-disjoint paths.

Section 5.4: "Knowing these probabilities reveals which links within each
peer are actually correlated; this can be useful for computing 'disjoint'
paths to some destination, i.e., paths that are not likely to fail at the
same time."

This example monitors a dense Brite topology, fits Correlation-complete,
and then — for pairs of monitored paths — estimates the probability that
both paths are congested simultaneously, picking the pair that minimises
joint failure. A naive independence model ranks some strongly-correlated
pairs as safe; the correlation-aware model avoids them.

Run:  python examples/disjoint_paths.py
"""

from __future__ import annotations

from itertools import combinations

from repro import (
    CorrelationCompleteEstimator,
    EstimatorConfig,
    IndependenceEstimator,
    generate_brite_network,
)
from repro.simulation.experiment import run_experiment
from repro.simulation.scenarios import ScenarioConfig, ScenarioKind, build_scenario
from repro.topology.brite import BriteConfig


def joint_failure_probability(model, network, path_a, path_b) -> float:
    """P(path_a and path_b both congested) under the fitted model.

    Both paths fail together iff each traverses at least one congested
    link; we use the complementary all-good probabilities:

        P(A bad, B bad) = 1 - P(A good) - P(B good) + P(A good, B good)
    """
    links_a = network.links_covered([path_a])
    links_b = network.links_covered([path_b])
    p_a_good = model.prob_all_good(links_a)
    p_b_good = model.prob_all_good(links_b)
    p_both_good = model.prob_all_good(links_a | links_b)
    return max(0.0, 1.0 - p_a_good - p_b_good + p_both_good)


def main() -> None:
    network = generate_brite_network(
        BriteConfig(
            num_ases=16,
            as_attachment=2,
            routers_per_as=4,
            inter_as_links=2,
            num_vantage_points=3,
            num_destinations=60,
            num_paths=200,
        ),
        random_state=31,
    )
    scenario = build_scenario(
        network,
        ScenarioConfig(kind=ScenarioKind.NO_INDEPENDENCE),
        random_state=32,
    )
    experiment = run_experiment(scenario, num_intervals=800, random_state=33)
    config = EstimatorConfig(requested_subset_size=2, seed=34)

    correlated_model = CorrelationCompleteEstimator(config).fit(
        network, experiment.observations
    )
    independent_model = IndependenceEstimator(config).fit(
        network, experiment.observations
    )

    # Consider path pairs sharing a destination-side AS (plausible backup
    # candidates); score their joint failure probability both ways.
    candidates = []
    for path_a, path_b in combinations(range(network.num_paths), 2):
        last_a = network.links[network.paths[path_a].links[-1]]
        last_b = network.links[network.paths[path_b].links[-1]]
        if last_a.asn != last_b.asn or path_a == path_b:
            continue
        correlated = joint_failure_probability(
            correlated_model, network, path_a, path_b
        )
        independent = joint_failure_probability(
            independent_model, network, path_a, path_b
        )
        truth_a = network.links_covered([path_a])
        truth_b = network.links_covered([path_b])
        true_joint = (
            1.0
            - scenario.ground_truth.prob_all_good(truth_a)
            - scenario.ground_truth.prob_all_good(truth_b)
            + scenario.ground_truth.prob_all_good(truth_a | truth_b)
        )
        candidates.append((path_a, path_b, correlated, independent, true_joint))
        if len(candidates) >= 400:
            break

    if not candidates:
        print("No same-destination path pairs found; re-seed the example.")
        return

    print("Path pairs toward a shared destination AS, ranked by the")
    print("correlation-aware joint failure probability (lowest = best backup):")
    candidates.sort(key=lambda entry: entry[2])
    print(f"{'pair':<14}{'corr-aware':>12}{'independence':>14}{'true':>8}")
    for path_a, path_b, correlated, independent, true_joint in candidates[:5]:
        print(
            f"({path_a:>4},{path_b:>4}) {correlated:>11.3f} "
            f"{independent:>13.3f} {max(true_joint, 0.0):>7.3f}"
        )
    worst = max(candidates, key=lambda entry: abs(entry[2] - entry[3]))
    print(
        "\nLargest disagreement between the two models: pair "
        f"({worst[0]}, {worst[1]}): correlation-aware {worst[2]:.3f} vs "
        f"independence {worst[3]:.3f} (true {max(worst[4], 0.0):.3f})"
    )
    print("Independence underestimates joint failures of correlated paths;")
    print("the correlation-aware model is the one to trust for backups.")


if __name__ == "__main__":
    main()
