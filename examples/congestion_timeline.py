"""Tracking a peer's congestion level over the course of a day.

Section 1: the source ISP wants to know "how frequently the peer is
congested and how its congestion level changes over the course of day or
week; how well the peer reacts to exceptional situations like BGP failures,
flash crowds, or distributed denial-of-service attacks".

This example simulates a day in which one peer's links shift from quiet to
heavily congested mid-day (a flash crowd), slides a windowed
Correlation-complete estimator over the observations, and prints the
per-window congestion series with the detected change point — the
monitoring dashboard the paper's scenario calls for, built purely from
end-to-end measurements.

This is the *batch* (after-the-fact) pipeline; see
``examples/live_monitoring.py`` for the same day driven through the
streaming engine (``repro.streaming``), which refits incrementally while
the rounds arrive and raises the flash-crowd alert within one window of
its onset.

Run:  python examples/congestion_timeline.py
"""

from __future__ import annotations


from repro import EstimatorConfig, generate_brite_network
from repro.analysis.peers import build_peer_report
from repro.probability.correlation_complete import CorrelationCompleteEstimator
from repro.probability.windowed import WindowedEstimator
from repro.simulation.congestion import NonStationaryModel, build_congestion_model
from repro.simulation.probing import PathProber
from repro.topology.brite import BriteConfig


def main() -> None:
    network = generate_brite_network(
        BriteConfig(
            num_ases=14,
            as_attachment=2,
            routers_per_as=4,
            inter_as_links=2,
            num_vantage_points=4,
            num_destinations=60,
            num_paths=200,
        ),
        random_state=41,
    )
    # Pick a peer with several monitored links as the flash-crowd victim.
    links_per_asn = {}
    for link in network.links:
        links_per_asn.setdefault(link.asn, []).append(link.index)
    victim_asn, victim_links = max(links_per_asn.items(), key=lambda kv: len(kv[1]))
    background = [e for e in range(network.num_links) if e not in victim_links][:6]

    quiet = build_congestion_model(
        network,
        {**{e: 0.05 for e in victim_links}, **{e: 0.2 for e in background}},
    )
    flash_crowd = build_congestion_model(
        network,
        {**{e: 0.7 for e in victim_links}, **{e: 0.2 for e in background}},
    )
    # A "day": 6 epochs of 100 intervals; the flash crowd hits epochs 3-4.
    truth = NonStationaryModel(
        [
            (quiet, 100),
            (quiet, 100),
            (flash_crowd, 100),
            (flash_crowd, 100),
            (quiet, 100),
            (quiet, 100),
        ]
    )
    states = truth.sample(600, random_state=42)
    observations = PathProber(num_packets=2000).observe(
        network, states, random_state=43
    )

    windowed = WindowedEstimator(
        CorrelationCompleteEstimator(EstimatorConfig(seed=44)),
        window=100,
    )
    timeline = windowed.fit(network, observations)

    print(f"Monitoring {network.num_paths} paths over {network.num_links} links;")
    print(f"victim peer AS{victim_asn} with {len(victim_links)} monitored links\n")
    print("Per-window congestion level of the victim peer (worst link):")
    series = timeline.peer_series(victim_asn)
    for (start, stop), level in zip(timeline.window_spans(), series):
        bar = "#" * int(round(level * 40))
        print(f"  intervals [{start:3d},{stop:3d})  {level:.2f}  {bar}")

    worst_link = max(
        victim_links,
        key=lambda e: timeline.link_series(e).max(),
    )
    changes = timeline.change_points(worst_link, threshold=0.25)
    print(
        f"\nChange points on the victim's worst link e{worst_link}: "
        f"windows {changes} (truth: flash crowd enters at window 2, "
        "leaves at window 4)"
    )

    print("\nPeer ranking during the flash crowd (window 2):")
    report = build_peer_report(network, timeline.windows[2].model)
    print(report.to_table(top=5))


if __name__ == "__main__":
    main()
