"""Telemetry tour: watching a streaming monitor through ``repro.obs``.

A guided pass over the observability layer using the flash-crowd
monitoring scenario from ``examples/live_monitoring.py`` as the
workload. Everything shown here also works on campaigns
(``repro-tomography campaign ... `` drops ``telemetry.jsonl`` plus a
metrics snapshot next to its result JSON when ``REPRO_OBS`` is set).

The tour:

1. turn on full tracing programmatically (``use_mode``) — the
   environment equivalent is ``REPRO_OBS=trace`` with an optional
   ``REPRO_OBS_TRACE=/path/to/telemetry.jsonl`` sink;
2. stream a day of probe rounds through a :class:`StreamingEstimator`
   with alerting, exactly as a live monitor would;
3. read the metrics registry back: ingest rate, ring occupancy, refit
   latency quantiles (p50/p99), alert transitions, frequency-cache and
   kernel traffic — then export the same data as Prometheus text;
4. render the span trace as a flame-style tree and reconcile it with
   the per-stage timings the fit reports carry;
5. analyze the trace (``repro.obs.analyze``): critical-path
   decomposition of the heaviest refit, then a cross-run diff against
   a second, shorter monitoring run — the ``obs critical-path`` /
   ``obs diff`` machinery used programmatically;
6. serve the live registry over HTTP (``repro.obs.serve``) and scrape
   ``/metrics`` and ``/healthz`` exactly as Prometheus would.

Run:  python examples/telemetry_tour.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import EstimatorConfig, generate_brite_network, obs
from repro.probability.correlation_complete import CorrelationCompleteEstimator
from repro.probability.windowed import peer_link_members
from repro.simulation.congestion import NonStationaryModel, build_congestion_model
from repro.simulation.probing import PathProber, StreamingProber
from repro.streaming import AlertManager, AlertPolicy, StreamingEstimator
from repro.topology.brite import BriteConfig


def build_workload():
    """The live-monitoring scenario: a flash crowd hitting one peer."""
    network = generate_brite_network(
        BriteConfig(
            num_ases=12,
            as_attachment=2,
            routers_per_as=4,
            inter_as_links=2,
            num_vantage_points=4,
            num_destinations=50,
            num_paths=160,
        ),
        random_state=41,
    )
    members = peer_link_members(network)
    victim_asn, victim_links = max(members.items(), key=lambda kv: len(kv[1]))
    background = [e for e in range(network.num_links) if e not in victim_links][:6]
    quiet = build_congestion_model(
        network,
        {**{e: 0.05 for e in victim_links}, **{e: 0.2 for e in background}},
    )
    flash_crowd = build_congestion_model(
        network,
        {**{e: 0.7 for e in victim_links}, **{e: 0.2 for e in background}},
    )
    truth = NonStationaryModel([(quiet, 160), (flash_crowd, 160), (quiet, 160)])
    return network, truth, victim_asn


def main() -> None:
    trace_path = Path(tempfile.gettempdir()) / "telemetry_tour.jsonl"
    trace_path.unlink(missing_ok=True)
    network, truth, victim_asn = build_workload()

    # 1. Full tracing, scoped: metrics collect in the process registry
    #    and every span appends one JSONL event to the sink.
    with obs.use_mode("trace", trace_path):
        source = StreamingProber(
            network,
            truth,
            prober=PathProber(num_packets=1500),
            chunk_intervals=16,
        )
        engine = StreamingEstimator(
            network,
            CorrelationCompleteEstimator(EstimatorConfig(seed=44)),
            window=80,
            alert_manager=AlertManager(
                network,
                AlertPolicy(peer_high=0.5, peer_low=0.35, link_shift=0.25),
            ),
        )

        # 2. The monitoring loop. Instrumentation rides along: every
        #    ingest bumps the interval counter and ring-occupancy gauge,
        #    every refit lands in a latency histogram and a span.
        print(f"Streaming {480} probe rounds (flash crowd mid-run)...")
        for chunk in source.rounds(480, random_state=43):
            engine.ingest(chunk)
        obs.flush()

    print(
        f"{engine.refits} refits, {len(engine.alerts)} alerts "
        f"(victim peer AS{victim_asn})\n"
    )

    # 3. The metrics registry, three ways.
    snapshot = obs.global_registry().snapshot()
    print("=== human summary (repro-tomography obs summary) ===")
    print(obs.render_summary(snapshot))

    print("=== Prometheus exposition, streaming families only ===")
    for line in obs.render_prometheus(snapshot).splitlines():
        if "repro_streaming" in line:
            print(line)
    print()

    refit_hist = next(
        payload
        for name, _labels, payload in snapshot["histograms"]
        if name == "repro_streaming_refit_seconds"
    )
    buckets = snapshot["families"]["repro_streaming_refit_seconds"]["buckets"]
    p50 = obs.quantile_from_counts(buckets, refit_hist["counts"], 0.50)
    p99 = obs.quantile_from_counts(buckets, refit_hist["counts"], 0.99)
    print(f"refit latency: p50 ~{p50 * 1e3:.1f}ms, p99 ~{p99 * 1e3:.1f}ms\n")

    # 4. The span trace: one tree per refit, stages nested inside fits.
    events = obs.load_events(trace_path)
    problems = obs.validate_events(events)
    print(
        f"=== span trace ({len(events)} events, "
        f"{'valid' if not problems else 'INVALID'}) ==="
    )
    refits = [e for e in events if e["name"] == "streaming.refit"]
    # Render just the first refit's subtree (its fit and stages).
    wanted = {refits[0]["id"]}
    grew = True
    while grew:
        grew = False
        for e in events:
            if e.get("parent") in wanted and e["id"] not in wanted:
                wanted.add(e["id"])
                grew = True
    subtree = [e for e in events if e["id"] in wanted]
    print(obs.render_tree(subtree))
    print(f"(full trace: repro-tomography obs spans {trace_path} --tree)")

    totals = obs.aggregate_spans(events)
    heaviest = sorted(
        totals.items(), key=lambda kv: kv[1]["self_s"], reverse=True
    )[:3]
    print("\nheaviest spans by self-time:")
    for name, entry in heaviest:
        print(
            f"  {name}: {entry['self_s']:.3f}s self over "
            f"{int(entry['count'])} span(s)"
        )

    # 5. Trace analytics: where did the time go, and what changed?
    print("\n=== critical path of the heaviest refit ===")
    reports = obs.critical_paths(events, top=4)
    heaviest_refit = next(
        (r for r in reports if r.root == "streaming.refit"), reports[0]
    )
    print(obs.render_critical_paths([heaviest_refit]), end="")

    # A second, shorter run to diff against — same workload, fewer
    # rounds, so every streaming span's self-time shrinks.
    short_path = Path(tempfile.gettempdir()) / "telemetry_tour_short.jsonl"
    short_path.unlink(missing_ok=True)
    with obs.use_mode("trace", short_path):
        short_engine = StreamingEstimator(
            network,
            CorrelationCompleteEstimator(EstimatorConfig(seed=44)),
            window=80,
        )
        for chunk in StreamingProber(
            network, truth, prober=PathProber(num_packets=1500),
            chunk_intervals=16,
        ).rounds(160, random_state=43):
            short_engine.ingest(chunk)
        obs.flush()

    print("=== cross-run diff (short run -> full run) ===")
    deltas, _warnings = obs.diff_traces(short_path, trace_path)
    print(obs.render_diff(deltas, limit=6), end="")
    print(
        f"\n(same CLI: repro-tomography obs diff {short_path} {trace_path})"
    )

    # 6. Live export: serve the registry over HTTP and scrape it. The
    #    tracing scope above has exited, so re-enable metrics for the
    #    serving window — the CLI's --serve-port does the same promotion.
    from urllib.request import urlopen

    from repro.obs.serve import TelemetryServer

    with obs.use_mode("metrics"), TelemetryServer(
        status_fn=engine.telemetry_status, sample_interval=1.0
    ) as server:
        print(f"\n=== live scrape of {server.url}/metrics ===")
        with urlopen(f"{server.url}/metrics", timeout=5.0) as response:
            page = response.read().decode("utf-8")
        for line in page.splitlines():
            if "repro_process_" in line and not line.startswith("#"):
                print(line)
        with urlopen(f"{server.url}/healthz", timeout=5.0) as response:
            print(f"\n/healthz -> {response.read().decode('utf-8')}")
    print(
        "(long-running equivalents: repro-tomography obs serve --port 9109, "
        "or --serve-port on monitor/campaign)"
    )


if __name__ == "__main__":
    main()
