"""The paper's core argument in one script: shift the goal.

On the same sparse topology and the same observations, run (a) the three
Boolean-inference algorithms — which must name the congested links of every
interval — and (b) Congestion Probability Computation, which only reports
how frequently links are congested. Inference accuracy collapses on the
sparse view; the probability estimates remain useful.

Run:  python examples/inference_vs_probability.py
"""

from __future__ import annotations


from repro import (
    BayesianCorrelationInference,
    BayesianIndependenceInference,
    CorrelationCompleteEstimator,
    EstimatorConfig,
    SparsityInference,
)
from repro.metrics.boolean import evaluate_inference
from repro.metrics.probability import evaluate_estimator
from repro.simulation.experiment import run_experiment
from repro.simulation.scenarios import ScenarioConfig, ScenarioKind, build_scenario
from repro.topology.brite import BriteConfig
from repro.topology.traceroute import TracerouteConfig, generate_sparse_network


def main() -> None:
    network = generate_sparse_network(
        TracerouteConfig(
            underlay=BriteConfig(
                num_ases=60,
                as_attachment=1,
                routers_per_as=5,
                inter_as_links=1,
                num_vantage_points=2,
                num_destinations=120,
                num_paths=300,
            ),
            num_probes=1500,
            response_prob=0.95,
            max_kept_paths=220,
        ),
        random_state=21,
    )
    scenario = build_scenario(
        network, ScenarioConfig(kind=ScenarioKind.RANDOM), random_state=22
    )
    experiment = run_experiment(scenario, num_intervals=200, random_state=23)
    print(f"Sparse topology: {network.num_links} links, {network.num_paths} paths")

    config = EstimatorConfig(seed=24)
    print("\n-- Boolean Inference (per-interval congested-link sets) --")
    for algorithm in (
        SparsityInference(),
        BayesianIndependenceInference(config),
        BayesianCorrelationInference(config, random_state=24),
    ):
        metrics = evaluate_inference(algorithm, experiment)
        print(
            f"  {algorithm.name:<22} detection {metrics.detection_rate:.2f}  "
            f"false positives {metrics.false_positive_rate:.2f}"
        )
    print(
        "  -> with misses and false blames at this level, attributing a\n"
        "     specific outage to a specific peer link is not defensible."
    )

    print("\n-- Probability Computation (how often is each link congested) --")
    estimator = CorrelationCompleteEstimator(config)
    metrics = evaluate_estimator(estimator, experiment)
    print(
        f"  {estimator.name:<22} mean abs error "
        f"{metrics.mean_absolute_error:.3f} over {metrics.num_links_scored} links"
    )
    grid, cdf = metrics.cdf(points=11)
    within = cdf[1]
    print(f"  {within:.0%} of links estimated within 0.1 of their true probability")
    print(
        "  -> the operator learns how frequently each peer's links are\n"
        "     congested over the window - accurate on the same sparse view."
    )


if __name__ == "__main__":
    main()
