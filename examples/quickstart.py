"""Quickstart: the paper's Fig. 1 toy topology, end to end.

Builds the four-link topology of the paper's Fig. 1 (Case 1), makes links
e2 and e3 perfectly correlated (they share a router-level resource), runs a
monitoring experiment, and uses the paper's Correlation-complete algorithm
(Algorithm 1) to recover per-link and joint congestion probabilities from
nothing but end-to-end path observations.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import CorrelationCompleteEstimator, EstimatorConfig, fig1_topology
from repro.simulation.congestion import CongestionModel, Driver
from repro.simulation.probing import PathProber


def main() -> None:
    network = fig1_topology(case=1)
    print(f"Topology: {network}")
    print(f"Correlation sets (one per AS): {sorted(map(sorted, network.correlation_sets))}")

    # Ground truth the monitor does NOT get to see: e1 congests independently
    # with probability 0.2; e2 and e3 congest together (one shared driver)
    # with probability 0.3; e4 never congests.
    truth = CongestionModel(
        network.num_links,
        [
            Driver(probability=0.2, links=frozenset({0})),
            Driver(probability=0.3, links=frozenset({1, 2})),
        ],
    )

    # Simulate 1000 monitoring intervals with packet-level probing.
    link_states = truth.sample(1000, random_state=7)
    observations = PathProber(num_packets=2000).observe(
        network, link_states, random_state=8
    )
    print(
        f"\nObserved {observations.num_intervals} intervals over "
        f"{observations.num_paths} paths; "
        f"path congestion frequencies = {observations.path_congestion_frequency().round(2)}"
    )

    # Probability Computation: the paper's Algorithm 1.
    estimator = CorrelationCompleteEstimator(EstimatorConfig(requested_subset_size=2))
    model = estimator.fit(network, observations)
    report = model.report
    print(
        f"\nAlgorithm 1 selected {len(report.path_sets)} path sets; system "
        f"rank {report.rank} over {report.num_unknowns} unknowns "
        f"({report.num_identifiable} identifiable)"
    )

    print("\nPer-link congestion probabilities (estimated vs true):")
    for link in range(network.num_links):
        estimated = model.link_congestion_probability(link)
        actual = truth.marginal(link)
        print(f"  e{link + 1}: estimated {estimated:.3f}   true {actual:.3f}")

    print("\nJoint behaviour of the correlated pair {e2, e3}:")
    print(f"  P(both good)      estimated {model.prob_all_good([1, 2]):.3f}"
          f"   true {truth.prob_all_good([1, 2]):.3f}")
    print(f"  P(both congested) estimated {model.prob_all_congested([1, 2]):.3f}"
          f"   true {truth.prob_all_congested([1, 2]):.3f}")
    print(f"  identifiable: {model.is_identifiable([1, 2])}")


if __name__ == "__main__":
    main()
