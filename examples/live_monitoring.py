"""Live peer monitoring: the flash-crowd day, streamed.

The streaming successor of ``examples/congestion_timeline.py``: instead of
recording a full day of probe rounds and batch-fitting windows after the
fact, this example runs the monitoring loop the paper's source-ISP
scenario actually describes — a long-lived engine ingesting probe rounds
as they happen, refitting on stride boundaries over its packed ring
buffer, and raising alerts the moment a peer's congestion level shifts.

The same flash crowd hits the same victim peer mid-day; the difference is
*when* you find out: the batch pipeline reports after the day ends, the
streaming engine pages within one window of the onset. At the end the
engine state is checkpointed, the way a real monitor would persist across
restarts.

Run:  python examples/live_monitoring.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import EstimatorConfig, generate_brite_network
from repro.probability.correlation_complete import CorrelationCompleteEstimator
from repro.probability.windowed import peer_link_members
from repro.simulation.congestion import NonStationaryModel, build_congestion_model
from repro.simulation.probing import PathProber, StreamingProber
from repro.streaming import AlertManager, AlertPolicy, StreamingEstimator
from repro.streaming.checkpoint import save_checkpoint
from repro.topology.brite import BriteConfig


def main() -> None:
    network = generate_brite_network(
        BriteConfig(
            num_ases=14,
            as_attachment=2,
            routers_per_as=4,
            inter_as_links=2,
            num_vantage_points=4,
            num_destinations=60,
            num_paths=200,
        ),
        random_state=41,
    )
    # Pick a peer with several monitored links as the flash-crowd victim.
    members = peer_link_members(network)
    victim_asn, victim_links = max(members.items(), key=lambda kv: len(kv[1]))
    background = [e for e in range(network.num_links) if e not in victim_links][:6]

    quiet = build_congestion_model(
        network,
        {**{e: 0.05 for e in victim_links}, **{e: 0.2 for e in background}},
    )
    flash_crowd = build_congestion_model(
        network,
        {**{e: 0.7 for e in victim_links}, **{e: 0.2 for e in background}},
    )
    # A "day": 6 epochs of 100 intervals; the flash crowd hits epochs 3-4.
    truth = NonStationaryModel(
        [
            (quiet, 100),
            (quiet, 100),
            (flash_crowd, 100),
            (flash_crowd, 100),
            (quiet, 100),
            (quiet, 100),
        ]
    )

    # The live monitoring loop: prober -> ring buffer -> incremental refits.
    source = StreamingProber(
        network,
        truth,
        prober=PathProber(num_packets=2000),
        chunk_intervals=10,  # a batch of 10 probe rounds per ingest
    )
    engine = StreamingEstimator(
        network,
        CorrelationCompleteEstimator(EstimatorConfig(seed=44)),
        window=100,
        alert_manager=AlertManager(
            network,
            AlertPolicy(
                peer_high=0.5,
                peer_low=0.35,
                peer_shift=0.25,
                link_shift=0.25,
            ),
        ),
    )

    print(f"Monitoring {network.num_paths} paths over {network.num_links} links;")
    print(f"victim peer AS{victim_asn} with {len(victim_links)} monitored links\n")
    print("Rolling congestion level of the victim peer (worst link):")

    reported = 0
    for chunk in source.rounds(600, random_state=43):
        for estimate in engine.ingest(chunk):
            level = max(
                estimate.model.link_congestion_probability(e)
                for e in victim_links
            )
            bar = "#" * int(round(level * 40))
            print(
                f"  intervals [{estimate.start:3d},{estimate.stop:3d})"
                f"  {level:.2f}  {bar}"
            )
            for alert in engine.alerts[reported:]:
                if alert.scope == "peer" and alert.target == victim_asn:
                    print(f"    ALERT {alert.message}")
            reported = len(engine.alerts)

    print(
        f"\n{engine.refits} refits over {engine.intervals_ingested} rounds; "
        f"frequency cache {engine.cache_hits} hits / "
        f"{engine.cache_misses} misses; {len(engine.alerts)} alerts total"
    )

    shifts = [
        a.window_index
        for a in engine.alerts
        if a.kind == "level_shift" and a.scope == "peer" and a.target == victim_asn
    ]
    print(
        f"Victim peer level shifts at windows {shifts} "
        "(truth: flash crowd enters at window 2, leaves at window 4)"
    )

    checkpoint = Path(tempfile.gettempdir()) / "live_monitoring_checkpoint.json"
    save_checkpoint(engine, checkpoint)
    print(f"\nEngine state checkpointed to {checkpoint}")
    print("(restore_engine(...) resumes the stream after a restart)")


if __name__ == "__main__":
    main()
