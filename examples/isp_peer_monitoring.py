"""The paper's motivating scenario: a Tier-1 ISP monitoring its peers.

A source ISP runs a traceroute campaign toward many Internet destinations
(most traceroutes are incomplete and discarded, leaving a *sparse* AS-level
view), then monitors the surviving paths for a day and asks, per peer AS:

* how frequently is each of the peer's links congested?
* which links inside the peer congest *together* (correlated subsets)?
* which peers are the worst offenders over the monitoring window?

Boolean inference cannot answer these reliably on a sparse view (Section 3);
Congestion Probability Computation can (Sections 4-5).

Run:  python examples/isp_peer_monitoring.py
"""

from __future__ import annotations

from collections import defaultdict

from repro import CorrelationCompleteEstimator, EstimatorConfig
from repro.simulation.experiment import run_experiment
from repro.simulation.scenarios import ScenarioConfig, ScenarioKind, build_scenario
from repro.topology.brite import BriteConfig
from repro.topology.traceroute import TracerouteConfig, generate_sparse_network


def main() -> None:
    # 1. Measurement campaign: few vantage points, many destinations,
    #    non-responding routers, incomplete traceroutes discarded.
    campaign_config = TracerouteConfig(
        underlay=BriteConfig(
            num_ases=60,
            as_attachment=1,
            routers_per_as=5,
            inter_as_links=1,
            num_vantage_points=2,
            num_destinations=120,
            num_paths=300,
        ),
        num_probes=1500,
        response_prob=0.94,
        load_balance_prob=0.3,
        max_kept_paths=250,
    )
    network, campaign = generate_sparse_network(
        campaign_config, random_state=11, return_campaign=True
    )
    print(
        f"Traceroute campaign: {campaign.probes_sent} probes sent, "
        f"{campaign.incomplete_discarded} incomplete (discard rate "
        f"{campaign.discard_rate:.0%}), {network.num_paths} monitored paths "
        f"over {network.num_links} AS-level links in "
        f"{len(network.correlation_sets)} peer ASes"
    )
    print(
        "Sparse view: routing-matrix rank "
        f"{network.routing_rank()} < {network.num_links} links "
        "(Boolean inference is under-determined here)"
    )

    # 2. One day of monitoring under correlated, drifting congestion.
    scenario = build_scenario(
        network,
        ScenarioConfig(kind=ScenarioKind.NO_INDEPENDENCE, non_stationary=True),
        random_state=12,
    )
    experiment = run_experiment(scenario, num_intervals=600, random_state=13)

    # 3. Probability Computation over the whole window.
    estimator = CorrelationCompleteEstimator(
        EstimatorConfig(requested_subset_size=2, seed=14)
    )
    model = estimator.fit(network, experiment.observations)

    # 4. Rank peers by their worst link's congestion probability.
    peer_worst = defaultdict(float)
    peer_links = defaultdict(int)
    for link in network.links:
        probability = model.link_congestion_probability(link.index)
        peer_worst[link.asn] = max(peer_worst[link.asn], probability)
        peer_links[link.asn] += 1
    print("\nPeers ranked by worst-link congestion probability:")
    ranked = sorted(peer_worst.items(), key=lambda item: -item[1])[:8]
    for asn, worst in ranked:
        truth = max(
            scenario.ground_truth.marginal(link.index)
            for link in network.links
            if link.asn == asn
        )
        print(
            f"  AS{asn:<4} worst link: estimated {worst:.2f} "
            f"(true {truth:.2f}) over {peer_links[asn]} monitored links"
        )

    # 5. Correlated subsets inside peers: which links fail together?
    print("\nIdentifiable correlated link pairs inside peers "
          "(P(both congested) >= 0.05):")
    found = 0
    for subset in model.subsets:
        if len(subset) != 2 or not model.is_identifiable(subset):
            continue
        joint = model.prob_all_congested(subset)
        if joint < 0.05:
            continue
        members = sorted(subset)
        asn = network.links[members[0]].asn
        truth = scenario.ground_truth.prob_all_congested(subset)
        print(
            f"  AS{asn}: links {members} fail together with probability "
            f"{joint:.2f} (true {truth:.2f})"
        )
        found += 1
        if found >= 8:
            break
    if not found:
        print("  (none above threshold in this run)")


if __name__ == "__main__":
    main()
