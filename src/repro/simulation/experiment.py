"""Experiment driver: sample T intervals and observe paths.

Ties the ground-truth congestion model, the loss model, and the prober
together into a single reproducible run, yielding both the true link states
(for metric computation) and the path observations (the only thing the
algorithms under test may look at).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional

import numpy as np

from repro.model.status import IntervalRecord, ObservationMatrix
from repro.simulation.congestion import GroundTruth
from repro.simulation.probing import PathProber, oracle_path_status
from repro.simulation.scenarios import Scenario
from repro.topology.graph import Network
from repro.util.rng import RandomState, as_generator, derive_rng


@dataclass
class ExperimentResult:
    """Everything a metric needs about one simulated experiment.

    Attributes
    ----------
    network:
        The monitored topology.
    ground_truth:
        The congestion model that generated the run.
    link_states:
        True link states, boolean (T, num_links) — metrics only.
    observations:
        Path observations, the algorithms' sole input.
    """

    network: Network
    ground_truth: GroundTruth
    link_states: np.ndarray
    observations: ObservationMatrix

    @property
    def num_intervals(self) -> int:
        """The number of simulated intervals ``T``."""
        return self.link_states.shape[0]

    def congested_links(self, interval: int) -> FrozenSet[int]:
        """True congested link set ``E^c(t)``."""
        return frozenset(np.flatnonzero(self.link_states[interval]).tolist())

    def records(self) -> List[IntervalRecord]:
        """Per-interval (truth, observation) records."""
        return [
            IntervalRecord(
                interval=t,
                congested_links=self.congested_links(t),
                congested_paths=self.observations.congested_paths(t),
            )
            for t in range(self.num_intervals)
        ]

    def empirical_marginals(self) -> np.ndarray:
        """Realised per-link congestion frequencies over the run.

        The finite-T realisation of the ground-truth marginals; estimators
        are compared against the *model* probabilities (the paper's "actual
        congestion probability ... assigned by the simulator"), but the
        realised frequencies bound how well any estimator can possibly do.
        """
        return self.link_states.mean(axis=0)


def run_experiment(
    scenario: Scenario,
    num_intervals: int,
    prober: Optional[PathProber] = None,
    random_state: RandomState = None,
    oracle: bool = False,
) -> ExperimentResult:
    """Simulate ``num_intervals`` intervals of ``scenario``.

    Parameters
    ----------
    scenario:
        The congestion scenario (network + ground truth).
    num_intervals:
        The experiment horizon ``T`` (the paper uses 1000).
    prober:
        Packet-level monitor; a default :class:`PathProber` is used when not
        given. Ignored when ``oracle`` is true.
    random_state:
        Seed or generator; congestion sampling and probing use derived,
        independent streams.
    oracle:
        When true, observations are noise-free (path congested iff a
        traversed link is congested) — used to isolate algorithmic error.
    """
    rng = as_generator(random_state)
    link_states = scenario.ground_truth.sample(num_intervals, derive_rng(rng, 0))
    if oracle:
        observations = oracle_path_status(scenario.network, link_states)
    else:
        prober = prober or PathProber()
        observations = prober.observe(scenario.network, link_states, derive_rng(rng, 1))
    return ExperimentResult(
        network=scenario.network,
        ground_truth=scenario.ground_truth,
        link_states=link_states,
        observations=observations,
    )
