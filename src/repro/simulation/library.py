"""Scenario library: a registry of named congestion-scenario generators.

The paper evaluates on a handful of congestion regimes (Section 3.2); the
ROADMAP's north star asks for "as many scenarios as you can imagine". This
module turns scenario construction into a registry the experiment drivers
sweep: every generator is a named recipe that binds a
:class:`~repro.topology.graph.Network` to a
:class:`~repro.simulation.congestion.GroundTruth`, producing a
:class:`~repro.simulation.scenarios.Scenario` the estimators, the
streaming engine, and the parallel runner all consume unchanged.

Registered generators:

* the four **classic** regimes of Section 3.2 (``random``,
  ``concentrated``, ``no_independence``, ``no_stationarity``), delegating
  to :func:`~repro.simulation.scenarios.build_scenario`;
* ``diurnal`` — time-of-day marginals: congestion probabilities follow a
  day-shaped cycle (piecewise-stationary epochs on a raised-cosine curve);
* ``gravity`` — load-induced congestion: a gravity traffic model routed
  over the monitored paths determines which links congest, and how much;
* ``cascade`` — cascading correlated failures: chained link groups fail
  together, each group overlapping the previous one;
* ``flash_crowd`` — a destination hotspot: quiet background congestion
  punctuated by spikes on every link feeding one popular destination;
* ``maintenance`` — maintenance-window non-stationarity: one peer AS's
  links degrade heavily during scheduled windows, and recover.

Generators declare what topology structure they need (``supports``), so
registry-driven sweeps can skip impossible (dataset, scenario) combos —
e.g. ``no_independence`` on an AS-relationship graph with no shared
router-level links — instead of failing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Tuple

import numpy as np

from repro.exceptions import ScenarioError
from repro.simulation.congestion import (
    CongestionModel,
    Driver,
    GroundTruth,
    NonStationaryModel,
    build_congestion_model,
)
from repro.simulation.scenarios import (
    Scenario,
    ScenarioConfig,
    ScenarioKind,
    build_scenario,
    select_random_links,
    target_count,
)
from repro.topology.graph import Network
from repro.util.rng import RandomState, as_generator

#: A generator body: (network, rng, params) -> (ground truth, congestable).
BuilderFn = Callable[
    [Network, np.random.Generator, Dict[str, Any]],
    Tuple[GroundTruth, frozenset],
]


@dataclass(frozen=True)
class ScenarioGenerator:
    """One named scenario recipe.

    Attributes
    ----------
    name:
        Registry key (also the default scenario label).
    description:
        One-line summary shown by ``repro-tomography scenarios list``.
    builder:
        The generator body; receives the merged parameters.
    defaults:
        Parameter defaults; overrides outside this set are rejected, so
        sweep specs fail fast on typos.
    needs_correlated_groups:
        Whether the placement requires AS-level links sharing router-level
        links (the No-Independence family).
    non_stationary:
        Whether the ground truth varies over time (informational).
    """

    name: str
    description: str
    builder: BuilderFn
    defaults: Mapping[str, Any] = field(default_factory=dict)
    needs_correlated_groups: bool = False
    non_stationary: bool = False

    def supports(self, network: Network) -> bool:
        """Whether this generator can run on ``network``."""
        if self.needs_correlated_groups and not network.shared_router_links():
            return False
        return True

    def build(
        self,
        network: Network,
        random_state: RandomState = None,
        name: str = "",
        **overrides: Any,
    ) -> Scenario:
        """Instantiate the scenario on ``network``.

        Raises
        ------
        ScenarioError
            On unknown parameter overrides or when the topology lacks the
            required structure (see :meth:`supports`).
        """
        unknown = set(overrides) - set(self.defaults)
        if unknown:
            raise ScenarioError(
                f"scenario {self.name!r} has no parameters {sorted(unknown)}; "
                f"known parameters: {sorted(self.defaults)}"
            )
        if not self.supports(network):
            raise ScenarioError(
                f"scenario {self.name!r} requires correlated link groups, "
                f"and topology {network.name!r} has none"
            )
        params = {**self.defaults, **overrides}
        rng = as_generator(random_state)
        ground_truth, congestable = self.builder(network, rng, params)
        return Scenario(
            name=name or self.name,
            network=network,
            ground_truth=ground_truth,
            congestable=congestable,
        )


#: All registered scenario generators by name.
SCENARIOS: Dict[str, ScenarioGenerator] = {}


def register_scenario(
    generator: ScenarioGenerator, replace_existing: bool = False
) -> None:
    """Register a generator; re-registration requires ``replace_existing``."""
    if generator.name in SCENARIOS and not replace_existing:
        raise ScenarioError(f"scenario {generator.name!r} is already registered")
    SCENARIOS[generator.name] = generator


def scenario_names() -> List[str]:
    """Registered scenario names, sorted."""
    return sorted(SCENARIOS)


def get_scenario(name: str) -> ScenarioGenerator:
    """Look up a registered generator; raises with the known names."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r}; known scenarios: {scenario_names()}"
        ) from None


def build_named_scenario(
    name: str,
    network: Network,
    random_state: RandomState = None,
    **overrides: Any,
) -> Scenario:
    """Build a registered scenario by name (see :class:`ScenarioGenerator`)."""
    return get_scenario(name).build(network, random_state, **overrides)


# ----------------------------------------------------------------------
# Classic regimes (Section 3.2), delegated to build_scenario
# ----------------------------------------------------------------------
_CLASSIC_DEFAULTS: Dict[str, Any] = {
    "congestable_fraction": 0.1,
    "correlation_strength": 0.95,
    "min_marginal": 0.05,
    "max_marginal": 0.95,
    "epoch_length": 25,
    "num_epochs": 8,
    "non_stationary": None,
}


def _classic_builder(kind: ScenarioKind) -> BuilderFn:
    def build(
        network: Network, rng: np.random.Generator, params: Dict[str, Any]
    ) -> Tuple[GroundTruth, frozenset]:
        scenario = build_scenario(network, ScenarioConfig(kind=kind, **params), rng)
        return scenario.ground_truth, scenario.congestable

    return build


def _uniform_marginals(
    links: List[int],
    low: float,
    high: float,
    rng: np.random.Generator,
) -> Dict[int, float]:
    values = rng.uniform(low, high, size=len(links))
    return {int(e): float(p) for e, p in zip(links, values)}


# ----------------------------------------------------------------------
# Diurnal: time-of-day marginals
# ----------------------------------------------------------------------
def _build_diurnal(
    network: Network, rng: np.random.Generator, params: Dict[str, Any]
) -> Tuple[GroundTruth, frozenset]:
    """Day-shaped congestion: marginals follow a raised-cosine daily curve.

    Base marginals are drawn once (the "busy-hour" level); epoch ``i`` of
    ``num_epochs`` scales them by ``trough + (1 - trough) *
    (1 - cos(2 pi i / num_epochs)) / 2`` — the off-peak factor bottoms out
    at ``trough`` and returns to 1.0 at the daily peak.
    """
    count = target_count(network, params["congestable_fraction"])
    links = select_random_links(network, count, rng)
    base = _uniform_marginals(
        links, params["min_marginal"], params["max_marginal"], rng
    )
    epochs = []
    num_epochs = int(params["num_epochs"])
    for epoch in range(num_epochs):
        factor = params["trough"] + (1.0 - params["trough"]) * 0.5 * (
            1.0 - math.cos(2.0 * math.pi * epoch / num_epochs)
        )
        marginals = {e: p * factor for e, p in base.items()}
        epochs.append(
            (
                build_congestion_model(
                    network, marginals, params["correlation_strength"]
                ),
                int(params["epoch_length"]),
            )
        )
    return NonStationaryModel(epochs), frozenset(links)


# ----------------------------------------------------------------------
# Gravity: load-induced congestion
# ----------------------------------------------------------------------
def _build_gravity(
    network: Network, rng: np.random.Generator, params: Dict[str, Any]
) -> Tuple[GroundTruth, frozenset]:
    """Congestion where gravity-model traffic concentrates.

    Endpoint masses are vertex degrees (links incident to the vertex);
    each monitored path carries gravity demand ``mass(src) * mass(dst)``,
    and per-link load is the demand routed over it. The top
    ``congestable_fraction`` most-loaded links congest, with marginals
    interpolated between ``min_marginal`` and ``max_marginal`` by
    normalised load raised to ``gamma``.
    """
    mass: Dict[int, float] = {}
    for link in network.links:
        mass[link.src] = mass.get(link.src, 0.0) + 1.0
        mass[link.dst] = mass.get(link.dst, 0.0) + 1.0
    demands = np.array(
        [
            mass[network.links[path.links[0]].src]
            * mass[network.links[path.links[-1]].dst]
            for path in network.paths
        ],
        dtype=float,
    )
    load = network.incidence.astype(float).T @ demands
    count = target_count(network, params["congestable_fraction"])
    # Random permutation breaks load ties so different seeds can pick
    # different links among equally-loaded candidates.
    jitter = rng.permutation(network.num_links)
    order = sorted(range(network.num_links), key=lambda e: (-load[e], jitter[e]))
    links = sorted(order[:count])
    peak = float(load[links].max()) if links else 1.0
    if peak <= 0.0:
        raise ScenarioError("gravity scenario: monitored paths carry no load")
    span = params["max_marginal"] - params["min_marginal"]
    marginals = {
        int(e): params["min_marginal"]
        + span * (float(load[e]) / peak) ** params["gamma"]
        for e in links
    }
    model = build_congestion_model(network, marginals, params["correlation_strength"])
    return model, frozenset(links)


# ----------------------------------------------------------------------
# Cascade: chained correlated-failure groups
# ----------------------------------------------------------------------
def _link_adjacency(network: Network) -> Dict[int, List[int]]:
    """Links sharing a vertex, in deterministic order."""
    by_vertex: Dict[int, List[int]] = {}
    for link in network.links:
        by_vertex.setdefault(link.src, []).append(link.index)
        by_vertex.setdefault(link.dst, []).append(link.index)
    adjacency: Dict[int, List[int]] = {e: [] for e in range(network.num_links)}
    for members in by_vertex.values():
        for e in members:
            for other in members:
                if other != e and other not in adjacency[e]:
                    adjacency[e].append(other)
    return adjacency


def _build_cascade(
    network: Network, rng: np.random.Generator, params: Dict[str, Any]
) -> Tuple[GroundTruth, frozenset]:
    """Cascading correlated failures: chained groups congest together.

    ``num_groups`` failure groups of ``group_size`` topologically-adjacent
    links are grown by BFS over the link-adjacency graph; each group after
    the first is seeded from a member of the previous one, so failures
    cascade along the topology and neighbouring groups stay correlated.
    Every group gets one shared Bernoulli driver; members also get a small
    private driver (``base_marginal``) so no link is perfectly predictable
    from its group.
    """
    adjacency = _link_adjacency(network)
    num_groups = int(params["num_groups"])
    group_size = int(params["group_size"])
    groups: List[List[int]] = []
    claimed: set = set()
    seed_pool = list(range(network.num_links))
    previous: List[int] = []
    for _ in range(num_groups):
        if previous:
            frontier = [
                e
                for member in previous
                for e in adjacency[member]
                if e not in claimed
            ]
            candidates = frontier or [e for e in seed_pool if e not in claimed]
        else:
            candidates = [e for e in seed_pool if e not in claimed]
        if not candidates:
            break
        seed_link = int(candidates[int(rng.integers(0, len(candidates)))])
        group = [seed_link]
        claimed.add(seed_link)
        queue = list(adjacency[seed_link])
        while queue and len(group) < group_size:
            candidate = queue.pop(0)
            if candidate in claimed:
                continue
            claimed.add(candidate)
            group.append(candidate)
            queue.extend(adjacency[candidate])
        groups.append(sorted(group))
        previous = group
    if not groups:
        raise ScenarioError("cascade scenario: no failure groups could be formed")

    drivers: List[Driver] = []
    for group in groups:
        probability = float(
            rng.uniform(
                0.5 * params["group_probability"],
                min(1.5 * params["group_probability"], 0.9),
            )
        )
        drivers.append(Driver(probability=probability, links=frozenset(group)))
    congestable = sorted(claimed)
    if params["base_marginal"] > 0.0:
        for e in congestable:
            drivers.append(
                Driver(
                    probability=params["base_marginal"],
                    links=frozenset({e}),
                )
            )
    return (
        CongestionModel(network.num_links, drivers),
        frozenset(congestable),
    )


# ----------------------------------------------------------------------
# Flash crowd: destination hotspot spikes
# ----------------------------------------------------------------------
def _build_flash_crowd(
    network: Network, rng: np.random.Generator, params: Dict[str, Any]
) -> Tuple[GroundTruth, frozenset]:
    """Flash crowd toward one destination: quiet background, hot spikes.

    A hotspot destination vertex is drawn weighted by how many monitored
    paths terminate there; the links of those paths are the hot set.
    Quiet epochs carry only light random background congestion; spike
    epochs add ``spike_marginal`` congestion on every hot link (the flash
    crowd overloading the whole path bundle into the destination).
    """
    terminal_counts: Dict[int, int] = {}
    for path in network.paths:
        vertex = network.links[path.links[-1]].dst
        terminal_counts[vertex] = terminal_counts.get(vertex, 0) + 1
    vertices = sorted(terminal_counts)
    weights = np.array([terminal_counts[v] for v in vertices], dtype=float)
    hotspot = int(vertices[int(rng.choice(len(vertices), p=weights / weights.sum()))])
    hot_links = sorted(
        {
            e
            for path in network.paths
            if network.links[path.links[-1]].dst == hotspot
            for e in path.links
        }
    )
    count = target_count(network, params["background_fraction"])
    background = select_random_links(network, count, rng)
    quiet = _uniform_marginals(
        background, params["min_marginal"], params["background_max"], rng
    )
    spiky = dict(quiet)
    for e in hot_links:
        spiky[e] = max(spiky.get(e, 0.0), params["spike_marginal"])
    strength = params["correlation_strength"]
    epochs = [
        (
            build_congestion_model(network, quiet, strength),
            int(params["quiet_length"]),
        ),
        (
            build_congestion_model(network, spiky, strength),
            int(params["spike_length"]),
        ),
    ]
    return (
        NonStationaryModel(epochs),
        frozenset(background) | frozenset(hot_links),
    )


# ----------------------------------------------------------------------
# Maintenance window: one peer AS degrades on schedule
# ----------------------------------------------------------------------
def _build_maintenance(
    network: Network, rng: np.random.Generator, params: Dict[str, Any]
) -> Tuple[GroundTruth, frozenset]:
    """Scheduled maintenance: one AS's links degrade during the window.

    A peer AS (correlation set) is drawn at random; normal epochs carry
    light random background congestion, and during the maintenance window
    every link of the chosen AS congests with ``maintenance_marginal``
    probability (rerouting load while capacity is withdrawn).
    """
    sets = network.correlation_sets
    maintained = sorted(sets[int(rng.integers(0, len(sets)))])
    count = target_count(network, params["background_fraction"])
    background = select_random_links(network, count, rng)
    normal = _uniform_marginals(
        background, params["min_marginal"], params["background_max"], rng
    )
    window = dict(normal)
    for e in maintained:
        window[e] = max(window.get(e, 0.0), params["maintenance_marginal"])
    strength = params["correlation_strength"]
    epochs = [
        (
            build_congestion_model(network, normal, strength),
            int(params["normal_length"]),
        ),
        (
            build_congestion_model(network, window, strength),
            int(params["window_length"]),
        ),
    ]
    return (
        NonStationaryModel(epochs),
        frozenset(background) | frozenset(maintained),
    )


# ----------------------------------------------------------------------
# Registrations
# ----------------------------------------------------------------------
register_scenario(
    ScenarioGenerator(
        name="random",
        description="Random Congestion: congestable links chosen uniformly",
        builder=_classic_builder(ScenarioKind.RANDOM),
        defaults=dict(_CLASSIC_DEFAULTS),
    )
)
register_scenario(
    ScenarioGenerator(
        name="concentrated",
        description="Concentrated Congestion: congestion at the network edge",
        builder=_classic_builder(ScenarioKind.CONCENTRATED),
        defaults=dict(_CLASSIC_DEFAULTS),
    )
)
register_scenario(
    ScenarioGenerator(
        name="no_independence",
        description="No Independence: every congestable link is correlated",
        builder=_classic_builder(ScenarioKind.NO_INDEPENDENCE),
        defaults=dict(_CLASSIC_DEFAULTS),
        needs_correlated_groups=True,
    )
)
register_scenario(
    ScenarioGenerator(
        name="no_stationarity",
        description="No Stationarity: correlated links, probabilities re-drawn",
        builder=_classic_builder(ScenarioKind.NO_STATIONARITY),
        defaults=dict(_CLASSIC_DEFAULTS),
        needs_correlated_groups=True,
        non_stationary=True,
    )
)
register_scenario(
    ScenarioGenerator(
        name="diurnal",
        description="Diurnal cycle: marginals follow a time-of-day curve",
        builder=_build_diurnal,
        defaults={
            "congestable_fraction": 0.1,
            "correlation_strength": 0.95,
            "min_marginal": 0.1,
            "max_marginal": 0.9,
            "trough": 0.25,
            "num_epochs": 8,
            "epoch_length": 25,
        },
        non_stationary=True,
    )
)
register_scenario(
    ScenarioGenerator(
        name="gravity",
        description="Gravity model: congestion where routed load concentrates",
        builder=_build_gravity,
        defaults={
            "congestable_fraction": 0.15,
            "correlation_strength": 0.95,
            "min_marginal": 0.05,
            "max_marginal": 0.9,
            "gamma": 1.0,
        },
    )
)
register_scenario(
    ScenarioGenerator(
        name="cascade",
        description="Cascading failures: chained correlated link groups",
        builder=_build_cascade,
        defaults={
            "num_groups": 3,
            "group_size": 4,
            "group_probability": 0.25,
            "base_marginal": 0.05,
        },
    )
)
register_scenario(
    ScenarioGenerator(
        name="flash_crowd",
        description="Flash crowd: spikes on all links feeding a hot destination",
        builder=_build_flash_crowd,
        defaults={
            "background_fraction": 0.1,
            "background_max": 0.3,
            "min_marginal": 0.02,
            "spike_marginal": 0.85,
            "quiet_length": 30,
            "spike_length": 10,
            "correlation_strength": 0.95,
        },
        non_stationary=True,
    )
)
register_scenario(
    ScenarioGenerator(
        name="maintenance",
        description="Maintenance window: one peer AS degrades on schedule",
        builder=_build_maintenance,
        defaults={
            "background_fraction": 0.1,
            "background_max": 0.4,
            "min_marginal": 0.02,
            "maintenance_marginal": 0.8,
            "normal_length": 40,
            "window_length": 12,
            "correlation_strength": 0.95,
        },
        non_stationary=True,
    )
)
