"""Ground-truth congestion model with exact joint probabilities.

The paper's simulator (Section 3.2) assigns each link a congestion
probability and correlates links that share underlying router-level links.
We realise both with independent Bernoulli *drivers*:

* one **shared driver** per router-level link that underlies two or more
  logical links — when it fires, every logical link on top of it is
  congested simultaneously ("if a router-level link becomes congested, then
  all the AS-level links that share this router-level link become congested
  at the same time");
* one **private driver** per congestable logical link, calibrated so the
  link's marginal congestion probability matches its assigned target.

Because drivers are mutually independent and a link is congested iff any of
its drivers fires, the probability that *all* links of a set ``S`` are good
is a closed-form product over the drivers touching ``S``:

    P(all of S good) = prod_{d : links(d) intersects S} (1 - q_d)

which gives exact ground truth for every quantity the estimators compute —
including the congestion probability of any link set via inclusion-exclusion.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.exceptions import ScenarioError
from repro.topology.graph import Network
from repro.util.rng import RandomState, as_generator


@dataclass(frozen=True)
class Driver:
    """An independent Bernoulli congestion cause.

    Attributes
    ----------
    probability:
        Per-interval firing probability ``q_d``.
    links:
        Logical links congested when the driver fires.
    """

    probability: float
    links: FrozenSet[int]

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ScenarioError(f"driver probability {self.probability} out of [0, 1]")
        if not self.links:
            raise ScenarioError("driver must affect at least one link")


class GroundTruth:
    """Interface shared by stationary and non-stationary ground truths."""

    num_links: int

    def marginal(self, link: int) -> float:
        """True congestion probability ``P(X_e = 1)`` of ``link``."""
        raise NotImplementedError

    def prob_all_good(self, links: Iterable[int]) -> float:
        """True ``P(all links in the set are good)``."""
        raise NotImplementedError

    def prob_all_congested(self, links: Iterable[int]) -> float:
        """True ``P(all links in the set are congested)`` (the paper's
        *congestion probability* of a link set), via inclusion-exclusion:

            P(all S congested) = sum_{A subset S} (-1)^|A| P(all A good)
        """
        members = sorted(set(links))
        total = 0.0
        for size in range(len(members) + 1):
            for subset in combinations(members, size):
                total += (-1.0) ** size * self.prob_all_good(subset)
        # Clamp tiny negative values from floating-point cancellation.
        return max(total, 0.0)

    def congestable_links(self) -> FrozenSet[int]:
        """Links with a non-zero congestion probability."""
        raise NotImplementedError

    def sample(self, num_intervals: int, random_state: RandomState = None) -> np.ndarray:
        """Draw link states; boolean matrix of shape (T, num_links)."""
        raise NotImplementedError

    def sample_stream(
        self,
        chunk_intervals: int,
        random_state: RandomState = None,
    ) -> "Iterator[np.ndarray]":
        """Endless stream of link-state blocks of ``chunk_intervals`` rows.

        The streaming monitor's ground-truth source: unlike repeated
        :meth:`sample` calls, the stream carries sampling state across
        chunks (epoch phase for non-stationary truths), so concatenating
        the yielded blocks reproduces one long :meth:`sample` draw from the
        same generator regardless of how the horizon is chunked.
        """
        if chunk_intervals < 1:
            raise ScenarioError("chunk_intervals must be >= 1")
        rng = as_generator(random_state)
        while True:
            yield self.sample(chunk_intervals, rng)


class CongestionModel(GroundTruth):
    """Stationary driver-based ground truth.

    Parameters
    ----------
    num_links:
        Total number of logical links in the network.
    drivers:
        The independent Bernoulli drivers. Drivers with probability 0 are
        dropped.
    """

    def __init__(self, num_links: int, drivers: Sequence[Driver]) -> None:
        self.num_links = num_links
        self.drivers: List[Driver] = [d for d in drivers if d.probability > 0.0]
        for driver in self.drivers:
            for link in driver.links:
                if not 0 <= link < num_links:
                    raise ScenarioError(f"driver references unknown link {link}")
        self._incidence = np.zeros((len(self.drivers), num_links), dtype=bool)
        for row, driver in enumerate(self.drivers):
            self._incidence[row, sorted(driver.links)] = True
        self._survival = np.array(
            [1.0 - d.probability for d in self.drivers], dtype=float
        )

    # ------------------------------------------------------------------
    def marginal(self, link: int) -> float:
        touching = self._incidence[:, link]
        if not touching.any():
            return 0.0
        return 1.0 - float(np.prod(self._survival[touching]))

    def marginals(self) -> np.ndarray:
        """All per-link congestion probabilities, shape (num_links,)."""
        return np.array([self.marginal(e) for e in range(self.num_links)])

    def prob_all_good(self, links: Iterable[int]) -> float:
        members = sorted(set(links))
        if not members:
            return 1.0
        touching = self._incidence[:, members].any(axis=1)
        if not touching.any():
            return 1.0
        return float(np.prod(self._survival[touching]))

    def congestable_links(self) -> FrozenSet[int]:
        if not self.drivers:
            return frozenset()
        return frozenset(np.flatnonzero(self._incidence.any(axis=0)).tolist())

    def sample(self, num_intervals: int, random_state: RandomState = None) -> np.ndarray:
        rng = as_generator(random_state)
        if not self.drivers:
            return np.zeros((num_intervals, self.num_links), dtype=bool)
        fires = rng.random((num_intervals, len(self.drivers))) < (1.0 - self._survival)
        return fires @ self._incidence.astype(np.uint8) > 0

    def correlated_groups(self) -> List[FrozenSet[int]]:
        """Link groups congested together by a shared driver (size >= 2)."""
        return [d.links for d in self.drivers if len(d.links) >= 2]


class NonStationaryModel(GroundTruth):
    """Piecewise-stationary ground truth: one stationary model per epoch.

    The paper's "No Stationarity" scenario re-draws link congestion
    probabilities "every few time intervals". The quantity a Probability
    Computation algorithm should recover over ``T`` intervals is the
    *time-averaged* probability (Section 4: the result "concerns the average
    behavior of the link over the T time intervals"), which this class
    exposes through the :class:`GroundTruth` interface as epoch-weighted
    averages.
    """

    def __init__(self, epochs: Sequence[Tuple[CongestionModel, int]]) -> None:
        if not epochs:
            raise ScenarioError("NonStationaryModel requires at least one epoch")
        lengths = [length for _, length in epochs]
        if any(length <= 0 for length in lengths):
            raise ScenarioError("epoch lengths must be positive")
        num_links = {model.num_links for model, _ in epochs}
        if len(num_links) != 1:
            raise ScenarioError("all epochs must cover the same link set")
        self.num_links = num_links.pop()
        self.epochs: List[Tuple[CongestionModel, int]] = list(epochs)
        self._total = sum(lengths)

    def _weighted(self, value_of) -> float:
        return (
            sum(value_of(model) * length for model, length in self.epochs)
            / self._total
        )

    def marginal(self, link: int) -> float:
        return self._weighted(lambda m: m.marginal(link))

    def prob_all_good(self, links: Iterable[int]) -> float:
        members = sorted(set(links))
        return self._weighted(lambda m: m.prob_all_good(members))

    def congestable_links(self) -> FrozenSet[int]:
        result: FrozenSet[int] = frozenset()
        for model, _ in self.epochs:
            result = result | model.congestable_links()
        return result

    def sample(self, num_intervals: int, random_state: RandomState = None) -> np.ndarray:
        rng = as_generator(random_state)
        blocks: List[np.ndarray] = []
        produced = 0
        epoch_index = 0
        while produced < num_intervals:
            model, length = self.epochs[epoch_index % len(self.epochs)]
            take = min(length, num_intervals - produced)
            blocks.append(model.sample(take, rng))
            produced += take
            epoch_index += 1
        return np.vstack(blocks)

    def sample_stream(
        self,
        chunk_intervals: int,
        random_state: RandomState = None,
    ) -> Iterator[np.ndarray]:
        """Epoch-stateful chunked sampling (see :meth:`GroundTruth.sample_stream`).

        The epoch cursor persists across yielded chunks, so the stream walks
        the epoch schedule exactly once end to end — chunk boundaries never
        reset the phase the way repeated :meth:`sample` calls would.
        """
        if chunk_intervals < 1:
            raise ScenarioError("chunk_intervals must be >= 1")
        rng = as_generator(random_state)
        epoch_index = 0
        remaining = self.epochs[0][1]
        while True:
            blocks: List[np.ndarray] = []
            produced = 0
            while produced < chunk_intervals:
                model, _ = self.epochs[epoch_index % len(self.epochs)]
                take = min(remaining, chunk_intervals - produced)
                blocks.append(model.sample(take, rng))
                produced += take
                remaining -= take
                if remaining == 0:
                    epoch_index += 1
                    remaining = self.epochs[epoch_index % len(self.epochs)][1]
            yield blocks[0] if len(blocks) == 1 else np.vstack(blocks)

    def correlated_groups(self) -> List[FrozenSet[int]]:
        """Union of per-epoch correlated groups."""
        groups = set()
        for model, _ in self.epochs:
            groups.update(model.correlated_groups())
        return sorted(groups, key=sorted)


def build_congestion_model(
    network: Network,
    target_marginals: Dict[int, float],
    correlation_strength: float = 0.8,
) -> CongestionModel:
    """Build a driver model matching per-link marginals and topology-induced
    correlations.

    For every router-level link shared by two or more *congestable* logical
    links, a shared driver is created with firing probability
    ``correlation_strength * min(target marginal among the sharers)``; each
    congestable link then receives a private driver calibrated so that its
    total marginal matches ``target_marginals[link]`` exactly:

        1 - p_e = (1 - q_private) * prod_{shared drivers d of e} (1 - q_d)

    Parameters
    ----------
    network:
        Supplies the shared-router-link structure.
    target_marginals:
        Map from congestable link index to its congestion probability; links
        absent from the map are never congested (probability 0), matching
        the paper's setup where only 10% of links are congestable.
    correlation_strength:
        Fraction of the weakest sharer's marginal carried by each shared
        driver; 0 disables correlations, values near 1 make sharers almost
        perfectly correlated.

    Raises
    ------
    ScenarioError
        If a target marginal is outside [0, 1) or calibration fails.
    """
    if not 0.0 <= correlation_strength <= 1.0:
        raise ScenarioError("correlation_strength must be in [0, 1]")
    for link, probability in target_marginals.items():
        if not 0.0 <= probability < 1.0:
            raise ScenarioError(
                f"target marginal {probability} for link {link} outside [0, 1)"
            )
    congestable = {e for e, p in target_marginals.items() if p > 0.0}
    drivers: List[Driver] = []
    shared_survival: Dict[int, float] = {e: 1.0 for e in congestable}
    if correlation_strength > 0.0:
        for members in network.shared_router_links().values():
            sharers = frozenset(members & congestable)
            if len(sharers) < 2:
                continue
            q_shared = correlation_strength * min(target_marginals[e] for e in sharers)
            # Cap so the private driver can still reach the exact marginal.
            limit = min(
                1.0 - (1.0 - target_marginals[e]) / shared_survival[e]
                for e in sharers
            )
            q_shared = min(q_shared, max(limit, 0.0))
            if q_shared <= 0.0:
                continue
            drivers.append(Driver(probability=q_shared, links=sharers))
            for e in sharers:
                shared_survival[e] *= 1.0 - q_shared
    for link in sorted(congestable):
        target = target_marginals[link]
        residual_survival = (1.0 - target) / shared_survival[link]
        q_private = 1.0 - residual_survival
        if q_private < -1e-12:
            raise ScenarioError(
                f"cannot calibrate link {link}: shared drivers exceed marginal"
            )
        q_private = min(max(q_private, 0.0), 1.0)
        if q_private > 0.0:
            drivers.append(Driver(probability=q_private, links=frozenset({link})))
    return CongestionModel(network.num_links, drivers)
