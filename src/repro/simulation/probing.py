"""End-to-end path probing (Assumption 2: E2E Monitoring).

Section 3.2: "In each interval, packets are sent along each path; for each
packet that arrives at a given link, we flip a biased coin to determine
whether it will be dropped or not, such that we respect the packet-loss rate
assigned to the link".

A path delivers a packet iff every link forwards it; per-link drops are
independent coin flips, so the delivered count over ``num_packets`` probes is
Binomial(num_packets, prod(1 - loss_e)). We sample that binomial directly
(statistically identical to looping over packets and links, but vectorised).
The path is declared congested when its measured loss exceeds the good-path
bound ``1 - (1-f)^d`` for its hop count ``d`` — this is where E2E monitoring
false positives/negatives enter, exactly as the paper warns.

:func:`oracle_path_status` provides the noise-free alternative (a path is
congested iff it traverses a congested link), used by tests to isolate
algorithmic error from measurement error.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ScenarioError
from repro.model.status import ObservationMatrix
from repro.simulation.loss import LossModel
from repro.topology.graph import Network
from repro.util.rng import RandomState, as_generator


def oracle_path_status(network: Network, link_states: np.ndarray) -> ObservationMatrix:
    """Perfect observations: path congested iff some traversed link is.

    This is Separability (Assumption 1) applied with a perfect monitor; it
    bypasses packet sampling entirely.
    """
    link_states = np.asarray(link_states, dtype=bool)
    congested = link_states @ network.incidence.T.astype(np.uint8) > 0
    return ObservationMatrix(congested)


@dataclass
class PathProber:
    """Packet-level path monitor.

    Attributes
    ----------
    num_packets:
        Probe packets sent along each path in each interval.
    loss_model:
        Supplies per-link loss rates and the per-path good threshold.
    """

    num_packets: int = 1000
    loss_model: LossModel = field(default_factory=LossModel)

    def __post_init__(self) -> None:
        if self.num_packets < 1:
            raise ScenarioError("num_packets must be >= 1")

    def observe(
        self,
        network: Network,
        link_states: np.ndarray,
        random_state: RandomState = None,
    ) -> ObservationMatrix:
        """Probe every path in every interval and classify good/congested.

        Parameters
        ----------
        network:
            Supplies the incidence structure and path lengths.
        link_states:
            Boolean ground-truth matrix (T, num_links).
        random_state:
            Randomness for loss-rate draws and packet delivery.
        """
        link_states = np.asarray(link_states, dtype=bool)
        if link_states.shape[1] != network.num_links:
            raise ScenarioError(
                "link_states width does not match the network's link count"
            )
        rng = as_generator(random_state)
        loss = self.loss_model.assign(link_states, rng)
        # Per-path transmission rate: product of (1 - loss) over traversed
        # links, computed in log space against the incidence matrix.
        log_forward = np.log1p(-np.clip(loss, 0.0, 1.0 - 1e-12))
        path_log_rate = log_forward @ network.incidence.T.astype(float)
        rates = np.exp(path_log_rate)
        delivered = rng.binomial(self.num_packets, rates)
        measured_loss = 1.0 - delivered / float(self.num_packets)
        lengths = network.path_lengths()
        thresholds = np.array(
            [self.loss_model.path_good_threshold(int(d)) for d in lengths]
        )
        congested = measured_loss > thresholds[None, :]
        return ObservationMatrix(congested)
