"""End-to-end path probing (Assumption 2: E2E Monitoring).

Section 3.2: "In each interval, packets are sent along each path; for each
packet that arrives at a given link, we flip a biased coin to determine
whether it will be dropped or not, such that we respect the packet-loss rate
assigned to the link".

A path delivers a packet iff every link forwards it; per-link drops are
independent coin flips, so the delivered count over ``num_packets`` probes is
Binomial(num_packets, prod(1 - loss_e)). We sample that binomial directly
(statistically identical to looping over packets and links, but vectorised).
The path is declared congested when its measured loss exceeds the good-path
bound ``1 - (1-f)^d`` for its hop count ``d`` — this is where E2E monitoring
false positives/negatives enter, exactly as the paper warns.

:func:`oracle_path_status` provides the noise-free alternative (a path is
congested iff it traverses a congested link), used by tests to isolate
algorithmic error from measurement error.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ScenarioError
from repro.model.packed import PackedBackend, pack_bool_matrix
from repro.model.status import ObservationMatrix
from repro.simulation.loss import LossModel
from repro.topology.graph import Network
from repro.util.rng import RandomState, as_generator

#: Interval block size for chunked packed emission (a multiple of 64 so
#: chunk word boundaries align). Horizons at or below this are simulated in
#: one pass; longer horizons never materialise the full dense matrix.
EMIT_CHUNK_INTERVALS = 16384

# Word-concatenation in _packed_observation is only correct when every
# block except the last fills whole uint64 words; fail loudly if the chunk
# size is ever changed to break that.
assert EMIT_CHUNK_INTERVALS % 64 == 0


def _packed_observation(blocks, num_paths: int) -> ObservationMatrix:
    """Assemble per-chunk boolean blocks into a packed ObservationMatrix."""
    words = []
    total = 0
    for block in blocks:
        words.append(pack_bool_matrix(block))
        total += block.shape[0]
    if not words:
        return ObservationMatrix(np.zeros((0, num_paths), dtype=bool))
    return ObservationMatrix.from_backend(
        PackedBackend(np.concatenate(words, axis=1), total)
    )


def oracle_path_status(network: Network, link_states: np.ndarray) -> ObservationMatrix:
    """Perfect observations: path congested iff some traversed link is.

    This is Separability (Assumption 1) applied with a perfect monitor; it
    bypasses packet sampling entirely. Observations are emitted directly
    into the packed backend, chunk by chunk, so a long horizon never holds
    the full dense (T, paths) matrix in memory.
    """
    link_states = np.asarray(link_states, dtype=bool)
    # int64 accumulator: a bool @ uint8 matmul stays uint8 and would wrap
    # the per-path congested-link count at 256 on very long paths.
    incidence_t = network.incidence.T.astype(np.int64)
    blocks = (
        link_states[start : start + EMIT_CHUNK_INTERVALS] @ incidence_t > 0
        for start in range(0, link_states.shape[0], EMIT_CHUNK_INTERVALS)
    )
    return _packed_observation(blocks, network.num_paths)


@dataclass
class PathProber:
    """Packet-level path monitor.

    Attributes
    ----------
    num_packets:
        Probe packets sent along each path in each interval.
    loss_model:
        Supplies per-link loss rates and the per-path good threshold.
    """

    num_packets: int = 1000
    loss_model: LossModel = field(default_factory=LossModel)

    def __post_init__(self) -> None:
        if self.num_packets < 1:
            raise ScenarioError("num_packets must be >= 1")

    def observe(
        self,
        network: Network,
        link_states: np.ndarray,
        random_state: RandomState = None,
    ) -> ObservationMatrix:
        """Probe every path in every interval and classify good/congested.

        Parameters
        ----------
        network:
            Supplies the incidence structure and path lengths.
        link_states:
            Boolean ground-truth matrix (T, num_links).
        random_state:
            Randomness for loss-rate draws and packet delivery.
        """
        link_states = np.asarray(link_states, dtype=bool)
        if link_states.shape[1] != network.num_links:
            raise ScenarioError(
                "link_states width does not match the network's link count"
            )
        rng = as_generator(random_state)
        incidence_t = network.incidence.T.astype(float)
        lengths = network.path_lengths()
        thresholds = np.array(
            [self.loss_model.path_good_threshold(int(d)) for d in lengths]
        )

        def probe_block(states: np.ndarray) -> np.ndarray:
            loss = self.loss_model.assign(states, rng)
            # Per-path transmission rate: product of (1 - loss) over
            # traversed links, computed in log space against the incidence
            # matrix.
            log_forward = np.log1p(-np.clip(loss, 0.0, 1.0 - 1e-12))
            rates = np.exp(log_forward @ incidence_t)
            delivered = rng.binomial(self.num_packets, rates)
            measured_loss = 1.0 - delivered / float(self.num_packets)
            return measured_loss > thresholds[None, :]

        # Horizons beyond the chunk size are probed block-by-block and
        # packed as they are produced, bounding peak memory at one chunk of
        # dense intermediates regardless of T. Chunking interleaves the
        # loss/delivery draws per block, so for T > EMIT_CHUNK_INTERVALS a
        # seed reproduces this chunked stream (not the single-pass one);
        # horizons at or below the chunk size draw identically to a
        # single pass.
        blocks = (
            probe_block(link_states[start : start + EMIT_CHUNK_INTERVALS])
            for start in range(0, link_states.shape[0], EMIT_CHUNK_INTERVALS)
        )
        return _packed_observation(blocks, network.num_paths)
