"""End-to-end path probing (Assumption 2: E2E Monitoring).

Section 3.2: "In each interval, packets are sent along each path; for each
packet that arrives at a given link, we flip a biased coin to determine
whether it will be dropped or not, such that we respect the packet-loss rate
assigned to the link".

A path delivers a packet iff every link forwards it; per-link drops are
independent coin flips, so the delivered count over ``num_packets`` probes is
Binomial(num_packets, prod(1 - loss_e)). We sample that binomial directly
(statistically identical to looping over packets and links, but vectorised).
The path is declared congested when its measured loss exceeds the good-path
bound ``1 - (1-f)^d`` for its hop count ``d`` — this is where E2E monitoring
false positives/negatives enter, exactly as the paper warns.

:func:`oracle_path_status` provides the noise-free alternative (a path is
congested iff it traverses a congested link), used by tests to isolate
algorithmic error from measurement error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.exceptions import ScenarioError
from repro.model.packed import PackedBackend, pack_bool_matrix
from repro.model.status import ObservationMatrix
from repro.simulation.congestion import GroundTruth
from repro.simulation.loss import LossModel
from repro.topology.graph import Network
from repro.util.rng import RandomState, as_generator

#: Interval block size for chunked packed emission (a multiple of 64 so
#: chunk word boundaries align). Horizons at or below this are simulated in
#: one pass; longer horizons never materialise the full dense matrix.
EMIT_CHUNK_INTERVALS = 16384

# Word-concatenation in _packed_observation is only correct when every
# block except the last fills whole uint64 words; fail loudly if the chunk
# size is ever changed to break that.
assert EMIT_CHUNK_INTERVALS % 64 == 0


def _packed_observation(blocks, num_paths: int) -> ObservationMatrix:
    """Assemble per-chunk boolean blocks into a packed ObservationMatrix."""
    words = []
    total = 0
    for block in blocks:
        words.append(pack_bool_matrix(block))
        total += block.shape[0]
    if not words:
        return ObservationMatrix(np.zeros((0, num_paths), dtype=bool))
    return ObservationMatrix.from_backend(
        PackedBackend(np.concatenate(words, axis=1), total)
    )


def oracle_path_status(network: Network, link_states: np.ndarray) -> ObservationMatrix:
    """Perfect observations: path congested iff some traversed link is.

    This is Separability (Assumption 1) applied with a perfect monitor; it
    bypasses packet sampling entirely. Observations are emitted directly
    into the packed backend, chunk by chunk, so a long horizon never holds
    the full dense (T, paths) matrix in memory.
    """
    link_states = np.asarray(link_states, dtype=bool)
    # int64 accumulator: a bool @ uint8 matmul stays uint8 and would wrap
    # the per-path congested-link count at 256 on very long paths.
    incidence_t = network.incidence.T.astype(np.int64)
    blocks = (
        link_states[start : start + EMIT_CHUNK_INTERVALS] @ incidence_t > 0
        for start in range(0, link_states.shape[0], EMIT_CHUNK_INTERVALS)
    )
    return _packed_observation(blocks, network.num_paths)


@dataclass
class PathProber:
    """Packet-level path monitor.

    Attributes
    ----------
    num_packets:
        Probe packets sent along each path in each interval.
    loss_model:
        Supplies per-link loss rates and the per-path good threshold.
    """

    num_packets: int = 1000
    loss_model: LossModel = field(default_factory=LossModel)

    def __post_init__(self) -> None:
        if self.num_packets < 1:
            raise ScenarioError("num_packets must be >= 1")

    def observe(
        self,
        network: Network,
        link_states: np.ndarray,
        random_state: RandomState = None,
    ) -> ObservationMatrix:
        """Probe every path in every interval and classify good/congested.

        Parameters
        ----------
        network:
            Supplies the incidence structure and path lengths.
        link_states:
            Boolean ground-truth matrix (T, num_links).
        random_state:
            Randomness for loss-rate draws and packet delivery.
        """
        link_states = np.asarray(link_states, dtype=bool)
        if link_states.shape[1] != network.num_links:
            raise ScenarioError(
                "link_states width does not match the network's link count"
            )
        session = self.session(network, random_state)
        # Horizons beyond the chunk size are probed block-by-block and
        # packed as they are produced, bounding peak memory at one chunk of
        # dense intermediates regardless of T. Chunking interleaves the
        # loss/delivery draws per block, so for T > EMIT_CHUNK_INTERVALS a
        # seed reproduces this chunked stream (not the single-pass one);
        # horizons at or below the chunk size draw identically to a
        # single pass.
        blocks = (
            session.observe_chunk(link_states[start : start + EMIT_CHUNK_INTERVALS])
            for start in range(0, link_states.shape[0], EMIT_CHUNK_INTERVALS)
        )
        return _packed_observation(blocks, network.num_paths)

    def session(
        self, network: Network, random_state: RandomState = None
    ) -> "ProbeSession":
        """A long-lived probing session bound to ``network``.

        Precomputes the incidence projection and per-path good thresholds
        once, so a streaming monitor probing round by round does not redo
        the per-fit setup on every chunk.
        """
        return ProbeSession(self, network, as_generator(random_state))


class ProbeSession:
    """Stateful per-network probing: one rng stream, precomputed structure.

    Created via :meth:`PathProber.session`; :meth:`observe_chunk` classifies
    one block of intervals and is safe to call indefinitely — this is the
    measurement half of the streaming monitor's ingest loop.
    """

    def __init__(
        self, prober: PathProber, network: Network, rng: np.random.Generator
    ) -> None:
        self.prober = prober
        self.network = network
        self.rng = rng
        self._incidence_t = network.incidence.T.astype(float)
        lengths = network.path_lengths()
        self._thresholds = np.array(
            [prober.loss_model.path_good_threshold(int(d)) for d in lengths]
        )

    def observe_chunk(self, link_states: np.ndarray) -> np.ndarray:
        """Probe one block of intervals; boolean (block, num_paths) statuses."""
        states = np.asarray(link_states, dtype=bool)
        if states.shape[1] != self.network.num_links:
            raise ScenarioError(
                "link_states width does not match the network's link count"
            )
        loss = self.prober.loss_model.assign(states, self.rng)
        # Per-path transmission rate: product of (1 - loss) over traversed
        # links, computed in log space against the incidence matrix.
        log_forward = np.log1p(-np.clip(loss, 0.0, 1.0 - 1e-12))
        rates = np.exp(log_forward @ self._incidence_t)
        delivered = self.rng.binomial(self.prober.num_packets, rates)
        measured_loss = 1.0 - delivered / float(self.prober.num_packets)
        return measured_loss > self._thresholds[None, :]


@dataclass
class StreamingProber:
    """Live probe-round source: ground truth in, observation chunks out.

    The streaming analogue of sampling a full horizon and calling
    :meth:`PathProber.observe` on it: each yielded block draws the next
    link states from the (possibly non-stationary) ground truth via its
    stateful :meth:`~repro.simulation.congestion.GroundTruth.sample_stream`
    and classifies them — with packet-level probing when ``prober`` is set,
    or noise-free oracle statuses when it is ``None``.

    Attributes
    ----------
    network:
        The monitored topology.
    ground_truth:
        Supplies per-interval link states.
    prober:
        Packet-level monitor; ``None`` yields oracle path statuses.
    chunk_intervals:
        Intervals per yielded block (1 = strictly round-by-round).
    """

    network: Network
    ground_truth: GroundTruth
    prober: Optional[PathProber] = None
    chunk_intervals: int = 64

    def __post_init__(self) -> None:
        if self.chunk_intervals < 1:
            raise ScenarioError("chunk_intervals must be >= 1")

    def rounds(
        self,
        num_intervals: Optional[int] = None,
        random_state: RandomState = None,
    ) -> Iterator[np.ndarray]:
        """Yield boolean (chunk, num_paths) observation blocks.

        Runs forever when ``num_intervals`` is ``None``; otherwise stops
        after exactly that many intervals (the final block may be short).
        Link-state sampling and probing draw from independent substreams of
        ``random_state`` so the chunk size never perturbs the ground truth.
        """
        rng = as_generator(random_state)
        state_rng = np.random.default_rng(rng.integers(0, 2**63 - 1))
        probe_rng = np.random.default_rng(rng.integers(0, 2**63 - 1))
        session = (
            self.prober.session(self.network, probe_rng)
            if self.prober is not None
            else None
        )
        # int64 accumulator for the oracle branch only (see
        # oracle_path_status for the overflow rationale); the packet-level
        # branch never touches it.
        incidence_t = (
            self.network.incidence.T.astype(np.int64) if session is None else None
        )
        states_stream = self.ground_truth.sample_stream(self.chunk_intervals, state_rng)
        produced = 0
        while num_intervals is None or produced < num_intervals:
            states = next(states_stream)
            if num_intervals is not None:
                states = states[: num_intervals - produced]
            produced += states.shape[0]
            if session is not None:
                yield session.observe_chunk(states)
            else:
                yield states @ incidence_t > 0
