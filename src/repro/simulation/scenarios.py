"""Congestion scenario builders (Section 3.2).

Every experiment in the paper starts by choosing *which* 10% of the links
have a non-zero congestion probability (drawn uniformly in (0, 1)), in one of
three ways, optionally made non-stationary:

* **Random Congestion** — the congestable links are chosen at random;
* **Concentrated Congestion** — they are chosen "toward the edge of the
  network" (no congestion at the core);
* **No Independence** — they are chosen "such that each of them is
  correlated with at least one other" (shares an underlying router-level
  link);
* **No Stationarity** — as No Independence, "plus the congestion
  probabilities of links change every few time intervals";
* the **Sparse Topology** scenario is Random Congestion applied to a sparse
  (traceroute-derived) topology rather than a Brite one.

These are the paper's regimes; :mod:`repro.simulation.library` wraps them
— together with the newer generators (diurnal, gravity, cascade,
flash-crowd, maintenance) — into the named-scenario registry that
campaign sweeps consume. The placement helpers here
(:func:`select_random_links`, :func:`select_concentrated_links`,
:func:`select_correlated_links`, :func:`draw_marginals`) are shared by
both layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, List, Optional, Sequence, Set

import numpy as np

from repro.exceptions import ScenarioError
from repro.simulation.congestion import (
    GroundTruth,
    NonStationaryModel,
    build_congestion_model,
)
from repro.topology.graph import Network
from repro.util.rng import RandomState, as_generator, derive_rng


class ScenarioKind(Enum):
    """The congestion-placement regimes of Section 3.2."""

    RANDOM = "random"
    CONCENTRATED = "concentrated"
    NO_INDEPENDENCE = "no_independence"
    NO_STATIONARITY = "no_stationarity"


@dataclass
class ScenarioConfig:
    """Parameters shared by all scenario builders.

    Attributes
    ----------
    kind:
        Which placement regime to use.
    congestable_fraction:
        Fraction of links with non-zero congestion probability (paper: 10%).
    correlation_strength:
        Strength of shared-driver correlations (see
        :func:`repro.simulation.congestion.build_congestion_model`).
    min_marginal, max_marginal:
        Range of the per-link congestion probabilities; the paper draws
        uniformly "between 0 and 1" — we cap below 1 so calibration stays
        feasible.
    epoch_length:
        For No Stationarity: number of intervals between probability
        re-draws ("every few time intervals").
    num_epochs:
        For No Stationarity: how many distinct probability assignments the
        experiment cycles through.
    """

    kind: ScenarioKind = ScenarioKind.RANDOM
    congestable_fraction: float = 0.1
    correlation_strength: float = 0.95
    min_marginal: float = 0.05
    max_marginal: float = 0.95
    epoch_length: int = 25
    num_epochs: int = 8
    non_stationary: Optional[bool] = None

    @property
    def effective_non_stationary(self) -> bool:
        """Whether probabilities are re-drawn every epoch.

        ``ScenarioKind.NO_STATIONARITY`` implies it (Fig. 3's fifth column);
        the explicit ``non_stationary`` flag layers it over any placement
        (Fig. 4 adds "the 'No Stationarity' scenario on top of each of the
        above scenarios").
        """
        if self.non_stationary is not None:
            return self.non_stationary
        return self.kind is ScenarioKind.NO_STATIONARITY

    @property
    def placement_kind(self) -> ScenarioKind:
        """The congestable-link placement regime.

        ``NO_STATIONARITY`` uses the No-Independence placement (the paper:
        "This scenario is similar to the previous one, plus the congestion
        probabilities ... change every few time intervals").
        """
        if self.kind is ScenarioKind.NO_STATIONARITY:
            return ScenarioKind.NO_INDEPENDENCE
        return self.kind

    def validate(self) -> None:
        """Raise :class:`ScenarioError` on inconsistent parameters."""
        if not 0.0 < self.congestable_fraction <= 1.0:
            raise ScenarioError("congestable_fraction must be in (0, 1]")
        if not 0.0 <= self.min_marginal < self.max_marginal < 1.0:
            raise ScenarioError("need 0 <= min_marginal < max_marginal < 1")
        if self.epoch_length < 1 or self.num_epochs < 1:
            raise ScenarioError("epoch_length and num_epochs must be >= 1")


@dataclass
class Scenario:
    """A fully-specified congestion scenario bound to a network.

    Attributes
    ----------
    name:
        Human-readable scenario label.
    network:
        The monitored topology.
    ground_truth:
        The sampled-from congestion model (stationary or not).
    congestable:
        The links with non-zero congestion probability.
    """

    name: str
    network: Network
    ground_truth: GroundTruth
    congestable: FrozenSet[int]

    def true_marginals(self) -> np.ndarray:
        """Per-link true congestion probabilities, shape (num_links,)."""
        return np.array(
            [self.ground_truth.marginal(e) for e in range(self.network.num_links)]
        )


# ----------------------------------------------------------------------
# Congestable-link selection
# ----------------------------------------------------------------------
def target_count(network: Network, fraction: float) -> int:
    return max(1, int(round(fraction * network.num_links)))


def select_random_links(
    network: Network, count: int, rng: np.random.Generator
) -> List[int]:
    return sorted(
        int(i) for i in rng.choice(network.num_links, size=count, replace=False)
    )


def select_concentrated_links(
    network: Network, count: int, rng: np.random.Generator
) -> List[int]:
    """Pick congestable links at the network edge (first/last hops)."""
    edge = network.edge_links()
    if not edge:
        raise ScenarioError("concentrated scenario: network has no edge links")
    if len(edge) >= count:
        chosen = rng.choice(edge, size=count, replace=False)
        return sorted(int(i) for i in chosen)
    # Not enough edge links: take all of them, fill with the links closest
    # to the edge (lowest path-degree, i.e. least criss-crossed).
    remaining = count - len(edge)
    core = [e for e in range(network.num_links) if e not in set(edge)]
    degrees = network.link_degrees()
    core_sorted = sorted(core, key=lambda e: (degrees[e], e))
    return sorted(set(edge) | set(core_sorted[:remaining]))


def select_correlated_links(
    network: Network, count: int, rng: np.random.Generator
) -> List[int]:
    """Pick congestable links so each is correlated with at least one other.

    Whole shared-router-link groups are added in random order until the
    budget is met; a group is truncated to a pair rather than split to a
    singleton, preserving the invariant. A budget below 2 is rounded up —
    no selection smaller than a pair can satisfy the invariant, and tiny
    dataset topologies legitimately round the paper's 10% down to 1.
    """
    count = max(count, 2)
    groups = [sorted(g) for g in network.shared_router_links().values()]
    if not groups:
        raise ScenarioError(
            "no_independence scenario: topology has no correlated link groups"
        )
    order = rng.permutation(len(groups))
    chosen: Set[int] = set()
    for group_index in order:
        if len(chosen) >= count:
            break
        group = [e for e in groups[int(group_index)] if e not in chosen]
        already = [e for e in groups[int(group_index)] if e in chosen]
        if not group:
            continue
        room = count - len(chosen)
        if already:
            # The group already touches chosen links, so any prefix keeps
            # every member correlated with at least one other chosen link.
            chosen.update(group[:room])
        else:
            if room >= 2 and len(group) >= 2:
                chosen.update(group[: max(2, min(room, len(group)))])
            elif room >= len(group) and len(group) >= 2:
                chosen.update(group)
    if len(chosen) < min(count, 2):
        raise ScenarioError(
            "no_independence scenario: not enough correlated links "
            f"(wanted {count}, found {len(chosen)})"
        )
    return sorted(chosen)


def draw_marginals(
    links: Sequence[int], config: ScenarioConfig, rng: np.random.Generator
) -> Dict[int, float]:
    values = rng.uniform(config.min_marginal, config.max_marginal, size=len(links))
    return {int(e): float(p) for e, p in zip(links, values)}


# ----------------------------------------------------------------------
# Public builder
# ----------------------------------------------------------------------
def build_scenario(
    network: Network,
    config: Optional[ScenarioConfig] = None,
    random_state: RandomState = None,
    name: Optional[str] = None,
) -> Scenario:
    """Instantiate a congestion scenario on ``network``.

    Parameters
    ----------
    network:
        The monitored topology (Brite-style or Sparse).
    config:
        Scenario parameters; defaults to Random Congestion with the paper's
        10% congestable fraction.
    random_state:
        Seed or generator controlling link selection and probability draws.
    name:
        Optional label override (defaults to the scenario kind).

    Raises
    ------
    ScenarioError
        If the requested placement is impossible on this topology (e.g.
        No Independence on a topology without correlated links).
    """
    config = config or ScenarioConfig()
    config.validate()
    rng = as_generator(random_state)
    count = target_count(network, config.congestable_fraction)

    placement = config.placement_kind
    if placement is ScenarioKind.RANDOM:
        links = select_random_links(network, count, rng)
    elif placement is ScenarioKind.CONCENTRATED:
        links = select_concentrated_links(network, count, rng)
    else:
        links = select_correlated_links(network, count, rng)

    if config.effective_non_stationary:
        epochs = []
        for epoch in range(config.num_epochs):
            marginals = draw_marginals(links, config, derive_rng(rng, epoch))
            model = build_congestion_model(
                network, marginals, config.correlation_strength
            )
            epochs.append((model, config.epoch_length))
        ground_truth: GroundTruth = NonStationaryModel(epochs)
    else:
        marginals = draw_marginals(links, config, rng)
        ground_truth = build_congestion_model(
            network, marginals, config.correlation_strength
        )

    return Scenario(
        name=name or config.kind.value,
        network=network,
        ground_truth=ground_truth,
        congestable=frozenset(links),
    )
