"""Packet-loss model of Padmanabhan et al. [12], as used by the paper.

Section 3.2: "if we determine that a link will be good (resp. congested) in
this interval, we randomly assign to it a packet-loss rate between 0 and 0.01
(resp. 0.01 and 1), according to the loss model in [12]".

The good/congested threshold ``f`` therefore doubles as the per-link loss
split point; the paper's Section 2 path-status definition uses the derived
per-path threshold (see :mod:`repro.simulation.probing`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ScenarioError
from repro.util.rng import RandomState, as_generator

#: The paper's per-link good/congested loss threshold.
DEFAULT_THRESHOLD = 0.01


@dataclass
class LossModel:
    """Per-interval link loss-rate assignment.

    Attributes
    ----------
    threshold:
        The fraction ``f``: good links lose at most ``f`` of their packets,
        congested links more than ``f``.
    congested_loss:
        Distribution of congested-link loss rates on ``(f, 1]``:

        * ``"lognormal"`` (default) — losses concentrate at small values
          just above ``f``, following the empirical loss model of
          Padmanabhan et al. [12] that the paper's simulator cites (most
          congested links drop a few percent, heavy tail up to 1). Because
          small losses sit near the per-path detection threshold, this is
          the regime where E2E monitoring genuinely misclassifies paths —
          one of the paper's inaccuracy sources for every algorithm.
        * ``"uniform"`` — the simple U(f, 1) variant; congested links are
          almost always far above the detection threshold, making E2E
          monitoring nearly perfect.
    sigma:
        Log-standard-deviation of the lognormal variant.
    median_excess:
        Median of the lognormal excess loss above ``f`` (default 2%: half
        the congested links lose less than ``f`` + 2%).
    """

    threshold: float = DEFAULT_THRESHOLD
    congested_loss: str = "lognormal"
    sigma: float = 1.2
    median_excess: float = 0.08

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold < 1.0:
            raise ScenarioError(f"loss threshold {self.threshold} outside (0, 1)")
        if self.congested_loss not in ("lognormal", "uniform"):
            raise ScenarioError(f"unknown congested_loss model {self.congested_loss!r}")
        if self.sigma <= 0.0 or not 0.0 < self.median_excess < 1.0:
            raise ScenarioError("invalid lognormal loss parameters")

    def assign(
        self, link_states: np.ndarray, random_state: RandomState = None
    ) -> np.ndarray:
        """Draw loss rates for every (interval, link) cell.

        Parameters
        ----------
        link_states:
            Boolean matrix (T, num_links); true means congested.

        Returns
        -------
        numpy.ndarray
            Float matrix (T, num_links): good cells draw U(0, f); congested
            cells draw from the configured (f, 1] distribution.
        """
        link_states = np.asarray(link_states, dtype=bool)
        rng = as_generator(random_state)
        uniform = rng.random(link_states.shape)
        good_loss = uniform * self.threshold
        if self.congested_loss == "uniform":
            congested = self.threshold + uniform * (1.0 - self.threshold)
        else:
            excess = rng.lognormal(
                mean=float(np.log(self.median_excess)),
                sigma=self.sigma,
                size=link_states.shape,
            )
            congested = np.clip(self.threshold + excess, self.threshold, 1.0)
            # Keep strictly above the good/congested split point.
            congested = np.maximum(congested, np.nextafter(self.threshold, 1.0))
        return np.where(link_states, congested, good_loss)

    def path_good_threshold(self, path_length: int) -> float:
        """Maximum loss fraction a *good* path of ``path_length`` links shows.

        A path whose ``d`` links are all good (each losing at most ``f``)
        delivers at least ``(1-f)^d`` of its packets, so the observable
        good-path loss bound is ``1 - (1-f)^d`` (Duffield's rule [8]; the
        paper states the threshold as a function ``f^d`` of the hop count
        ``d``).
        """
        if path_length < 1:
            raise ScenarioError("path_length must be >= 1")
        return 1.0 - (1.0 - self.threshold) ** path_length
