"""Experiment sizing presets.

The paper's instances (Brite ~1000 links, Sparse ~2000 links, 1500 paths,
1000 intervals) take a while in pure Python; the ``small`` preset keeps every
structural property (dense vs sparse, correlated substrate) at a size where
the full reproduction runs in minutes, and ``paper`` approaches the paper's
sizes. Both are reachable from the CLI and the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.topology.brite import BriteConfig
from repro.topology.traceroute import TracerouteConfig


@dataclass
class ExperimentScale:
    """One sizing preset for the reproduction experiments.

    Attributes
    ----------
    name:
        Preset label.
    brite:
        Generator parameters for the dense Brite-style topology.
    traceroute:
        Campaign parameters for the Sparse topology.
    num_intervals:
        Experiment horizon ``T``.
    num_packets:
        Probe packets per path per interval.
    inference_intervals:
        Horizon used when scoring Boolean inference (step 2 runs per
        interval, so it dominates run time and may use fewer intervals than
        probability estimation).
    """

    name: str
    brite: BriteConfig
    traceroute: TracerouteConfig
    num_intervals: int = 400
    num_packets: int = 600
    inference_intervals: int = 150


SMALL = ExperimentScale(
    name="small",
    brite=BriteConfig(
        num_ases=40,
        as_attachment=2,
        routers_per_as=5,
        inter_as_links=2,
        num_vantage_points=6,
        num_destinations=250,
        num_paths=900,
    ),
    traceroute=TracerouteConfig(
        underlay=BriteConfig(
            num_ases=100,
            as_attachment=1,
            routers_per_as=5,
            inter_as_links=1,
            num_vantage_points=2,
            num_destinations=200,
            num_paths=400,
        ),
        num_probes=2500,
        response_prob=0.95,
        load_balance_prob=0.3,
        max_kept_paths=400,
    ),
    num_intervals=400,
    num_packets=2500,
    inference_intervals=60,
)

PAPER = ExperimentScale(
    name="paper",
    brite=BriteConfig(
        num_ases=40,
        as_attachment=2,
        routers_per_as=8,
        inter_as_links=2,
        num_vantage_points=8,
        num_destinations=400,
        num_paths=1500,
    ),
    traceroute=TracerouteConfig(
        underlay=BriteConfig(
            num_ases=120,
            as_attachment=1,
            routers_per_as=8,
            inter_as_links=1,
            num_vantage_points=4,
            num_destinations=800,
            num_paths=1500,
        ),
        num_probes=8000,
        response_prob=0.93,
        load_balance_prob=0.3,
        max_kept_paths=1500,
    ),
    num_intervals=1000,
    num_packets=2500,
    inference_intervals=1000,
)

#: Tiny instances for plumbing tests, equivalence checks, and campaign
#: smoke runs: every structural property of ``small`` (dense vs sparse
#: substrate, correlated drivers) at a size where a full driver run takes
#: seconds. Registered in :data:`SCALES` so sweeps can be exercised from
#: the CLI quickly, but too small for meaningful reproduction numbers.
TINY = ExperimentScale(
    name="tiny",
    brite=BriteConfig(
        num_ases=10,
        as_attachment=2,
        routers_per_as=4,
        inter_as_links=2,
        num_vantage_points=3,
        num_destinations=30,
        num_paths=80,
    ),
    traceroute=TracerouteConfig(
        underlay=BriteConfig(
            num_ases=24,
            as_attachment=1,
            routers_per_as=4,
            inter_as_links=1,
            num_vantage_points=2,
            num_destinations=40,
            num_paths=80,
        ),
        num_probes=400,
        response_prob=0.95,
        load_balance_prob=0.3,
        max_kept_paths=80,
    ),
    num_intervals=120,
    num_packets=1500,
    inference_intervals=15,
)

#: All registered presets by name.
SCALES: Dict[str, ExperimentScale] = {"tiny": TINY, "small": SMALL, "paper": PAPER}


def scale_by_name(name: str) -> ExperimentScale:
    """Look up a preset; raises ``KeyError`` with the known names."""
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(
            f"unknown scale {name!r}; known scales: {sorted(SCALES)}"
        ) from None
