"""Real-topology sweep: (dataset x scenario x estimator x seed).

The paper's figures evaluate on two synthetic substrates; this driver
sweeps the full registered dataset library (Topology Zoo, Rocketfuel,
CAIDA, saved snapshots, synthetic substrates — see
:mod:`repro.datasets.registry`) against the full scenario library
(:mod:`repro.simulation.library`), scoring every probability estimator on
every supported combination. Like the figure sweeps it decomposes into
independent :class:`~repro.runner.spec.TrialSpec` cells with
process-stable seed derivation, so process-sharded runs are bit-identical
to serial ones; trials of one (dataset, scenario) group share their
simulated experiment through the shard-local cache.

Unsupported combinations — a scenario requiring correlated link groups on
a topology that has none — are skipped at spec-build time and surface as
``-`` cells in the rendered tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.datasets.registry import dataset_names, get_dataset, load_dataset
from repro.exceptions import EstimationError
from repro.experiments.config import SMALL, ExperimentScale
from repro.metrics.probability import ProbabilityMetrics, evaluate_estimator
from repro.metrics.reporting import format_table
from repro.probability.base import EstimatorConfig
from repro.probability.pipeline import SharedFitWorkspace
from repro.probability.registry import (
    get_estimator,
    make_estimator,
    paper_estimator_names,
)
from repro.runner import ProgressFn, TrialResult, TrialSpec, run_trials
from repro.simulation.experiment import run_experiment
from repro.simulation.library import get_scenario, scenario_names
from repro.simulation.probing import PathProber
from repro.topology.graph import Network
from repro.util.rng import derive_rng, spawn_seeds, stable_hash

#: Estimator labels in the paper's legend order (from the registry).
ESTIMATOR_ORDER: Tuple[str, ...] = paper_estimator_names()


@dataclass
class RealWorldResult:
    """The merged sweep: per-cell metrics plus dataset statistics."""

    #: (dataset, scenario, estimator) -> metrics.
    rows: Dict[Tuple[str, str, str], ProbabilityMetrics] = field(default_factory=dict)
    dataset_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def datasets(self) -> List[str]:
        """Datasets contributing at least one cell, sorted."""
        return sorted({dataset for dataset, _, _ in self.rows})

    def scenarios(self) -> List[str]:
        """Scenarios contributing at least one cell, sorted."""
        return sorted({scenario for _, scenario, _ in self.rows})

    def mean_error(self, dataset: str, scenario: str, estimator: str) -> float:
        """One cell's mean absolute per-link error."""
        return self.rows[(dataset, scenario, estimator)].mean_absolute_error

    def to_table(self, dataset: str) -> str:
        """Render one dataset's scenario x estimator error table."""
        rows = []
        for scenario in self.scenarios():
            cells: List[object] = [scenario]
            for estimator in ESTIMATOR_ORDER:
                metrics = self.rows.get((dataset, scenario, estimator))
                cells.append("-" if metrics is None else metrics.mean_absolute_error)
            rows.append(cells)
        return format_table(["Scenario", *ESTIMATOR_ORDER], rows)


def realworld_specs(
    scale: ExperimentScale,
    seed: int,
    oracle: bool = False,
    datasets: Optional[Sequence[str]] = None,
    scenarios: Optional[Sequence[str]] = None,
    estimators: Optional[Sequence[str]] = None,
) -> List[TrialSpec]:
    """Decompose the real-topology sweep into independent trial specs.

    Every dataset is loaded once here (through the on-disk parse cache)
    and shipped with its specs; scenario construction and simulation run
    in the workers. Unsupported (dataset, scenario) combinations are
    skipped. ``datasets`` / ``scenarios`` / ``estimators`` restrict the
    sweep (default: everything registered).

    Raises
    ------
    ValueError
        On unknown dataset, scenario, or estimator names, or when the
        requested restriction leaves an empty sweep.
    """
    dataset_list = list(datasets) if datasets else dataset_names()
    scenario_list = list(scenarios) if scenarios else scenario_names()
    estimator_list = list(estimators) if estimators else list(ESTIMATOR_ORDER)
    try:
        # Canonicalise through the registry (aliases become table labels).
        estimator_list = [get_estimator(name).name for name in estimator_list]
    except EstimationError as exc:
        raise ValueError(str(exc)) from None
    for name in dataset_list:
        get_dataset(name)  # raises on unknown names before any loading
    generators = {name: get_scenario(name) for name in scenario_list}

    seeds = tuple(spawn_seeds(seed, 4))
    networks: Dict[str, Network] = {name: load_dataset(name) for name in dataset_list}
    stats = {name: dict(net.describe()) for name, net in networks.items()}
    specs: List[TrialSpec] = []
    for dataset in dataset_list:
        network = networks[dataset]
        for scenario in scenario_list:
            if not generators[scenario].supports(network):
                continue
            for estimator in estimator_list:
                specs.append(
                    TrialSpec(
                        campaign="realworld",
                        topology=dataset,
                        scenario=scenario,
                        estimator=estimator,
                        seeds=seeds,
                        index=len(specs),
                        group=(seed, dataset, scenario),
                        # Simulation and fitting scale with the link count;
                        # the per-estimator budget multiplier (correlation
                        # estimators dominate a group) is registry metadata.
                        cost=(network.num_links / 32.0)
                        * get_estimator(estimator).cost_multiplier,
                        params={
                            "scale": scale,
                            "seed": seed,
                            "oracle": oracle,
                            "network": network,
                            "dataset_stats": stats[dataset],
                        },
                    )
                )
    if not specs:
        raise ValueError(
            "realworld sweep is empty: no supported (dataset, scenario) "
            f"combination among datasets={dataset_list} "
            f"scenarios={scenario_list}"
        )
    return specs


def _cell_key(kind: str, spec: TrialSpec) -> Tuple[Any, ...]:
    """Shard-cache key of a sweep cell's shared intermediate.

    One key shape for both the simulated experiment and its fit
    workspace, so the two can never drift apart and map different
    experiments onto one workspace.
    """
    return (kind, spec.topology, spec.scenario, spec.seeds, spec.params["oracle"])


def _shared_experiment(spec: TrialSpec, cache: Dict[Any, Any], network: Network):
    """Simulate (or fetch) the trial's scenario + observation run."""
    key = _cell_key("experiment", spec)
    if key not in cache:
        scale: ExperimentScale = spec.params["scale"]
        stream = stable_hash((spec.topology, spec.scenario))
        scenario = get_scenario(spec.scenario).build(
            network, derive_rng(spec.seeds[2], stream)
        )
        cache[key] = run_experiment(
            scenario,
            scale.num_intervals,
            prober=PathProber(num_packets=scale.num_packets),
            random_state=derive_rng(spec.seeds[3], stream),
            oracle=spec.params["oracle"],
        )
    return cache[key]


def _shared_workspace(spec: TrialSpec, cache: Dict[Any, Any], experiment):
    """The group's shared fit workspace (one warm cache per sweep cell)."""
    key = _cell_key("workspace", spec)
    if key not in cache:
        cache[key] = SharedFitWorkspace(experiment.observations)
    return cache[key]


def realworld_trial(spec: TrialSpec, cache: Dict[Any, Any]) -> Dict[str, Any]:
    """Run one sweep cell: simulate (shared per group) and fit."""
    network: Network = spec.params["network"]
    experiment = _shared_experiment(spec, cache, network)
    estimator = make_estimator(
        spec.estimator, EstimatorConfig(seed=spec.params["seed"])
    )
    metrics = evaluate_estimator(
        estimator,
        experiment,
        workspace=_shared_workspace(spec, cache, experiment),
    )
    return {"metrics": metrics}


def merge_realworld(results: Sequence[TrialResult]) -> RealWorldResult:
    """Fold trial payloads into a :class:`RealWorldResult`.

    Pure bookkeeping over spec-index-ordered results, so the merged sweep
    is bit-identical whatever sharding produced them.
    """
    merged = RealWorldResult()
    for trial in results:
        spec = trial.spec
        merged.rows[(spec.topology, spec.scenario, spec.estimator)] = (
            trial.payload["metrics"]
        )
        merged.dataset_stats.setdefault(spec.topology, spec.params["dataset_stats"])
    return merged


def run_realworld(
    scale: ExperimentScale = SMALL,
    seed: int = 7,
    oracle: bool = False,
    datasets: Optional[Sequence[str]] = None,
    scenarios: Optional[Sequence[str]] = None,
    estimators: Optional[Sequence[str]] = None,
    workers: Optional[int] = 1,
    progress: Optional[ProgressFn] = None,
    executor: Optional[str] = "process",
) -> RealWorldResult:
    """Run the real-topology sweep end to end.

    ``workers`` shards the sweep (``1`` = serial in this process,
    ``None`` = all local CPUs) across the requested ``executor``
    (``"process"`` / ``"thread"`` / ``"auto"``) with bit-identical
    results.
    """
    results = run_trials(
        realworld_trial,
        realworld_specs(
            scale,
            seed,
            oracle,
            datasets=datasets,
            scenarios=scenarios,
            estimators=estimators,
        ),
        workers=workers,
        progress=progress,
        executor=executor,
    )
    return merge_realworld(results)
