"""Internet-scale topology study: sparse vs dense estimation path.

ROADMAP item 3 asks for 10k+-node AS graphs, where the eager structures
(networkx router graphs, per-path Python tuples, dense equation rows)
dominate memory. This driver builds the *same* monitored network and fit
twice per size — once through the historical dense structures, once
through the sparse path (CSR :class:`~repro.topology.routing.CompactGraph`
adjacency, :class:`~repro.topology.routing.SparseRouteTable` routes,
observed-only unknown admission, sparse equation arenas) — and records
wall time, structure bytes, peak traced allocation, and content digests
of both the derived routes and the final estimates.

The digests are the contract: every (size, seed) cell must produce
**bit-identical** routes and estimates in both modes, so the sparse path
is a pure memory/performance optimisation, never a semantic fork. The
``scaling-topology`` campaign and
``benchmarks/test_bench_scaling_topology.py`` assert exactly that, plus a
>= 3x structure-memory reduction at 1k nodes.

Two memory columns, two roles. ``structure_bytes`` is what the sparse
path replaces: retained construction structures (graph, router->AS map,
route storage — measured as a traced-allocation delta inside
:func:`~repro.datasets.base.derive_network_compact`) plus the assembled
equation system's logical storage
(:attr:`~repro.linalg.system.EquationSystem.storage_nbytes`). The >= 3x
gate applies to it. ``peak_traced_bytes`` is the whole-trial allocation
peak, dominated by the *shared* solve transients — both modes densify the
same unique rows for the identical QR/NNLS solve, so it is reported for
context but never gated on a ratio.
"""

from __future__ import annotations

import hashlib
import threading
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.datasets.base import DatasetSpec, derive_network_compact
from repro.datasets.synthetic import generate_powerlaw_edges
from repro.experiments.config import ExperimentScale, SMALL
from repro.metrics.reporting import format_table
from repro.obs.serve import read_rss_bytes
from repro.obs.timer import Timer
from repro.probability.base import EstimatorConfig
from repro.probability.registry import make_estimator
from repro.runner import ProgressFn, TrialResult, TrialSpec, run_trials
from repro.simulation.experiment import run_experiment
from repro.simulation.probing import PathProber
from repro.simulation.scenarios import ScenarioConfig, ScenarioKind, build_scenario
from repro.topology.graph import Network
from repro.util.rng import spawn_seeds

#: Node counts per experiment scale. ``paper`` reaches the ROADMAP's
#: 10k-node goal; ``small`` is the CI smoke size.
SIZES_BY_SCALE: Dict[str, List[int]] = {
    "tiny": [200, 500],
    "small": [1000, 2000],
    "paper": [1000, 5000, 10000],
}

#: Both construction/estimation modes, compared pairwise per size.
MODES = ("dense", "sparse")

#: Simulation horizon of the per-size fit (kept modest: the subject under
#: measurement is topology construction + estimation structure, not T).
NUM_INTERVALS = 100
NUM_PACKETS = 120

#: Only one trial traces allocations at a time: tracemalloc is
#: process-global, so concurrent thread-sharded trials would otherwise
#: pollute each other's peaks.
_TRACE_LOCK = threading.Lock()


@dataclass
class ScalingTopologyRow:
    """One (size, mode) cell of the sparse-vs-dense scaling study."""

    num_nodes: int
    mode: str
    num_links: int
    num_paths: int
    num_unknowns: int
    num_equations: int
    build_seconds: float
    fit_seconds: float
    construction_bytes: int
    equation_storage_bytes: int
    peak_traced_bytes: int
    rss_bytes: float
    route_digest: str
    estimate_digest: str

    @property
    def structure_bytes(self) -> int:
        """Construction structures + equation storage: the gated quantity."""
        return self.construction_bytes + self.equation_storage_bytes


@dataclass
class ScalingTopologyResult:
    """All cells, with pairwise identity and memory-ratio accessors."""

    rows: List[ScalingTopologyRow] = field(default_factory=list)

    def cell(self, num_nodes: int, mode: str) -> Optional[ScalingTopologyRow]:
        for row in self.rows:
            if row.num_nodes == num_nodes and row.mode == mode:
                return row
        return None

    def sizes(self) -> List[int]:
        return sorted({row.num_nodes for row in self.rows})

    def bit_identical(self) -> bool:
        """Dense and sparse digests agree at every size with both modes."""
        checked = False
        for size in self.sizes():
            dense = self.cell(size, "dense")
            sparse = self.cell(size, "sparse")
            if dense is None or sparse is None:
                continue
            checked = True
            if (
                dense.route_digest != sparse.route_digest
                or dense.estimate_digest != sparse.estimate_digest
            ):
                return False
        return checked

    def memory_ratios(self) -> Dict[int, float]:
        """Dense / sparse structure bytes, per size (the >= 3x gate)."""
        ratios: Dict[int, float] = {}
        for size in self.sizes():
            dense = self.cell(size, "dense")
            sparse = self.cell(size, "sparse")
            if dense is None or sparse is None or sparse.structure_bytes == 0:
                continue
            ratios[size] = dense.structure_bytes / sparse.structure_bytes
        return ratios

    def to_table(self) -> str:
        body = [
            [
                row.num_nodes,
                row.mode,
                row.num_links,
                row.num_paths,
                row.num_unknowns,
                row.num_equations,
                f"{row.build_seconds:.3f}",
                f"{row.fit_seconds:.3f}",
                f"{row.structure_bytes / 1e6:.2f}",
                f"{row.peak_traced_bytes / 1e6:.2f}",
                f"{row.rss_bytes / 1e6:.1f}",
                row.estimate_digest[:12],
            ]
            for row in sorted(self.rows, key=lambda r: (r.num_nodes, r.mode))
        ]
        return format_table(
            [
                "nodes",
                "mode",
                "links",
                "paths",
                "unknowns",
                "equations",
                "build s",
                "fit s",
                "struct MB",
                "peak MB",
                "rss MB",
                "estimate digest",
            ],
            body,
        )


def _dataset_spec(num_nodes: int, seed: int) -> DatasetSpec:
    """Monitoring deployment per size: bounded probing over a huge graph."""
    return DatasetSpec(
        num_vantage_points=8,
        num_destinations=max(10, min(200, num_nodes // 5)),
        num_paths=250,
        seed=seed,
    )


def _digest_routes(network: Network) -> str:
    """Content digest of the derived links and monitored paths."""
    digest = hashlib.sha256()
    for link in network.links:
        digest.update(
            f"L{link.index}:{link.src}:{link.dst}:{link.asn}:"
            f"{sorted(link.router_links)}\n".encode()
        )
    for path in network.paths:
        digest.update(f"P{path.index}:{path.links}\n".encode())
    return digest.hexdigest()


def _digest_estimates(model: Any) -> str:
    """Content digest of the fitted estimates (exact float bits)."""
    digest = hashlib.sha256()
    estimates = model._good
    identifiable = model._identifiable
    for subset in sorted(estimates, key=sorted):
        key = ",".join(str(link) for link in sorted(subset))
        digest.update(
            f"{key}={float(estimates[subset]).hex()}"
            f":{bool(identifiable[subset])}\n".encode()
        )
    return digest.hexdigest()


def scaling_topology_specs(
    scale: ExperimentScale,
    seed: int,
    sizes: Optional[List[int]] = None,
) -> List[TrialSpec]:
    """One trial per (size, mode) cell; both modes share the cell seed."""
    sizes = sizes or SIZES_BY_SCALE.get(scale.name, SIZES_BY_SCALE["small"])
    specs: List[TrialSpec] = []
    for size in sizes:
        for mode in MODES:
            specs.append(
                TrialSpec(
                    campaign="scaling-topology",
                    topology=f"powerlaw-{size}",
                    scenario="Random",
                    estimator=mode,
                    seeds=(seed,),
                    index=len(specs),
                    group=(seed, size, mode),
                    cost=float(size),
                    params={"num_nodes": size, "mode": mode},
                )
            )
    return specs


def scaling_topology_trial(
    spec: TrialSpec, cache: Dict[Any, Any]
) -> ScalingTopologyRow:
    """Build + fit one (size, mode) cell under allocation tracing."""
    del cache  # every cell is self-contained; nothing to share
    num_nodes = int(spec.params["num_nodes"])
    mode = str(spec.params["mode"])
    sparse = mode == "sparse"
    seed = spec.seeds[0]
    seeds = spawn_seeds(seed, 3)
    build_stats: Dict[str, int] = {}
    with _TRACE_LOCK:
        tracemalloc.start()
        try:
            with Timer() as build_timer:
                src, dst = generate_powerlaw_edges(
                    num_nodes, attachment=2, seed=seeds[0]
                )
                network = derive_network_compact(
                    num_nodes,
                    src,
                    dst,
                    _dataset_spec(num_nodes, seeds[0]),
                    f"powerlaw-{num_nodes}",
                    sparse=sparse,
                    stats=build_stats,
                )
            with Timer() as fit_timer:
                # RANDOM placement: a pure AS-level graph has no shared
                # router-level edges (every vertex is one AS), so the
                # No-Independence scenario cannot place correlated groups.
                scenario = build_scenario(
                    network,
                    ScenarioConfig(kind=ScenarioKind.RANDOM),
                    seeds[1],
                )
                experiment = run_experiment(
                    scenario,
                    NUM_INTERVALS,
                    prober=PathProber(num_packets=NUM_PACKETS),
                    random_state=seeds[2],
                )
                estimator = make_estimator(
                    "Correlation-complete",
                    EstimatorConfig(
                        # Observed-only admission (the lazily-discovered
                        # unknown policy) in BOTH modes, so the sparse flag
                        # stays a pure mechanics switch.
                        requested_subset_size=1,
                        sparse=sparse,
                        seed=seed,
                    ),
                )
                model = estimator.fit(network, experiment.observations)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
    report = model.report  # type: ignore[attr-defined]
    return ScalingTopologyRow(
        num_nodes=num_nodes,
        mode=mode,
        num_links=network.num_links,
        num_paths=network.num_paths,
        num_unknowns=report.num_unknowns,
        num_equations=report.num_equations,
        build_seconds=build_timer.elapsed,
        fit_seconds=fit_timer.elapsed,
        construction_bytes=int(build_stats.get("construction_bytes", 0)),
        equation_storage_bytes=int(report.equation_storage_bytes),
        peak_traced_bytes=int(peak),
        rss_bytes=read_rss_bytes(),
        route_digest=_digest_routes(network),
        estimate_digest=_digest_estimates(model),
    )


def merge_scaling_topology(
    results: Sequence[TrialResult],
) -> ScalingTopologyResult:
    """Collect cells in (size, mode) order."""
    result = ScalingTopologyResult()
    for trial in results:
        result.rows.append(trial.payload)
    result.rows.sort(key=lambda row: (row.num_nodes, row.mode))
    return result


def run_scaling_topology(
    scale: ExperimentScale = SMALL,
    seed: int = 17,
    sizes: Optional[List[int]] = None,
    workers: Optional[int] = 1,
    progress: Optional[ProgressFn] = None,
    executor: Optional[str] = "process",
) -> ScalingTopologyResult:
    """Sweep sparse-vs-dense construction and estimation across sizes."""
    results = run_trials(
        scaling_topology_trial,
        scaling_topology_specs(scale, seed, sizes),
        workers=workers,
        progress=progress,
        executor=executor,
    )
    return merge_scaling_topology(results)
