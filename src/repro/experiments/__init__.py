"""Experiment harness regenerating every table and figure of the paper.

Each driver returns plain dataclasses of rows/series (the same quantities
the paper plots) and is invoked both by the benchmark suite
(``benchmarks/``) and by the command-line interface (``repro-tomography``).
"""

from repro.experiments.config import ExperimentScale, SCALES, scale_by_name
from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.figure4 import Figure4Result, run_figure4
from repro.experiments.scaling import ScalingResult, run_algorithm1_scaling

__all__ = [
    "ExperimentScale",
    "SCALES",
    "scale_by_name",
    "Figure3Result",
    "run_figure3",
    "Figure4Result",
    "run_figure4",
    "ScalingResult",
    "run_algorithm1_scaling",
]
