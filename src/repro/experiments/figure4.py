"""Figure 4: Probability Computation accuracy.

Panels (Section 5.4):

* (a) mean absolute per-link error on the **Brite** topology, for Random /
  Concentrated / No-Independence congestion — each with "No Stationarity"
  layered on top, as the paper specifies;
* (b) the same on the **Sparse** topology;
* (c) the CDF of the per-link error for the No-Independence scenario on the
  Sparse topology;
* (d) Correlation-complete's error on individual links vs correlation
  subsets, Brite and Sparse, No-Independence scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.config import ExperimentScale, SMALL
from repro.metrics.probability import ProbabilityMetrics, evaluate_estimator
from repro.metrics.reporting import format_table
from repro.probability.base import EstimatorConfig
from repro.probability.pipeline import SharedFitWorkspace
from repro.probability.registry import (
    get_estimator,
    make_estimator,
    paper_estimator_names,
)
from repro.runner import ProgressFn, TrialResult, TrialSpec, run_trials
from repro.simulation.experiment import ExperimentResult, run_experiment
from repro.simulation.probing import PathProber
from repro.simulation.scenarios import ScenarioConfig, ScenarioKind, build_scenario
from repro.topology.brite import generate_brite_network
from repro.topology.graph import Network
from repro.topology.traceroute import generate_sparse_network
from repro.util.rng import derive_rng, spawn_seeds, stable_hash

#: Congestion scenarios of Fig. 4(a)/(b), in the paper's order.
SCENARIO_ORDER: Tuple[str, ...] = (
    "Random Congestion",
    "Concentrated Congestion",
    "No Independence",
)

#: Estimator labels in the paper's legend order (from the registry).
ESTIMATOR_ORDER: Tuple[str, ...] = paper_estimator_names()


@dataclass
class Figure4Result:
    """All four panels of Fig. 4."""

    #: (topology, scenario, estimator) -> metrics; backs panels (a) and (b).
    rows: Dict[Tuple[str, str, str], ProbabilityMetrics] = field(default_factory=dict)
    #: (topology,) -> Correlation-complete (link error, subset error); panel (d).
    subset_rows: Dict[str, Tuple[float, Optional[float]]] = field(default_factory=dict)
    topology_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def mean_error(self, topology: str, scenario: str, estimator: str) -> float:
        """One bar of Fig. 4(a) (brite) or 4(b) (sparse)."""
        return self.rows[(topology, scenario, estimator)].mean_absolute_error

    def cdf(
        self, topology: str, scenario: str, estimator: str, points: int = 101
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One curve of Fig. 4(c)."""
        return self.rows[(topology, scenario, estimator)].cdf(points)

    def to_table(self, topology: str) -> str:
        """Render panel (a) or (b) as text."""
        rows = []
        for scenario in SCENARIO_ORDER:
            cells: List[object] = [scenario]
            for estimator in ESTIMATOR_ORDER:
                metrics = self.rows.get((topology, scenario, estimator))
                cells.append("-" if metrics is None else metrics.mean_absolute_error)
            rows.append(cells)
        return format_table(["Scenario", *ESTIMATOR_ORDER], rows)

    def to_subset_table(self) -> str:
        """Render panel (d) as text."""
        rows = []
        for topology, (link_error, subset_error) in sorted(self.subset_rows.items()):
            rows.append(
                [
                    topology,
                    link_error,
                    "-" if subset_error is None else subset_error,
                ]
            )
        return format_table(["Topology", "links", "correlation subsets"], rows)


def _scenario_config(kind: ScenarioKind) -> ScenarioConfig:
    # Fig. 4 layers No Stationarity on top of every congestion scenario.
    return ScenarioConfig(kind=kind, non_stationary=True)


#: (label, kind) pairs of panels (a)/(b), in the paper's order.
_SCENARIO_KINDS: Tuple[Tuple[str, ScenarioKind], ...] = (
    ("Random Congestion", ScenarioKind.RANDOM),
    ("Concentrated Congestion", ScenarioKind.CONCENTRATED),
    ("No Independence", ScenarioKind.NO_INDEPENDENCE),
)


def figure4_specs(
    scale: ExperimentScale, seed: int, oracle: bool = False
) -> List[TrialSpec]:
    """Decompose the Fig. 4 sweep into independent trial specs.

    One trial per (topology, scenario, estimator) cell; every random
    stream a trial needs is derived from the spawned master seeds plus the
    cell's labels, so any execution order (or process placement) produces
    the same numbers. The two topologies are pure functions of the seeds,
    so they are built once here and shipped with the specs (one copy per
    shard after pickling) rather than rebuilt in every worker; scenarios
    and observations are simulated by the workers themselves.
    """
    seeds = tuple(spawn_seeds(seed, 4))
    topologies: Dict[str, Network] = {
        "brite": generate_brite_network(scale.brite, seeds[0]),
        "sparse": generate_sparse_network(scale.traceroute, seeds[1]),
    }
    stats = {name: dict(net.describe()) for name, net in topologies.items()}
    specs: List[TrialSpec] = []
    for topology_name in ("brite", "sparse"):
        for label, kind in _SCENARIO_KINDS:
            for estimator_name in ESTIMATOR_ORDER:
                specs.append(
                    TrialSpec(
                        campaign="figure4",
                        topology=topology_name,
                        scenario=label,
                        estimator=estimator_name,
                        seeds=seeds,
                        index=len(specs),
                        group=(seed, topology_name, label),
                        # Rough relative cost hints (sparse instances and
                        # the correlation estimators dominate) so the
                        # longest-processing-time partition balances
                        # shards; the per-estimator budget multiplier is
                        # registry metadata.
                        cost=(2.0 if topology_name == "sparse" else 1.0)
                        * get_estimator(estimator_name).cost_multiplier,
                        params={
                            "scale": scale,
                            "seed": seed,
                            "oracle": oracle,
                            "kind": kind.value,
                            "network": topologies[topology_name],
                            "topology_stats": stats[topology_name],
                        },
                    )
                )
    return specs


def _cell_key(kind: str, spec: TrialSpec) -> Tuple[Any, ...]:
    """Shard-cache key of a sweep cell's shared intermediate.

    One key shape for both the simulated experiment and its fit
    workspace, so the two can never drift apart and map different
    experiments onto one workspace.
    """
    return (kind, spec.topology, spec.scenario, spec.seeds, spec.params["oracle"])


def _shared_experiment(
    spec: TrialSpec, cache: Dict[Any, Any], network: Network
) -> ExperimentResult:
    """Simulate (or fetch) the trial's scenario + observation run."""
    key = _cell_key("experiment", spec)
    if key not in cache:
        scale: ExperimentScale = spec.params["scale"]
        kind = ScenarioKind(spec.params["kind"])
        scenario = build_scenario(
            network,
            _scenario_config(kind),
            derive_rng(spec.seeds[2], stable_hash((spec.topology, spec.scenario))),
            name=spec.scenario,
        )
        cache[key] = run_experiment(
            scenario,
            scale.num_intervals,
            prober=PathProber(num_packets=scale.num_packets),
            random_state=derive_rng(
                spec.seeds[3], stable_hash((spec.topology, spec.scenario))
            ),
            oracle=spec.params["oracle"],
        )
    return cache[key]


def _shared_workspace(
    spec: TrialSpec, cache: Dict[Any, Any], experiment: ExperimentResult
) -> SharedFitWorkspace:
    """The group's shared fit workspace (one warm cache per sweep cell).

    Trials of one (topology, scenario, seed) group run on one shard and
    share the shard-local cache, so all estimators of the cell fit against
    a single warm :class:`FrequencyCache` instead of three cold ones.
    """
    key = _cell_key("workspace", spec)
    if key not in cache:
        cache[key] = SharedFitWorkspace(experiment.observations)
    return cache[key]


def figure4_trial(spec: TrialSpec, cache: Dict[Any, Any]) -> Dict[str, Any]:
    """Run one Fig. 4 sweep cell: simulate (shared per group) and fit."""
    network: Network = spec.params["network"]
    experiment = _shared_experiment(spec, cache, network)
    estimator = make_estimator(
        spec.estimator, EstimatorConfig(seed=spec.params["seed"])
    )
    evaluate_subsets = (
        spec.scenario == "No Independence"
        and spec.estimator == "Correlation-complete"
    )
    metrics = evaluate_estimator(
        estimator,
        experiment,
        evaluate_subsets=evaluate_subsets,
        workspace=_shared_workspace(spec, cache, experiment),
    )
    return {"metrics": metrics, "evaluated_subsets": evaluate_subsets}


def merge_figure4(results: Sequence[TrialResult]) -> Figure4Result:
    """Fold trial payloads into a :class:`Figure4Result`.

    Pure bookkeeping over spec-index-ordered results, so the merged figure
    is bit-identical whatever sharding produced them.
    """
    result = Figure4Result()
    for trial in results:
        spec = trial.spec
        metrics: ProbabilityMetrics = trial.payload["metrics"]
        result.rows[(spec.topology, spec.scenario, spec.estimator)] = metrics
        result.topology_stats.setdefault(spec.topology, spec.params["topology_stats"])
        if trial.payload["evaluated_subsets"]:
            result.subset_rows[spec.topology] = (
                metrics.mean_absolute_error,
                metrics.subset_mean_absolute_error,
            )
    return result


def run_figure4(
    scale: ExperimentScale = SMALL,
    seed: int = 2,
    oracle: bool = False,
    workers: Optional[int] = 1,
    progress: Optional[ProgressFn] = None,
    executor: Optional[str] = "process",
) -> Figure4Result:
    """Regenerate all four panels of Fig. 4.

    See :func:`repro.experiments.figure3.run_figure3` for the parameters.
    ``workers`` shards the sweep (``1`` = serial in this process, ``None``
    = all local CPUs) across the requested ``executor``
    (``"process"`` / ``"thread"`` / ``"auto"`` — see
    :func:`repro.runner.pool.run_trials`) with bit-identical results.
    """
    results = run_trials(
        figure4_trial,
        figure4_specs(scale, seed, oracle),
        workers=workers,
        progress=progress,
        executor=executor,
    )
    return merge_figure4(results)
