"""Figure 4: Probability Computation accuracy.

Panels (Section 5.4):

* (a) mean absolute per-link error on the **Brite** topology, for Random /
  Concentrated / No-Independence congestion — each with "No Stationarity"
  layered on top, as the paper specifies;
* (b) the same on the **Sparse** topology;
* (c) the CDF of the per-link error for the No-Independence scenario on the
  Sparse topology;
* (d) Correlation-complete's error on individual links vs correlation
  subsets, Brite and Sparse, No-Independence scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.config import ExperimentScale, SMALL
from repro.metrics.probability import ProbabilityMetrics, evaluate_estimator
from repro.metrics.reporting import format_table
from repro.probability.base import EstimatorConfig, ProbabilityEstimator
from repro.probability.correlation_complete import CorrelationCompleteEstimator
from repro.probability.correlation_heuristic import CorrelationHeuristicEstimator
from repro.probability.independence import IndependenceEstimator
from repro.simulation.experiment import run_experiment
from repro.simulation.probing import PathProber
from repro.simulation.scenarios import ScenarioConfig, ScenarioKind, build_scenario
from repro.topology.brite import generate_brite_network
from repro.topology.graph import Network
from repro.topology.traceroute import generate_sparse_network
from repro.util.rng import derive_rng, spawn_seeds, stable_hash

#: Congestion scenarios of Fig. 4(a)/(b), in the paper's order.
SCENARIO_ORDER: Tuple[str, ...] = (
    "Random Congestion",
    "Concentrated Congestion",
    "No Independence",
)

#: Estimator labels in the paper's legend order.
ESTIMATOR_ORDER: Tuple[str, ...] = (
    "Independence",
    "Correlation-heuristic",
    "Correlation-complete",
)


def _estimators(seed: int) -> List[ProbabilityEstimator]:
    config = EstimatorConfig(seed=seed)
    return [
        IndependenceEstimator(config),
        CorrelationHeuristicEstimator(config),
        CorrelationCompleteEstimator(config),
    ]


@dataclass
class Figure4Result:
    """All four panels of Fig. 4."""

    #: (topology, scenario, estimator) -> metrics; backs panels (a) and (b).
    rows: Dict[Tuple[str, str, str], ProbabilityMetrics] = field(default_factory=dict)
    #: (topology,) -> Correlation-complete (link error, subset error); panel (d).
    subset_rows: Dict[str, Tuple[float, Optional[float]]] = field(default_factory=dict)
    topology_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def mean_error(self, topology: str, scenario: str, estimator: str) -> float:
        """One bar of Fig. 4(a) (brite) or 4(b) (sparse)."""
        return self.rows[(topology, scenario, estimator)].mean_absolute_error

    def cdf(
        self, topology: str, scenario: str, estimator: str, points: int = 101
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One curve of Fig. 4(c)."""
        return self.rows[(topology, scenario, estimator)].cdf(points)

    def to_table(self, topology: str) -> str:
        """Render panel (a) or (b) as text."""
        rows = []
        for scenario in SCENARIO_ORDER:
            cells: List[object] = [scenario]
            for estimator in ESTIMATOR_ORDER:
                metrics = self.rows.get((topology, scenario, estimator))
                cells.append("-" if metrics is None else metrics.mean_absolute_error)
            rows.append(cells)
        return format_table(["Scenario", *ESTIMATOR_ORDER], rows)

    def to_subset_table(self) -> str:
        """Render panel (d) as text."""
        rows = []
        for topology, (link_error, subset_error) in sorted(self.subset_rows.items()):
            rows.append(
                [
                    topology,
                    link_error,
                    "-" if subset_error is None else subset_error,
                ]
            )
        return format_table(["Topology", "links", "correlation subsets"], rows)


def _scenario_config(kind: ScenarioKind) -> ScenarioConfig:
    # Fig. 4 layers No Stationarity on top of every congestion scenario.
    return ScenarioConfig(kind=kind, non_stationary=True)


def run_figure4(
    scale: ExperimentScale = SMALL,
    seed: int = 2,
    oracle: bool = False,
) -> Figure4Result:
    """Regenerate all four panels of Fig. 4.

    See :func:`repro.experiments.figure3.run_figure3` for the parameters.
    """
    seeds = spawn_seeds(seed, 4)
    topologies: Dict[str, Network] = {
        "brite": generate_brite_network(scale.brite, seeds[0]),
        "sparse": generate_sparse_network(scale.traceroute, seeds[1]),
    }
    result = Figure4Result()
    result.topology_stats = {
        name: dict(net.describe()) for name, net in topologies.items()
    }
    scenario_rng = derive_rng(seeds[2], 0)
    scenario_kinds = [
        ("Random Congestion", ScenarioKind.RANDOM),
        ("Concentrated Congestion", ScenarioKind.CONCENTRATED),
        ("No Independence", ScenarioKind.NO_INDEPENDENCE),
    ]
    for topology_name, network in topologies.items():
        for label, kind in scenario_kinds:
            scenario = build_scenario(
                network, _scenario_config(kind), scenario_rng, name=label
            )
            experiment = run_experiment(
                scenario,
                scale.num_intervals,
                prober=PathProber(num_packets=scale.num_packets),
                random_state=derive_rng(
                    seeds[3], stable_hash((topology_name, label))
                ),
                oracle=oracle,
            )
            evaluate_subsets = label == "No Independence"
            for estimator in _estimators(seed):
                metrics = evaluate_estimator(
                    estimator,
                    experiment,
                    evaluate_subsets=(
                        evaluate_subsets
                        and estimator.name == "Correlation-complete"
                    ),
                )
                result.rows[(topology_name, label, estimator.name)] = metrics
                if (
                    evaluate_subsets
                    and estimator.name == "Correlation-complete"
                ):
                    result.subset_rows[topology_name] = (
                        metrics.mean_absolute_error,
                        metrics.subset_mean_absolute_error,
                    )
    return result
