"""Algorithm 1 scaling study (E9 in DESIGN.md).

Section 5.1 argues that naive Probability Computation would need
``2^|P*|`` equations, which "is practically infeasible for any topology with
more than a few tens of paths", while Algorithm 1 "forms the minimum number
of equations needed". Section 4 adds the configurable-resources knob
(subsets of one, two, or three links). This driver measures both claims:
equations formed vs. the naive bound, runtime, and rank/identifiability as
the requested subset size grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentScale, SMALL
from repro.metrics.reporting import format_table
from repro.probability.base import EstimatorConfig
from repro.probability.registry import make_estimator
from repro.runner import ProgressFn, TrialResult, TrialSpec, run_trials
from repro.simulation.experiment import run_experiment
from repro.simulation.probing import PathProber
from repro.simulation.scenarios import ScenarioConfig, ScenarioKind, build_scenario
from repro.topology.brite import generate_brite_network
from repro.util.rng import spawn_seeds
from repro.obs.timer import Timer


@dataclass
class ScalingRow:
    """One sweep point of the Algorithm 1 scaling study."""

    requested_subset_size: int
    num_unknowns: int
    num_equations: int
    rank: int
    num_identifiable: int
    seconds: float
    naive_equations: float


@dataclass
class ScalingResult:
    """All sweep points plus the topology's naive equation bound."""

    rows: List[ScalingRow] = field(default_factory=list)
    num_paths: int = 0

    def to_table(self) -> str:
        """Render the sweep as text."""
        body = [
            [
                row.requested_subset_size,
                row.num_unknowns,
                row.num_equations,
                row.rank,
                row.num_identifiable,
                row.seconds,
                f"2^{self.num_paths}",
            ]
            for row in self.rows
        ]
        return format_table(
            [
                "subset size",
                "unknowns",
                "equations",
                "rank",
                "identifiable",
                "seconds",
                "naive bound",
            ],
            body,
        )


def scaling_specs(
    scale: ExperimentScale,
    seed: int,
    subset_sizes: Optional[List[int]] = None,
) -> List[TrialSpec]:
    """Decompose the sweep into one trial per requested subset size.

    The Brite instance and its No-Independence experiment are simulated
    once here in the parent and shipped to the workers with the specs (the
    observations in their packed uint64 word form), so every sweep point
    fits against the same run — exactly as the serial driver did.
    """
    subset_sizes = subset_sizes or [1, 2, 3]
    seeds = spawn_seeds(seed, 3)
    network = generate_brite_network(scale.brite, seeds[0])
    scenario = build_scenario(
        network,
        ScenarioConfig(kind=ScenarioKind.NO_INDEPENDENCE),
        seeds[1],
    )
    experiment = run_experiment(
        scenario,
        scale.num_intervals,
        prober=PathProber(num_packets=scale.num_packets),
        random_state=seeds[2],
    )
    return [
        TrialSpec(
            campaign="scaling",
            topology="brite",
            scenario="No Independence",
            estimator=f"subset-size-{size}",
            seeds=(seed,),
            index=index,
            group=(seed, size),
            # Larger requested subsets form more equations.
            cost=float(size),
            params={"experiment": experiment, "subset_size": size},
        )
        for index, size in enumerate(subset_sizes)
    ]


def scaling_trial(spec: TrialSpec, cache: Dict[Any, Any]) -> ScalingRow:
    """Fit one sweep point and report its equation-system statistics."""
    del cache  # the experiment arrives with the spec; nothing to share
    experiment = spec.params["experiment"]
    size = spec.params["subset_size"]
    estimator = make_estimator(
        "Correlation-complete",
        EstimatorConfig(requested_subset_size=size, seed=spec.seeds[0]),
    )
    with Timer() as timer:
        model = estimator.fit(experiment.network, experiment.observations)
    report = model.report  # type: ignore[attr-defined]
    num_paths = experiment.network.num_paths
    return ScalingRow(
        requested_subset_size=size,
        num_unknowns=report.num_unknowns,
        num_equations=report.num_equations,
        rank=report.rank,
        num_identifiable=report.num_identifiable,
        seconds=timer.elapsed,
        naive_equations=float(2) ** min(num_paths, 1023),
    )


def merge_scaling(results: Sequence[TrialResult]) -> ScalingResult:
    """Reassemble sweep rows in subset-size order."""
    result = ScalingResult()
    for trial in results:
        result.rows.append(trial.payload)
    if results:
        result.num_paths = results[0].spec.params["experiment"].network.num_paths
    return result


def run_algorithm1_scaling(
    scale: ExperimentScale = SMALL,
    seed: int = 3,
    subset_sizes: Optional[List[int]] = None,
    workers: Optional[int] = 1,
    progress: Optional[ProgressFn] = None,
    executor: Optional[str] = "process",
) -> ScalingResult:
    """Sweep Algorithm 1's requested subset size on a Brite instance.

    ``workers`` shards the sweep points across the requested ``executor``
    (``"process"`` / ``"thread"`` / ``"auto"``); the sweep's
    equation-system statistics are bit-identical for any value (the
    per-point ``seconds`` column reports each worker's own wall clock).
    """
    results = run_trials(
        scaling_trial,
        scaling_specs(scale, seed, subset_sizes),
        workers=workers,
        progress=progress,
        executor=executor,
    )
    return merge_scaling(results)
