"""Ablation study of the Correlation-complete solve refinements.

DESIGN.md documents four finite-sample refinements over the paper's
Algorithm 1 listing: precision weighting, the redundancy pass, the
bounded (log g <= 0) solve, and the weak within-set independence prior.
This driver measures each one's contribution by toggling it off and
re-running the No-Independence scenario on both topologies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentScale, SMALL
from repro.metrics.probability import evaluate_estimator
from repro.metrics.reporting import format_table
from repro.probability.base import EstimatorConfig, ProbabilityEstimator
from repro.probability.registry import make_estimator
from repro.runner import ProgressFn, TrialResult, TrialSpec, run_trials
from repro.simulation.experiment import run_experiment
from repro.simulation.probing import PathProber
from repro.simulation.scenarios import ScenarioConfig, ScenarioKind, build_scenario
from repro.topology.brite import generate_brite_network
from repro.topology.traceroute import generate_sparse_network
from repro.util.rng import derive_rng, spawn_seeds, stable_hash


def _complete(cfg: EstimatorConfig) -> ProbabilityEstimator:
    return make_estimator("Correlation-complete", cfg)


#: Ablation variants: label -> estimator factory from a base config. The
#: "no redundancy" stage variant is a registered estimator in its own
#: right (:mod:`repro.probability.registry`); the others are config
#: toggles on the paper's algorithm.
VARIANTS: List[Tuple[str, Callable[[EstimatorConfig], ProbabilityEstimator]]] = [
    ("full", _complete),
    ("unweighted", lambda cfg: _complete(replace(cfg, weighted=False))),
    ("no prior", lambda cfg: _complete(replace(cfg, prior_weight=0.0))),
    (
        "no pruning tolerance",
        lambda cfg: _complete(replace(cfg, pruning_tolerance=0.0)),
    ),
    (
        "no redundancy",
        lambda cfg: make_estimator("Correlation-complete (no redundancy)", cfg),
    ),
    (
        "singletons only",
        lambda cfg: _complete(replace(cfg, requested_subset_size=1)),
    ),
]


@dataclass
class AblationResult:
    """Mean absolute per-link error per (variant, topology)."""

    errors: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def to_table(self) -> str:
        """Render the ablation as text (rows = variants)."""
        rows = []
        variants = [label for label, _ in VARIANTS]
        for label in variants:
            rows.append(
                [
                    label,
                    self.errors.get((label, "brite"), float("nan")),
                    self.errors.get((label, "sparse"), float("nan")),
                ]
            )
        return format_table(["Variant", "brite", "sparse"], rows)


def ablation_specs(scale: ExperimentScale, seed: int) -> List[TrialSpec]:
    """Decompose the ablation into (topology, variant) trials.

    The two No-Independence experiments are simulated once *here* in the
    parent (exactly as the serial driver always did) and shipped to the
    workers inside the specs — the observation matrices travel in their
    packed uint64 word form — so every variant fits against the same run.
    """
    seeds = spawn_seeds(seed, 4)
    topologies = {
        "brite": generate_brite_network(scale.brite, seeds[0]),
        "sparse": generate_sparse_network(scale.traceroute, seeds[1]),
    }
    specs: List[TrialSpec] = []
    for topology_name, network in topologies.items():
        scenario = build_scenario(
            network,
            ScenarioConfig(kind=ScenarioKind.NO_INDEPENDENCE),
            derive_rng(seeds[2], stable_hash(topology_name)),
        )
        experiment = run_experiment(
            scenario,
            scale.num_intervals,
            prober=PathProber(num_packets=scale.num_packets),
            random_state=seeds[3],
        )
        for label, _ in VARIANTS:
            specs.append(
                TrialSpec(
                    campaign="ablation",
                    topology=topology_name,
                    scenario="No Independence",
                    estimator=label,
                    seeds=(seed,),
                    index=len(specs),
                    # Every variant is its own group: the experiment ships
                    # with the spec, so there is no intermediate to share
                    # and each fit can land on any shard.
                    group=(seed, topology_name, label),
                    cost=2.0 if topology_name == "sparse" else 1.0,
                    params={"experiment": experiment},
                )
            )
    return specs


def ablation_trial(spec: TrialSpec, cache: Dict[Any, Any]) -> float:
    """Fit one ablation variant against its pre-simulated experiment."""
    del cache  # the experiment arrives with the spec; nothing to share
    (factory,) = [f for label, f in VARIANTS if label == spec.estimator]
    base = EstimatorConfig(seed=spec.seeds[0])
    metrics = evaluate_estimator(factory(base), spec.params["experiment"])
    return metrics.mean_absolute_error


def merge_ablation(results: Sequence[TrialResult]) -> AblationResult:
    """Fold per-variant errors into an :class:`AblationResult`."""
    result = AblationResult()
    for trial in results:
        result.errors[(trial.spec.estimator, trial.spec.topology)] = (trial.payload)
    return result


def run_ablation(
    scale: ExperimentScale = SMALL,
    seed: int = 5,
    workers: Optional[int] = 1,
    progress: Optional[ProgressFn] = None,
    executor: Optional[str] = "process",
) -> AblationResult:
    """Toggle each refinement off on the No-Independence scenario.

    ``workers`` shards the variant fits with bit-identical results
    (``1`` = serial, ``None`` = all local CPUs) across the requested
    ``executor`` (``"process"`` / ``"thread"`` / ``"auto"``).
    """
    results = run_trials(
        ablation_trial,
        ablation_specs(scale, seed),
        workers=workers,
        progress=progress,
        executor=executor,
    )
    return merge_ablation(results)
