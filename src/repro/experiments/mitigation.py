"""Closed-loop mitigation sweep: (topology x scenario x policy x estimator).

The mitigation analogue of the real-topology sweep: every cell runs the
full estimate → mitigate → re-simulate → re-estimate loop of
:mod:`repro.mitigation.evaluate` and reports the
:class:`~repro.mitigation.evaluate.ClosedLoopReport` scorecard. The
``noop`` policy rides along in every sweep by default, so each cell's
residual congestion has its control arm in the same table.

Decomposition follows the house runner rules: one
:class:`~repro.runner.spec.TrialSpec` per grid cell, the *pre* experiment
and fitted model shared through the shard-local cache across the policies
(and, for the experiment, estimators) of one (topology, scenario) group,
and a pure spec-index merge — so process-sharded runs are bit-identical
to serial ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.datasets.registry import get_dataset, load_dataset
from repro.exceptions import EstimationError, MitigationError
from repro.experiments.config import SMALL, ExperimentScale
from repro.metrics.reporting import format_table
from repro.mitigation.apply import routing_diversity
from repro.mitigation.evaluate import run_closed_loop
from repro.mitigation.policies import get_policy, policy_names
from repro.probability.base import EstimatorConfig
from repro.probability.pipeline import SharedFitWorkspace
from repro.probability.registry import (
    get_estimator,
    make_estimator,
    paper_estimator_names,
)
from repro.runner import ProgressFn, TrialResult, TrialSpec, run_trials
from repro.simulation.experiment import run_experiment
from repro.simulation.library import get_scenario
from repro.simulation.probing import PathProber
from repro.topology.brite import generate_brite_network
from repro.topology.graph import Network
from repro.util.rng import derive_rng, spawn_seeds, stable_hash

#: Scenario families the closed loop sweeps by default: three stationary
#: placement regimes plus the cascade correlated-failure family.
DEFAULT_SCENARIOS: Tuple[str, ...] = ("random", "concentrated", "gravity", "cascade")

#: Estimator labels in the paper's legend order (from the registry).
ESTIMATOR_ORDER: Tuple[str, ...] = paper_estimator_names()

#: Minimum fraction of monitored paths with an alternate route for a
#: generated substrate to be accepted (see :func:`_diverse_brite_network`).
DIVERSITY_FLOOR = 0.3

#: Substrate candidates examined before settling for the most diverse.
DIVERSITY_ATTEMPTS = 8


def _diverse_brite_network(scale: ExperimentScale, seed: int) -> Network:
    """Generate a Brite substrate with routing diversity, deterministically.

    The AS-level link graph contains exactly the links monitored paths
    traverse, so some generated instances are trees — no path has an
    alternate route and no mitigation policy can act. Candidates are
    drawn from sub-streams of ``seed`` until one clears
    :data:`DIVERSITY_FLOOR` (or the most diverse of
    :data:`DIVERSITY_ATTEMPTS` wins), so the sweep always has mitigation
    headroom and the choice replays identically everywhere.
    """
    best: Optional[Tuple[float, Network]] = None
    for attempt in range(DIVERSITY_ATTEMPTS):
        network = generate_brite_network(scale.brite, derive_rng(seed, attempt))
        score = routing_diversity(network)
        if best is None or score > best[0]:
            best = (score, network)
        if score >= DIVERSITY_FLOOR:
            break
    assert best is not None
    return best[1]


@dataclass
class MitigationResult:
    """The merged sweep: one closed-loop scorecard per grid cell."""

    #: (topology, scenario, policy, estimator) -> ClosedLoopReport JSON dict.
    rows: Dict[Tuple[str, str, str, str], Dict[str, Any]] = field(default_factory=dict)

    def topologies(self) -> List[str]:
        """Topologies contributing at least one cell, sorted."""
        return sorted({topology for topology, _, _, _ in self.rows})

    def scenarios(self) -> List[str]:
        """Scenarios contributing at least one cell, sorted."""
        return sorted({scenario for _, scenario, _, _ in self.rows})

    def policies(self) -> List[str]:
        """Policies contributing at least one cell, registry order."""
        present = {policy for _, _, policy, _ in self.rows}
        ordered = [name for name in policy_names() if name in present]
        return ordered + sorted(present - set(ordered))

    def estimators(self) -> List[str]:
        """Estimators contributing at least one cell, paper legend order."""
        present = {estimator for _, _, _, estimator in self.rows}
        ordered = [name for name in ESTIMATOR_ORDER if name in present]
        return ordered + sorted(present - set(ordered))

    def residual(
        self, topology: str, scenario: str, policy: str, estimator: str
    ) -> float:
        """One cell's post-mitigation true path-congestion rate."""
        return self.rows[(topology, scenario, policy, estimator)][
            "post_congestion_rate"
        ]

    def to_table(self, topology: str, scenario: str) -> str:
        """Render one (topology, scenario) policy x estimator table.

        Cells show ``residual (reduction)`` — the post-mitigation path
        congestion rate and how far below the pre rate it landed.
        """
        rows = []
        for policy in self.policies():
            cells: List[object] = [policy]
            for estimator in self.estimators():
                report = self.rows.get((topology, scenario, policy, estimator))
                if report is None:
                    cells.append("-")
                else:
                    cells.append(
                        f"{report['post_congestion_rate']:.4f} "
                        f"({report['reduction']:+.4f})"
                    )
            rows.append(cells)
        return format_table(["Policy", *self.estimators()], rows)


def mitigation_specs(
    scale: ExperimentScale,
    seed: int,
    oracle: bool = False,
    datasets: Optional[Sequence[str]] = None,
    scenarios: Optional[Sequence[str]] = None,
    estimators: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
) -> List[TrialSpec]:
    """Decompose the closed-loop sweep into independent trial specs.

    Without a ``datasets`` filter the sweep runs on the scale's Brite
    topology (generated here, shipped with the specs); with one, each
    named registered dataset becomes a topology. ``scenarios`` /
    ``estimators`` / ``policies`` restrict the other axes (defaults:
    :data:`DEFAULT_SCENARIOS`, the paper estimators, every registered
    policy).

    Raises
    ------
    ValueError
        On unknown names or when the restriction leaves an empty sweep.
    """
    scenario_list = list(scenarios) if scenarios else list(DEFAULT_SCENARIOS)
    estimator_list = list(estimators) if estimators else list(ESTIMATOR_ORDER)
    policy_list = list(policies) if policies else policy_names()
    try:
        estimator_list = [get_estimator(name).name for name in estimator_list]
        for name in policy_list:
            get_policy(name)
    except (EstimationError, MitigationError) as exc:
        raise ValueError(str(exc)) from None
    generators = {name: get_scenario(name) for name in scenario_list}

    seeds = tuple(spawn_seeds(seed, 4))
    networks: Dict[str, Network]
    if datasets:
        for name in datasets:
            get_dataset(name)  # raises on unknown names before any loading
        networks = {name: load_dataset(name) for name in datasets}
    else:
        networks = {"brite": _diverse_brite_network(scale, seeds[1])}

    specs: List[TrialSpec] = []
    for topology, network in networks.items():
        for scenario in scenario_list:
            if not generators[scenario].supports(network):
                continue
            for estimator in estimator_list:
                for policy in policy_list:
                    specs.append(
                        TrialSpec(
                            campaign="mitigation",
                            topology=topology,
                            scenario=scenario,
                            estimator=estimator,
                            seeds=seeds,
                            index=len(specs),
                            group=(seed, topology, scenario),
                            # A cell simulates twice (pre + post) but
                            # shares the pre pieces across its group, so
                            # cost still tracks links x estimator budget.
                            cost=(network.num_links / 32.0)
                            * get_estimator(estimator).cost_multiplier,
                            params={
                                "scale": scale,
                                "seed": seed,
                                "oracle": oracle,
                                "network": network,
                                "policy": policy,
                            },
                        )
                    )
    if not specs:
        raise ValueError(
            "mitigation sweep is empty: no supported (topology, scenario) "
            f"combination among datasets={list(datasets or ['brite'])} "
            f"scenarios={scenario_list}"
        )
    return specs


def _cell_seed(spec: TrialSpec) -> int:
    """The *integer* experiment seed of a sweep cell.

    The closed loop replays the congestion draw on the rewritten topology,
    which needs a seed it can reuse — an int, not a stateful generator —
    so the cell seed is derived as a process-stable integer.
    """
    stream = stable_hash((spec.topology, spec.scenario))
    return int(derive_rng(spec.seeds[3], stream).integers(0, 2**31 - 1))


def _cell_key(kind: str, spec: TrialSpec) -> Tuple[Any, ...]:
    """Shard-cache key of a cell's shared pre-mitigation intermediate."""
    return (kind, spec.topology, spec.scenario, spec.seeds, spec.params["oracle"])


def _shared_pre_experiment(spec: TrialSpec, cache: Dict[Any, Any], network: Network):
    """Simulate (or fetch) the group's shared *pre* experiment."""
    key = _cell_key("pre_experiment", spec)
    if key not in cache:
        scale: ExperimentScale = spec.params["scale"]
        stream = stable_hash((spec.topology, spec.scenario))
        scenario = get_scenario(spec.scenario).build(
            network, derive_rng(spec.seeds[2], stream)
        )
        experiment = run_experiment(
            scenario,
            scale.num_intervals,
            prober=PathProber(num_packets=scale.num_packets),
            random_state=_cell_seed(spec),
            oracle=spec.params["oracle"],
        )
        cache[key] = (scenario, experiment)
    return cache[key]


def _shared_pre_model(spec: TrialSpec, cache: Dict[Any, Any], experiment):
    """Fit (or fetch) the cell's shared pre-mitigation model."""
    key = (*_cell_key("pre_model", spec), spec.estimator)
    if key not in cache:
        workspace_key = _cell_key("workspace", spec)
        if workspace_key not in cache:
            cache[workspace_key] = SharedFitWorkspace(experiment.observations)
        estimator = make_estimator(
            spec.estimator, EstimatorConfig(seed=spec.params["seed"])
        )
        model = estimator.fit(
            experiment.network,
            experiment.observations,
            workspace=cache[workspace_key],
        )
        cache[key] = (estimator, model)
    return cache[key]


def mitigation_trial(spec: TrialSpec, cache: Dict[Any, Any]) -> Dict[str, Any]:
    """Run one closed-loop cell, sharing the pre pieces within the group."""
    network: Network = spec.params["network"]
    scale: ExperimentScale = spec.params["scale"]
    scenario, pre_experiment = _shared_pre_experiment(spec, cache, network)
    estimator, pre_model = _shared_pre_model(spec, cache, pre_experiment)
    report = run_closed_loop(
        scenario,
        estimator,
        get_policy(spec.params["policy"]),
        scale.num_intervals,
        seed=_cell_seed(spec),
        prober=PathProber(num_packets=scale.num_packets),
        oracle=spec.params["oracle"],
        pre_experiment=pre_experiment,
        pre_model=pre_model,
    )
    return {"report": report.to_json_dict()}


def merge_mitigation(results: Sequence[TrialResult]) -> MitigationResult:
    """Fold trial payloads into a :class:`MitigationResult`.

    Pure bookkeeping over spec-index-ordered results, so the merged sweep
    is bit-identical whatever sharding produced them.
    """
    merged = MitigationResult()
    for trial in results:
        spec = trial.spec
        merged.rows[
            (spec.topology, spec.scenario, spec.params["policy"], spec.estimator)
        ] = trial.payload["report"]
    return merged


def run_mitigation(
    scale: ExperimentScale = SMALL,
    seed: int = 13,
    oracle: bool = False,
    datasets: Optional[Sequence[str]] = None,
    scenarios: Optional[Sequence[str]] = None,
    estimators: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    workers: Optional[int] = 1,
    progress: Optional[ProgressFn] = None,
    executor: Optional[str] = "auto",
) -> MitigationResult:
    """Run the closed-loop mitigation sweep end to end."""
    results = run_trials(
        mitigation_trial,
        mitigation_specs(
            scale,
            seed,
            oracle,
            datasets=datasets,
            scenarios=scenarios,
            estimators=estimators,
            policies=policies,
        ),
        workers=workers,
        progress=progress,
        executor=executor,
    )
    return merge_mitigation(results)
