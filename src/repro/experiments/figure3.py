"""Figure 3: Boolean-inference performance across the five scenarios.

For each scenario (Random / Concentrated / No-Independence /
No-Stationarity congestion on the Brite topology, plus Random congestion on
the Sparse topology) run the three inference algorithms and report
interval-averaged detection and false-positive rates — the bars of
Fig. 3(a) and Fig. 3(b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.config import ExperimentScale, SMALL
from repro.inference.base import BooleanInferenceAlgorithm
from repro.inference.bayesian_correlation import BayesianCorrelationInference
from repro.inference.bayesian_independence import BayesianIndependenceInference
from repro.inference.sparsity import SparsityInference
from repro.metrics.boolean import BooleanMetrics, evaluate_inference
from repro.metrics.reporting import format_table
from repro.probability.base import EstimatorConfig
from repro.simulation.experiment import run_experiment
from repro.simulation.probing import PathProber
from repro.simulation.scenarios import ScenarioConfig, ScenarioKind, build_scenario
from repro.topology.brite import generate_brite_network
from repro.topology.graph import Network
from repro.topology.traceroute import generate_sparse_network
from repro.util.rng import derive_rng, spawn_seeds, stable_hash

#: Scenario labels in the paper's x-axis order.
SCENARIO_ORDER: Tuple[str, ...] = (
    "Random Congestion",
    "Concentrated Congestion",
    "No Independence",
    "No Stationarity",
    "Sparse Topology",
)


def _algorithms(seed: int) -> List[BooleanInferenceAlgorithm]:
    config = EstimatorConfig(seed=seed)
    return [
        SparsityInference(),
        BayesianIndependenceInference(config),
        BayesianCorrelationInference(config, random_state=seed),
    ]


@dataclass
class Figure3Result:
    """Rows of Fig. 3: (scenario, algorithm) -> detection / false positives."""

    rows: Dict[Tuple[str, str], BooleanMetrics] = field(default_factory=dict)
    topology_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def detection(self, scenario: str, algorithm: str) -> float:
        """Detection rate for one bar of Fig. 3(a)."""
        return self.rows[(scenario, algorithm)].detection_rate

    def false_positives(self, scenario: str, algorithm: str) -> float:
        """False-positive rate for one bar of Fig. 3(b)."""
        return self.rows[(scenario, algorithm)].false_positive_rate

    def algorithms(self) -> List[str]:
        """Algorithm names present in the result."""
        return sorted({algorithm for _, algorithm in self.rows})

    def to_table(self, metric: str = "detection") -> str:
        """Render Fig. 3(a) (``detection``) or Fig. 3(b) (``fp``) as text."""
        algorithms = [
            "Sparsity",
            "Bayesian-Independence",
            "Bayesian-Correlation",
        ]
        rows = []
        for scenario in SCENARIO_ORDER:
            cells: List[object] = [scenario]
            for algorithm in algorithms:
                metrics = self.rows.get((scenario, algorithm))
                if metrics is None:
                    cells.append("-")
                elif metric == "detection":
                    cells.append(metrics.detection_rate)
                else:
                    cells.append(metrics.false_positive_rate)
            rows.append(cells)
        return format_table(["Scenario", *algorithms], rows)


def _scenario_configs() -> List[Tuple[str, str, ScenarioConfig]]:
    """(label, topology, scenario config) in the paper's order."""
    return [
        ("Random Congestion", "brite", ScenarioConfig(kind=ScenarioKind.RANDOM)),
        (
            "Concentrated Congestion",
            "brite",
            ScenarioConfig(kind=ScenarioKind.CONCENTRATED),
        ),
        (
            "No Independence",
            "brite",
            ScenarioConfig(kind=ScenarioKind.NO_INDEPENDENCE),
        ),
        (
            "No Stationarity",
            "brite",
            ScenarioConfig(kind=ScenarioKind.NO_STATIONARITY),
        ),
        ("Sparse Topology", "sparse", ScenarioConfig(kind=ScenarioKind.RANDOM)),
    ]


def run_figure3(
    scale: ExperimentScale = SMALL,
    seed: int = 1,
    oracle: bool = False,
) -> Figure3Result:
    """Regenerate Fig. 3.

    Parameters
    ----------
    scale:
        Sizing preset (topology sizes, horizon, probe counts).
    seed:
        Master seed; topologies, scenarios, sampling, and probing all derive
        from it.
    oracle:
        Use noise-free path observations (isolates algorithmic error from
        E2E-monitoring error).
    """
    seeds = spawn_seeds(seed, 4)
    brite = generate_brite_network(scale.brite, seeds[0])
    sparse = generate_sparse_network(scale.traceroute, seeds[1])
    topologies: Dict[str, Network] = {"brite": brite, "sparse": sparse}
    result = Figure3Result()
    result.topology_stats = {
        name: dict(net.describe()) for name, net in topologies.items()
    }
    scenario_rng = derive_rng(seeds[2], 0)
    for label, topology_name, config in _scenario_configs():
        network = topologies[topology_name]
        scenario = build_scenario(network, config, scenario_rng, name=label)
        experiment = run_experiment(
            scenario,
            scale.inference_intervals,
            prober=PathProber(num_packets=scale.num_packets),
            random_state=derive_rng(seeds[3], stable_hash(label)),
            oracle=oracle,
        )
        for algorithm in _algorithms(seed):
            metrics = evaluate_inference(algorithm, experiment)
            result.rows[(label, algorithm.name)] = metrics
    return result
