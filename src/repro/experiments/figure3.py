"""Figure 3: Boolean-inference performance across the five scenarios.

For each scenario (Random / Concentrated / No-Independence /
No-Stationarity congestion on the Brite topology, plus Random congestion on
the Sparse topology) run the three inference algorithms and report
interval-averaged detection and false-positive rates — the bars of
Fig. 3(a) and Fig. 3(b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentScale, SMALL
from repro.inference.base import BooleanInferenceAlgorithm
from repro.inference.bayesian_correlation import BayesianCorrelationInference
from repro.inference.bayesian_independence import BayesianIndependenceInference
from repro.inference.sparsity import SparsityInference
from repro.metrics.boolean import BooleanMetrics, evaluate_inference
from repro.metrics.reporting import format_table
from repro.probability.base import EstimatorConfig
from repro.runner import ProgressFn, TrialResult, TrialSpec, run_trials
from repro.simulation.experiment import ExperimentResult, run_experiment
from repro.simulation.probing import PathProber
from repro.simulation.scenarios import ScenarioConfig, ScenarioKind, build_scenario
from repro.topology.brite import generate_brite_network
from repro.topology.graph import Network
from repro.topology.traceroute import generate_sparse_network
from repro.util.rng import derive_rng, spawn_seeds, stable_hash

#: Scenario labels in the paper's x-axis order.
SCENARIO_ORDER: Tuple[str, ...] = (
    "Random Congestion",
    "Concentrated Congestion",
    "No Independence",
    "No Stationarity",
    "Sparse Topology",
)


def _algorithms(seed: int) -> List[BooleanInferenceAlgorithm]:
    config = EstimatorConfig(seed=seed)
    return [
        SparsityInference(),
        BayesianIndependenceInference(config),
        BayesianCorrelationInference(config, random_state=seed),
    ]


@dataclass
class Figure3Result:
    """Rows of Fig. 3: (scenario, algorithm) -> detection / false positives."""

    rows: Dict[Tuple[str, str], BooleanMetrics] = field(default_factory=dict)
    topology_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def detection(self, scenario: str, algorithm: str) -> float:
        """Detection rate for one bar of Fig. 3(a)."""
        return self.rows[(scenario, algorithm)].detection_rate

    def false_positives(self, scenario: str, algorithm: str) -> float:
        """False-positive rate for one bar of Fig. 3(b)."""
        return self.rows[(scenario, algorithm)].false_positive_rate

    def algorithms(self) -> List[str]:
        """Algorithm names present in the result."""
        return sorted({algorithm for _, algorithm in self.rows})

    def to_table(self, metric: str = "detection") -> str:
        """Render Fig. 3(a) (``detection``) or Fig. 3(b) (``fp``) as text."""
        algorithms = list(ALGORITHM_ORDER)
        rows = []
        for scenario in SCENARIO_ORDER:
            cells: List[object] = [scenario]
            for algorithm in algorithms:
                metrics = self.rows.get((scenario, algorithm))
                if metrics is None:
                    cells.append("-")
                elif metric == "detection":
                    cells.append(metrics.detection_rate)
                else:
                    cells.append(metrics.false_positive_rate)
            rows.append(cells)
        return format_table(["Scenario", *algorithms], rows)


def _scenario_configs() -> List[Tuple[str, str, ScenarioConfig]]:
    """(label, topology, scenario config) in the paper's order."""
    return [
        ("Random Congestion", "brite", ScenarioConfig(kind=ScenarioKind.RANDOM)),
        (
            "Concentrated Congestion",
            "brite",
            ScenarioConfig(kind=ScenarioKind.CONCENTRATED),
        ),
        (
            "No Independence",
            "brite",
            ScenarioConfig(kind=ScenarioKind.NO_INDEPENDENCE),
        ),
        (
            "No Stationarity",
            "brite",
            ScenarioConfig(kind=ScenarioKind.NO_STATIONARITY),
        ),
        ("Sparse Topology", "sparse", ScenarioConfig(kind=ScenarioKind.RANDOM)),
    ]


#: Algorithm labels in the paper's legend order.
ALGORITHM_ORDER: Tuple[str, ...] = (
    "Sparsity",
    "Bayesian-Independence",
    "Bayesian-Correlation",
)


def figure3_specs(
    scale: ExperimentScale, seed: int, oracle: bool = False
) -> List[TrialSpec]:
    """Decompose the Fig. 3 sweep into independent trial specs.

    One trial per (scenario, algorithm) bar; each trial derives its random
    streams from the spawned master seeds plus the scenario label, never
    from generators shared across cells. The topologies are pure functions
    of the seeds and are built once here and shipped with the specs; the
    workers simulate scenarios and observations themselves.
    """
    seeds = tuple(spawn_seeds(seed, 4))
    topologies: Dict[str, Network] = {
        "brite": generate_brite_network(scale.brite, seeds[0]),
        "sparse": generate_sparse_network(scale.traceroute, seeds[1]),
    }
    stats = {name: dict(net.describe()) for name, net in topologies.items()}
    specs: List[TrialSpec] = []
    for label, topology_name, config in _scenario_configs():
        for algorithm_name in ALGORITHM_ORDER:
            specs.append(
                TrialSpec(
                    campaign="figure3",
                    topology=topology_name,
                    scenario=label,
                    estimator=algorithm_name,
                    seeds=seeds,
                    index=len(specs),
                    group=(seed, label),
                    # The Bayesian algorithms do per-interval inference and
                    # dominate; sparse instances run longer paths.
                    cost=(2.0 if topology_name == "sparse" else 1.0)
                    * (1.0 if algorithm_name == "Sparsity" else 2.0),
                    params={
                        "scale": scale,
                        "seed": seed,
                        "oracle": oracle,
                        "kind": config.kind.value,
                        "network": topologies[topology_name],
                        "topology_stats": stats[topology_name],
                    },
                )
            )
    return specs


def _shared_experiment(
    spec: TrialSpec, cache: Dict[Any, Any], network: Network
) -> ExperimentResult:
    """Simulate (or fetch) the trial's scenario + observation run."""
    key = ("experiment", spec.scenario, spec.seeds, spec.params["oracle"])
    if key not in cache:
        scale: ExperimentScale = spec.params["scale"]
        scenario = build_scenario(
            network,
            ScenarioConfig(kind=ScenarioKind(spec.params["kind"])),
            derive_rng(spec.seeds[2], stable_hash(spec.scenario)),
            name=spec.scenario,
        )
        cache[key] = run_experiment(
            scenario,
            scale.inference_intervals,
            prober=PathProber(num_packets=scale.num_packets),
            random_state=derive_rng(spec.seeds[3], stable_hash(spec.scenario)),
            oracle=spec.params["oracle"],
        )
    return cache[key]


def figure3_trial(spec: TrialSpec, cache: Dict[Any, Any]) -> Dict[str, Any]:
    """Run one Fig. 3 bar: simulate (shared per scenario) and infer."""
    network: Network = spec.params["network"]
    experiment = _shared_experiment(spec, cache, network)
    (algorithm,) = [
        candidate
        for candidate in _algorithms(spec.params["seed"])
        if candidate.name == spec.estimator
    ]
    return evaluate_inference(algorithm, experiment)


def merge_figure3(results: Sequence[TrialResult]) -> Figure3Result:
    """Fold trial payloads into a :class:`Figure3Result` (order-stable)."""
    result = Figure3Result()
    for trial in results:
        spec = trial.spec
        result.rows[(spec.scenario, spec.estimator)] = trial.payload
        result.topology_stats.setdefault(spec.topology, spec.params["topology_stats"])
    return result


def run_figure3(
    scale: ExperimentScale = SMALL,
    seed: int = 1,
    oracle: bool = False,
    workers: Optional[int] = 1,
    progress: Optional[ProgressFn] = None,
    executor: Optional[str] = "process",
) -> Figure3Result:
    """Regenerate Fig. 3.

    Parameters
    ----------
    scale:
        Sizing preset (topology sizes, horizon, probe counts).
    seed:
        Master seed; topologies, scenarios, sampling, and probing all derive
        from it.
    oracle:
        Use noise-free path observations (isolates algorithmic error from
        E2E-monitoring error).
    workers:
        Shard the sweep across this many workers (``1`` = serial in this
        process, ``None`` = all local CPUs); results are bit-identical for
        any value.
    progress:
        Optional per-shard progress callback.
    executor:
        Shard executor — ``"process"`` (default), ``"thread"``
        (zero-copy, needs a GIL-free kernel to overlap), or ``"auto"``
        (see :func:`repro.runner.pool.run_trials`).
    """
    results = run_trials(
        figure3_trial,
        figure3_specs(scale, seed, oracle),
        workers=workers,
        progress=progress,
        executor=executor,
    )
    return merge_figure3(results)
