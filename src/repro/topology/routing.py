"""Path computation over router-level graphs.

The topology generators produce a router-level :mod:`networkx` graph; this
module selects end-to-end router-level routes (shortest paths, with optional
load-balanced alternatives) which :mod:`repro.topology.aslevel` then abstracts
into the AS-level network the tomography algorithms observe.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.exceptions import TopologyError
from repro.obs import gauge
from repro.util.rng import RandomState, as_generator

#: A router-level route: a sequence of router identifiers.
RouterRoute = Tuple[int, ...]

_ORACLE_ENTRIES = gauge(
    "repro_route_oracle_entries",
    "Memoised routes currently held by the RouteOracle",
)
_ORACLE_HIT_RATE = gauge(
    "repro_route_oracle_hit_rate",
    "Fraction of RouteOracle lookups answered from the memo",
)


def shortest_route(graph: nx.Graph, source: int, target: int) -> Optional[RouterRoute]:
    """Return a shortest route from ``source`` to ``target``, or ``None``.

    Ties are broken deterministically by networkx's BFS ordering; use
    :func:`load_balanced_route` when per-flow path diversity is needed.
    """
    try:
        return tuple(nx.shortest_path(graph, source, target))
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return None


def load_balanced_route(
    graph: nx.Graph,
    source: int,
    target: int,
    random_state: RandomState = None,
) -> Optional[RouterRoute]:
    """Return one of the shortest routes chosen uniformly at random.

    Models equal-cost multi-path (ECMP) forwarding: different probe flows
    between the same endpoints may take different equal-length routes, which
    is one of the traceroute artefacts the paper's operators fought with
    ("load-balancing interferes with traceroute results").
    """
    rng = as_generator(random_state)
    try:
        routes = list(nx.all_shortest_paths(graph, source, target))
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return None
    return tuple(routes[int(rng.integers(0, len(routes)))])


class RouteOracle:
    """Memoised route computation for repeated-source probing campaigns.

    Traceroute campaigns probe from a handful of vantage routers toward
    hundreds of destinations; recomputing a BFS per probe dominates topology
    generation. The oracle caches, per source, the unweighted predecessor
    DAG (one BFS serving every destination's ECMP route enumeration) and,
    per (source, target) pair, the deterministic shortest route — producing
    routes identical to :func:`shortest_route` / :func:`load_balanced_route`
    call-for-call.

    ``max_entries`` bounds each memo dict with least-recently-used
    eviction, so internet-scale sweeps (millions of probed pairs) cannot
    grow the oracle without bound; ``None`` keeps the historical unbounded
    behaviour. Cached-vs-evicted answers are identical, only recomputed.
    """

    def __init__(self, graph: nx.Graph, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise TopologyError("RouteOracle: max_entries must be >= 1 or None")
        self.graph = graph
        self.max_entries = max_entries
        self._shortest: OrderedDict = OrderedDict()
        self._ecmp: OrderedDict = OrderedDict()
        self._predecessors: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def _touch(self, memo: OrderedDict, key) -> None:
        """Record a hit: refresh LRU order and the exported gauges."""
        self.hits += 1
        if self.max_entries is not None:
            memo.move_to_end(key)
        self._export()

    def _store(self, memo: OrderedDict, key, value) -> None:
        """Record a miss: insert and evict the least recently used entry."""
        self.misses += 1
        memo[key] = value
        if self.max_entries is not None and len(memo) > self.max_entries:
            memo.popitem(last=False)
        self._export()

    def _export(self) -> None:
        _ORACLE_ENTRIES.set(float(self.num_entries))
        total = self.hits + self.misses
        if total:
            _ORACLE_HIT_RATE.set(self.hits / total)

    @property
    def num_entries(self) -> int:
        """Memoised entries currently held across all memo dicts."""
        return len(self._shortest) + len(self._ecmp) + len(self._predecessors)

    def shortest(self, source: int, target: int) -> Optional[RouterRoute]:
        """Cached :func:`shortest_route`."""
        key = (source, target)
        try:
            route = self._shortest[key]
        except KeyError:
            route = shortest_route(self.graph, source, target)
            self._store(self._shortest, key, route)
            return route
        self._touch(self._shortest, key)
        return route

    def _equal_cost_routes(
        self, source: int, target: int
    ) -> Optional[List[RouterRoute]]:
        key = (source, target)
        try:
            routes = self._ecmp[key]
        except KeyError:
            pass
        else:
            self._touch(self._ecmp, key)
            return routes
        try:
            # Private networkx helper: exactly the enumeration
            # all_shortest_paths performs on its internally-computed
            # predecessor map, which lets one BFS per source serve every
            # target. Fall back to the public API if it moves.
            from networkx.algorithms.shortest_paths.generic import (
                _build_paths_from_predecessors,
            )
        except ImportError:
            _build_paths_from_predecessors = None
        routes: Optional[List[RouterRoute]] = None
        if _build_paths_from_predecessors is None:
            try:
                routes = [
                    tuple(p)
                    for p in nx.all_shortest_paths(self.graph, source, target)
                ]
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                routes = None
        else:
            pred = self._predecessors.get(source)
            if pred is None:
                try:
                    pred = nx.predecessor(self.graph, source)
                except nx.NodeNotFound:
                    pred = {}
                self._predecessors[source] = pred
                if (
                    self.max_entries is not None
                    and len(self._predecessors) > self.max_entries
                ):
                    self._predecessors.popitem(last=False)
            elif self.max_entries is not None:
                self._predecessors.move_to_end(source)
            if target in pred:
                routes = [
                    tuple(p)
                    for p in _build_paths_from_predecessors({source}, target, pred)
                ]
        self._store(self._ecmp, key, routes)
        return routes

    def load_balanced(
        self, source: int, target: int, random_state: RandomState = None
    ) -> Optional[RouterRoute]:
        """Cached-enumeration :func:`load_balanced_route`.

        The ECMP route list is enumerated once per pair; the per-probe
        random pick draws from the generator exactly as the uncached
        version does.
        """
        rng = as_generator(random_state)
        routes = self._equal_cost_routes(source, target)
        if routes is None:
            return None
        return routes[int(rng.integers(0, len(routes)))]


def route_links(route: RouterRoute) -> List[Tuple[int, int]]:
    """Return the router-level (directed) edges traversed by ``route``."""
    return [(route[i], route[i + 1]) for i in range(len(route) - 1)]


def select_endpoint_pairs(
    sources: Sequence[int],
    destinations: Sequence[int],
    count: int,
    random_state: RandomState = None,
) -> List[Tuple[int, int]]:
    """Pick ``count`` distinct (source, destination) pairs.

    Raises
    ------
    TopologyError
        If fewer than ``count`` distinct pairs exist.
    """
    if not sources or not destinations:
        raise TopologyError("select_endpoint_pairs: empty source/destination pool")
    rng = as_generator(random_state)
    all_pairs = [(s, d) for s in sources for d in destinations if s != d]
    if len(all_pairs) < count:
        raise TopologyError(
            f"requested {count} endpoint pairs but only {len(all_pairs)} exist"
        )
    chosen = rng.choice(len(all_pairs), size=count, replace=False)
    return [all_pairs[int(i)] for i in chosen]


def select_endpoint_pairs_lazy(
    sources: Sequence[int],
    destinations: Sequence[int],
    count: int,
    random_state: RandomState = None,
) -> List[Tuple[int, int]]:
    """Pick ``count`` distinct pairs without enumerating all O(V*D) of them.

    The sparse large-topology path's replacement for
    :func:`select_endpoint_pairs`: pairs are addressed as indices into the
    virtual grid ``sources x destinations`` and drawn by rejection sampling
    (O(count) memory) when the grid is sparse enough, falling back to one
    index permutation otherwise. The pools must be disjoint — on the
    derived monitoring deployments destinations are drawn from the
    non-vantage nodes, so no ``s == d`` pair can occur.

    The draw order is deterministic in ``random_state`` but intentionally
    *not* identical to :func:`select_endpoint_pairs` (whose draws are part
    of the bundled datasets' identity); callers comparing dense and sparse
    topology paths must use this selector on both sides.
    """
    if not len(sources) or not len(destinations):
        raise TopologyError("select_endpoint_pairs_lazy: empty pool")
    if set(sources) & set(destinations):
        raise TopologyError(
            "select_endpoint_pairs_lazy: source/destination pools overlap"
        )
    total = len(sources) * len(destinations)
    if total < count:
        raise TopologyError(
            f"requested {count} endpoint pairs but only {total} exist"
        )
    rng = as_generator(random_state)
    if 4 * count >= total:
        chosen = rng.permutation(total)[:count]
    else:
        seen: set = set()
        picks: List[int] = []
        while len(picks) < count:
            index = int(rng.integers(total))
            if index not in seen:
                seen.add(index)
                picks.append(index)
        chosen = np.asarray(picks)
    width = len(destinations)
    return [
        (int(sources[int(i) // width]), int(destinations[int(i) % width]))
        for i in chosen
    ]


def bfs_parents_graph(graph: nx.Graph, source: int) -> dict:
    """First-discovery BFS parent map with ascending-neighbour tie-breaks.

    Unlike ``nx.shortest_path`` (bidirectional search, whose tie-breaks
    depend on which frontier meets first), this plain FIFO BFS visiting
    neighbours in ascending node order is reproducible by the array-based
    :meth:`CompactGraph.bfs_parents` — the property the scaling campaign's
    dense/sparse bit-identity rests on. One BFS serves every destination.
    """
    parents = {source: source}
    frontier = [source]
    while frontier:
        next_frontier: List[int] = []
        for node in frontier:
            for neighbor in sorted(graph.neighbors(node)):
                if neighbor not in parents:
                    parents[neighbor] = node
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return parents


def route_from_parents(parents, source: int, target: int) -> Optional[RouterRoute]:
    """Walk a BFS parent map/array back from ``target`` to ``source``.

    Works on both the dict produced by :func:`bfs_parents_graph` and the
    int array produced by :meth:`CompactGraph.bfs_parents` (where ``-1``
    marks unreachable nodes).
    """
    if isinstance(parents, dict):
        if target not in parents:
            return None
        get = parents.__getitem__
    else:
        if target >= len(parents) or parents[int(target)] < 0:
            return None
        get = lambda node: int(parents[node])  # noqa: E731
    route = [int(target)]
    node = int(target)
    while node != source:
        node = get(node)
        route.append(node)
    route.reverse()
    return tuple(route)


class CompactGraph:
    """An undirected graph as CSR adjacency arrays over dense node ids.

    The sparse counterpart of the router-level ``nx.Graph``: neighbours
    live in two flat numpy arrays (``indptr``/``neighbors``) instead of
    per-node dict-of-dicts, cutting a 10k-node AS graph from tens of MB of
    Python objects to a few hundred KB. Neighbour lists are sorted
    ascending, so :meth:`bfs_parents` discovers nodes in exactly the order
    :func:`bfs_parents_graph` does on the equivalent ``nx.Graph``.
    """

    __slots__ = ("num_nodes", "indptr", "neighbors")

    def __init__(self, num_nodes: int, indptr: np.ndarray, neighbors: np.ndarray):
        self.num_nodes = int(num_nodes)
        self.indptr = indptr
        self.neighbors = neighbors

    @classmethod
    def from_edges(
        cls, num_nodes: int, src: np.ndarray, dst: np.ndarray
    ) -> "CompactGraph":
        """Build from edge endpoint arrays (self-loops and dupes dropped)."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise TopologyError("CompactGraph: src/dst arrays differ in length")
        if num_nodes < 1:
            raise TopologyError("CompactGraph: need at least one node")
        if src.size and (
            src.min() < 0 or dst.min() < 0
            or src.max() >= num_nodes or dst.max() >= num_nodes
        ):
            raise TopologyError("CompactGraph: edge endpoint out of range")
        keep = src != dst
        src, dst = src[keep], dst[keep]
        # Both directions, sorted by (node, neighbour) in one key so each
        # adjacency slice comes out ascending; duplicate edges collapse.
        tails = np.concatenate([src, dst])
        heads = np.concatenate([dst, src])
        keys = tails * num_nodes + heads
        keys = np.unique(keys)
        tails = keys // num_nodes
        heads = keys % num_nodes
        degrees = np.bincount(tails, minlength=num_nodes)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        return cls(num_nodes, indptr, heads.astype(np.uint32))

    @property
    def num_edges(self) -> int:
        """Undirected edge count."""
        return int(self.neighbors.size) // 2

    @property
    def nbytes(self) -> int:
        """Bytes held by the adjacency arrays."""
        return int(self.indptr.nbytes + self.neighbors.nbytes)

    def degree(self, node: int) -> int:
        return int(self.indptr[node + 1] - self.indptr[node])

    def neighbors_of(self, node: int) -> np.ndarray:
        """Sorted neighbour ids of ``node`` (a view, do not mutate)."""
        return self.neighbors[self.indptr[node] : self.indptr[node + 1]]

    def bfs_parents(self, source: int) -> np.ndarray:
        """First-discovery BFS parent array (``-1`` = unreachable).

        Mirrors :func:`bfs_parents_graph` node for node: FIFO frontier,
        neighbours ascending, ``parents[source] == source``.
        """
        parents = np.full(self.num_nodes, -1, dtype=np.int64)
        parents[source] = source
        frontier = np.array([source], dtype=np.int64)
        indptr, neighbors = self.indptr, self.neighbors
        while frontier.size:
            # Gather every frontier node's adjacency slice; first write
            # wins within a level because slices are visited in frontier
            # (discovery) order and neighbours ascend within each slice.
            next_frontier: List[int] = []
            for node in frontier:
                for neighbor in neighbors[indptr[node] : indptr[node + 1]]:
                    neighbor = int(neighbor)
                    if parents[neighbor] < 0:
                        parents[neighbor] = node
                        next_frontier.append(neighbor)
            frontier = np.asarray(next_frontier, dtype=np.int64)
        return parents


class SparseRouteTable:
    """Append-only CSR store for route sequences (router or link ids).

    Replaces per-route Python tuples with two flat arrays — ``indptr``
    (int64 offsets) and ``items`` (uint32 ids) — grown by capacity
    doubling. 10k routes of average length 12 cost ~0.5 MB instead of the
    several MB of tuple/int objects, and reading a route back is a zero-copy
    array view.
    """

    _INITIAL_ROUTES = 64
    _INITIAL_ITEMS = 1024

    def __init__(self) -> None:
        self._indptr = np.zeros(self._INITIAL_ROUTES + 1, dtype=np.int64)
        self._items = np.empty(self._INITIAL_ITEMS, dtype=np.uint32)
        self._num_routes = 0

    def __len__(self) -> int:
        return self._num_routes

    @property
    def num_items(self) -> int:
        """Total ids stored across all routes."""
        return int(self._indptr[self._num_routes])

    @property
    def nbytes(self) -> int:
        """Bytes held by the backing arrays (capacity, not just fill)."""
        return int(self._indptr.nbytes + self._items.nbytes)

    def append(self, sequence) -> int:
        """Store one route; returns its index."""
        row = np.asarray(sequence, dtype=np.uint32)
        if row.ndim != 1:
            raise TopologyError("SparseRouteTable: route must be a 1-D sequence")
        start = self.num_items
        stop = start + row.size
        if self._num_routes + 1 >= self._indptr.size:
            grown = np.zeros(2 * self._indptr.size, dtype=np.int64)
            grown[: self._indptr.size] = self._indptr
            self._indptr = grown
        if stop > self._items.size:
            grown = np.empty(max(stop, 2 * self._items.size), dtype=np.uint32)
            grown[:start] = self._items[:start]
            self._items = grown
        self._items[start:stop] = row
        self._num_routes += 1
        self._indptr[self._num_routes] = stop
        return self._num_routes - 1

    def route(self, index: int) -> np.ndarray:
        """The ``index``-th route as a zero-copy uint32 view."""
        if not 0 <= index < self._num_routes:
            raise TopologyError(f"SparseRouteTable: no route {index}")
        return self._items[self._indptr[index] : self._indptr[index + 1]]

    def __iter__(self) -> Iterator[np.ndarray]:
        for index in range(self._num_routes):
            yield self.route(index)
