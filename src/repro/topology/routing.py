"""Path computation over router-level graphs.

The topology generators produce a router-level :mod:`networkx` graph; this
module selects end-to-end router-level routes (shortest paths, with optional
load-balanced alternatives) which :mod:`repro.topology.aslevel` then abstracts
into the AS-level network the tomography algorithms observe.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import networkx as nx

from repro.exceptions import TopologyError
from repro.util.rng import RandomState, as_generator

#: A router-level route: a sequence of router identifiers.
RouterRoute = Tuple[int, ...]


def shortest_route(graph: nx.Graph, source: int, target: int) -> Optional[RouterRoute]:
    """Return a shortest route from ``source`` to ``target``, or ``None``.

    Ties are broken deterministically by networkx's BFS ordering; use
    :func:`load_balanced_route` when per-flow path diversity is needed.
    """
    try:
        return tuple(nx.shortest_path(graph, source, target))
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return None


def load_balanced_route(
    graph: nx.Graph,
    source: int,
    target: int,
    random_state: RandomState = None,
) -> Optional[RouterRoute]:
    """Return one of the shortest routes chosen uniformly at random.

    Models equal-cost multi-path (ECMP) forwarding: different probe flows
    between the same endpoints may take different equal-length routes, which
    is one of the traceroute artefacts the paper's operators fought with
    ("load-balancing interferes with traceroute results").
    """
    rng = as_generator(random_state)
    try:
        routes = list(nx.all_shortest_paths(graph, source, target))
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        return None
    return tuple(routes[int(rng.integers(0, len(routes)))])


class RouteOracle:
    """Memoised route computation for repeated-source probing campaigns.

    Traceroute campaigns probe from a handful of vantage routers toward
    hundreds of destinations; recomputing a BFS per probe dominates topology
    generation. The oracle caches, per source, the unweighted predecessor
    DAG (one BFS serving every destination's ECMP route enumeration) and,
    per (source, target) pair, the deterministic shortest route — producing
    routes identical to :func:`shortest_route` / :func:`load_balanced_route`
    call-for-call.
    """

    def __init__(self, graph: nx.Graph) -> None:
        self.graph = graph
        self._shortest: dict = {}
        self._ecmp: dict = {}
        self._predecessors: dict = {}

    def shortest(self, source: int, target: int) -> Optional[RouterRoute]:
        """Cached :func:`shortest_route`."""
        key = (source, target)
        try:
            return self._shortest[key]
        except KeyError:
            route = shortest_route(self.graph, source, target)
            self._shortest[key] = route
            return route

    def _equal_cost_routes(
        self, source: int, target: int
    ) -> Optional[List[RouterRoute]]:
        key = (source, target)
        try:
            return self._ecmp[key]
        except KeyError:
            pass
        try:
            # Private networkx helper: exactly the enumeration
            # all_shortest_paths performs on its internally-computed
            # predecessor map, which lets one BFS per source serve every
            # target. Fall back to the public API if it moves.
            from networkx.algorithms.shortest_paths.generic import (
                _build_paths_from_predecessors,
            )
        except ImportError:
            _build_paths_from_predecessors = None
        routes: Optional[List[RouterRoute]] = None
        if _build_paths_from_predecessors is None:
            try:
                routes = [
                    tuple(p)
                    for p in nx.all_shortest_paths(self.graph, source, target)
                ]
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                routes = None
        else:
            pred = self._predecessors.get(source)
            if pred is None:
                try:
                    pred = nx.predecessor(self.graph, source)
                except nx.NodeNotFound:
                    pred = {}
                self._predecessors[source] = pred
            if target in pred:
                routes = [
                    tuple(p)
                    for p in _build_paths_from_predecessors({source}, target, pred)
                ]
        self._ecmp[key] = routes
        return routes

    def load_balanced(
        self, source: int, target: int, random_state: RandomState = None
    ) -> Optional[RouterRoute]:
        """Cached-enumeration :func:`load_balanced_route`.

        The ECMP route list is enumerated once per pair; the per-probe
        random pick draws from the generator exactly as the uncached
        version does.
        """
        rng = as_generator(random_state)
        routes = self._equal_cost_routes(source, target)
        if routes is None:
            return None
        return routes[int(rng.integers(0, len(routes)))]


def route_links(route: RouterRoute) -> List[Tuple[int, int]]:
    """Return the router-level (directed) edges traversed by ``route``."""
    return [(route[i], route[i + 1]) for i in range(len(route) - 1)]


def select_endpoint_pairs(
    sources: Sequence[int],
    destinations: Sequence[int],
    count: int,
    random_state: RandomState = None,
) -> List[Tuple[int, int]]:
    """Pick ``count`` distinct (source, destination) pairs.

    Raises
    ------
    TopologyError
        If fewer than ``count`` distinct pairs exist.
    """
    if not sources or not destinations:
        raise TopologyError("select_endpoint_pairs: empty source/destination pool")
    rng = as_generator(random_state)
    all_pairs = [(s, d) for s in sources for d in destinations if s != d]
    if len(all_pairs) < count:
        raise TopologyError(
            f"requested {count} endpoint pairs but only {len(all_pairs)} exist"
        )
    chosen = rng.choice(len(all_pairs), size=count, replace=False)
    return [all_pairs[int(i)] for i in chosen]
