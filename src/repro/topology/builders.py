"""Hand-built topologies, including the paper's Fig. 1 toy example.

These small networks back the library's unit tests and the paper's worked
examples (Sections 2, 3.1 and 5.3 all reason about Fig. 1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.exceptions import TopologyError
from repro.topology.graph import Link, Network, Path


def fig1_topology(case: int = 1) -> Network:
    """Build the toy topology of the paper's Fig. 1.

    Links ``E* = {e1, e2, e3, e4}`` (0-indexed as 0..3) and paths
    ``P* = {p1, p2, p3}`` with ``p1 = (e1, e2)``, ``p2 = (e1, e3)``,
    ``p3 = (e4, e3)``.

    Parameters
    ----------
    case:
        * ``1`` — correlation sets ``{{e1}, {e2, e3}, {e4}}`` (Fig. 1 Case 1,
          where Identifiability++ holds);
        * ``2`` — correlation sets ``{{e1, e4}, {e2, e3}}`` (Fig. 1 Case 2,
          where Identifiability++ fails: ``{e1, e4}`` and ``{e2, e3}`` are
          traversed by the same paths ``{p1, p2, p3}``).

    The correlation sets are expressed through the ``asn`` attribute of each
    link (one AS per correlation set).
    """
    if case == 1:
        asns = {0: 0, 1: 1, 2: 1, 3: 2}
    elif case == 2:
        asns = {0: 0, 1: 1, 2: 1, 3: 0}
    else:
        raise TopologyError(f"fig1_topology: case must be 1 or 2, got {case}")

    # Vertices: 0, 1 are source end-hosts; 2, 3 intermediate; 4, 5 destinations.
    links = [
        Link(index=0, src=0, dst=2, asn=asns[0]),  # e1
        Link(index=1, src=2, dst=4, asn=asns[1]),  # e2
        Link(index=2, src=2, dst=5, asn=asns[2]),  # e3
        Link(index=3, src=1, dst=2, asn=asns[3]),  # e4
    ]
    paths = [
        Path(index=0, links=(0, 1)),  # p1 = e1 e2
        Path(index=1, links=(0, 2)),  # p2 = e1 e3
        Path(index=2, links=(3, 2)),  # p3 = e4 e3
    ]
    return Network(links, paths, name=f"fig1-case{case}")


def line_topology(num_links: int, asn_of: Optional[Sequence[int]] = None) -> Network:
    """A single path traversing ``num_links`` links in a row.

    The canonical *unidentifiable* topology for Condition 1: every link is
    traversed by exactly the same (single) path.
    """
    if num_links < 1:
        raise TopologyError("line_topology requires at least one link")
    asn_of = list(asn_of) if asn_of is not None else [0] * num_links
    if len(asn_of) != num_links:
        raise TopologyError("asn_of must have one entry per link")
    links = [Link(index=i, src=i, dst=i + 1, asn=asn_of[i]) for i in range(num_links)]
    paths = [Path(index=0, links=tuple(range(num_links)))]
    return Network(links, paths, name=f"line-{num_links}")


def star_topology(num_spokes: int, distinct_asns: bool = True) -> Network:
    """A hub with ``num_spokes`` in-links and one monitored path per pair.

    Every pair of spokes (i, j) produces a two-link path i -> hub -> j using
    an out-link shared per destination; with ``num_spokes >= 3`` this yields
    a dense, fully identifiable topology.
    """
    if num_spokes < 2:
        raise TopologyError("star_topology requires at least two spokes")
    links: List[Link] = []
    hub = 0
    # In-links: vertex (i+1) -> hub; out-links: hub -> vertex (num_spokes+1+j).
    for i in range(num_spokes):
        links.append(Link(index=i, src=i + 1, dst=hub, asn=i if distinct_asns else 0))
    for j in range(num_spokes):
        links.append(
            Link(
                index=num_spokes + j,
                src=hub,
                dst=num_spokes + 1 + j,
                asn=(num_spokes + j) if distinct_asns else 0,
            )
        )
    paths: List[Path] = []
    index = 0
    for i in range(num_spokes):
        for j in range(num_spokes):
            if i == j:
                continue
            paths.append(Path(index=index, links=(i, num_spokes + j)))
            index += 1
    return Network(links, paths, name=f"star-{num_spokes}")


def network_from_paths(
    path_links: Sequence[Sequence[str]],
    asn_of: Optional[Dict[str, int]] = None,
    router_links_of: Optional[Dict[str, Sequence[int]]] = None,
    name: str = "custom",
) -> Network:
    """Build a network from named links arranged into paths.

    A convenience constructor for tests and examples: links are referred to
    by string names; indices, vertices and the incidence structure are
    derived automatically.

    Parameters
    ----------
    path_links:
        One sequence of link names per path, in traversal order.
    asn_of:
        Optional mapping from link name to AS number (defaults to a distinct
        AS per link, i.e. all links independent).
    router_links_of:
        Optional mapping from link name to the underlying router-level link
        identifiers (defaults to a private router-level link per logical
        link, i.e. no induced correlations).

    Example
    -------
    >>> net = network_from_paths([["a", "b"], ["a", "c"]])
    >>> net.num_links, net.num_paths
    (3, 2)
    """
    order: List[str] = []
    seen = set()
    for links in path_links:
        for name_ in links:
            if name_ not in seen:
                seen.add(name_)
                order.append(name_)
    index_of = {link_name: i for i, link_name in enumerate(order)}
    asn_of = asn_of or {}
    router_links_of = router_links_of or {}
    links_out = [
        Link(
            index=i,
            src=2 * i,
            dst=2 * i + 1,
            asn=asn_of.get(link_name, 10_000 + i),
            router_links=frozenset(router_links_of.get(link_name, (100_000 + i,))),
        )
        for i, link_name in enumerate(order)
    ]
    paths_out = [
        Path(index=p, links=tuple(index_of[link_name] for link_name in links))
        for p, links in enumerate(path_links)
    ]
    return Network(links_out, paths_out, name=name)
