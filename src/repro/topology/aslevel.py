"""Router-level to AS-level abstraction.

The paper's operator collects a *router-level* graph from traceroutes, maps
each router to an AS, and derives an *AS-level* graph in which

* each vertex is a border router,
* each edge is either an **inter-domain link** between border routers of
  peering ASes or an **intra-domain path** between two border routers of the
  same AS,

and "the router-level graph tells us how the links in the AS-level graph are
correlated — if a router-level link becomes congested, then all the AS-level
links that share this router-level link become congested at the same time"
(Section 3.2).

This module performs that derivation: given router-level routes (sequences of
routers annotated with ASes), it segments each route into AS-level links,
deduplicates links across routes, records each AS-level link's underlying
router-level edge set, and assembles the :class:`~repro.topology.graph.Network`
that the tomography algorithms observe.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.exceptions import TopologyError
from repro.topology.graph import Link, Network, Path
from repro.topology.routing import RouterRoute, SparseRouteTable


class IdentityAsnMap(MappingABC):
    """The identity router->AS mapping, in O(1) memory.

    AS-level graphs (CAIDA as-rel, the synthetic power-law generator) make
    every node its own AS; materialising ``{n: n}`` for a 10k-node snapshot
    wastes megabytes on a tautology. Combined with
    ``AsLevelBuilder(..., copy_mapping=False)`` the builder never holds a
    per-node dict at all.
    """

    def __init__(self, num_nodes: int) -> None:
        self._num_nodes = int(num_nodes)

    def __getitem__(self, node: int) -> int:
        if 0 <= node < self._num_nodes:
            return node
        raise KeyError(node)

    def __len__(self) -> int:
        return self._num_nodes

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._num_nodes))


@dataclass(frozen=True)
class _SegmentKey:
    """Identity of an AS-level link.

    ``kind`` is ``"inter"`` (a single router-level edge crossing an AS
    boundary) or ``"intra"`` (a maximal same-AS run between border routers).
    """

    kind: str
    asn: int
    entry: int
    exit: int


class AsLevelBuilder:
    """Incrementally derive an AS-level :class:`Network` from router routes.

    Parameters
    ----------
    asn_of_router:
        Mapping from router identifier to its AS number.
    source_asn:
        AS of the monitoring ISP. Links inside the source AS can optionally
        be dropped (the operator can observe its own network directly, and
        the paper's scenario monitors the *peers*).
    include_source_as:
        Keep links belonging to ``source_asn`` when true (default), so tests
        can exercise full paths; experiment topologies set this to False.
    sparse_paths:
        Store accepted link sequences in a CSR
        :class:`~repro.topology.routing.SparseRouteTable` instead of a list
        of Python tuples — the memory-bounded path for internet-scale
        sweeps. The built :class:`Network` is identical either way.
    copy_mapping:
        Defensive-copy ``asn_of_router`` (default, the historical
        behaviour). Pass ``False`` with a shared or virtual mapping (e.g.
        :class:`IdentityAsnMap`) to avoid materialising a per-router dict.
    """

    def __init__(
        self,
        asn_of_router: Mapping[int, int],
        source_asn: Optional[int] = None,
        include_source_as: bool = True,
        sparse_paths: bool = False,
        copy_mapping: bool = True,
    ) -> None:
        self._asn_of = dict(asn_of_router) if copy_mapping else asn_of_router
        self._source_asn = source_asn
        self._include_source_as = include_source_as
        self._link_index: Dict[_SegmentKey, int] = {}
        self._links: List[Link] = []
        self._paths: Union[List[Tuple[int, ...]], SparseRouteTable] = (
            SparseRouteTable() if sparse_paths else []
        )
        self._edge_ids: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    def _router_edge_id(self, edge: Tuple[int, int]) -> int:
        if edge not in self._edge_ids:
            self._edge_ids[edge] = len(self._edge_ids)
        return self._edge_ids[edge]

    def _asn(self, router: int) -> int:
        try:
            return self._asn_of[router]
        except KeyError as exc:
            raise TopologyError(f"router {router} has no AS mapping") from exc

    def _segments(self, route: RouterRoute) -> List[Tuple[_SegmentKey, Tuple[int, ...]]]:
        """Split ``route`` into AS-level segments with their router-edge ids."""
        segments: List[Tuple[_SegmentKey, Tuple[int, ...]]] = []
        run_start = 0
        for i in range(len(route) - 1):
            u, v = route[i], route[i + 1]
            asn_u, asn_v = self._asn(u), self._asn(v)
            if asn_u == asn_v:
                continue
            # Close the intra-AS run [run_start .. i] if it spans >= 1 edge.
            if i > run_start:
                edge_ids = tuple(
                    self._router_edge_id((route[j], route[j + 1]))
                    for j in range(run_start, i)
                )
                segments.append(
                    (
                        _SegmentKey("intra", asn_u, route[run_start], route[i]),
                        edge_ids,
                    )
                )
            # The inter-domain edge itself. Attribute it to the AS being
            # *entered*: the downstream peer owns the ingress capacity.
            segments.append(
                (
                    _SegmentKey("inter", asn_v, u, v),
                    (self._router_edge_id((u, v)),),
                )
            )
            run_start = i + 1
        last = len(route) - 1
        if last > run_start:
            asn_last = self._asn(route[run_start])
            edge_ids = tuple(
                self._router_edge_id((route[j], route[j + 1]))
                for j in range(run_start, last)
            )
            segments.append(
                (
                    _SegmentKey("intra", asn_last, route[run_start], route[last]),
                    edge_ids,
                )
            )
        return segments

    # ------------------------------------------------------------------
    def add_route(self, route: RouterRoute) -> bool:
        """Register one router-level route as a monitored AS-level path.

        Returns ``True`` if the route produced a valid AS-level path.
        Routes that collapse to zero AS-level links (single-AS routes when
        the source AS is excluded), or that would traverse the same AS-level
        link twice (a loop at the AS level), are rejected.
        """
        if len(route) < 2:
            return False
        link_sequence: List[int] = []
        for key, edge_ids in self._segments(route):
            if (
                not self._include_source_as
                and self._source_asn is not None
                and key.asn == self._source_asn
                and key.kind == "intra"
            ):
                continue
            index = self._link_index.get(key)
            if index is None:
                index = len(self._links)
                self._link_index[key] = index
                self._links.append(
                    Link(
                        index=index,
                        src=key.entry,
                        dst=key.exit,
                        asn=key.asn,
                        router_links=frozenset(edge_ids),
                    )
                )
            link_sequence.append(index)
        if not link_sequence or len(set(link_sequence)) != len(link_sequence):
            return False
        if isinstance(self._paths, SparseRouteTable):
            self._paths.append(link_sequence)
        else:
            self._paths.append(tuple(link_sequence))
        return True

    def build(self, name: str = "as-level") -> Network:
        """Assemble the AS-level :class:`Network` from all accepted routes."""
        if not len(self._paths):
            raise TopologyError("AsLevelBuilder: no valid routes were added")
        paths = [
            Path(index=i, links=tuple(int(link) for link in links))
            for i, links in enumerate(self._paths)
        ]
        return Network(self._links, paths, name=name)

    @property
    def num_routes(self) -> int:
        """Number of routes accepted so far."""
        return len(self._paths)
