"""Topology persistence: save/load :class:`Network` objects as JSON.

Operators collect topologies once (an expensive traceroute campaign) and
monitor them for a long time; persisting the derived AS-level view decouples
the two. The format is stable, human-inspectable JSON.
"""

from __future__ import annotations

import json
from pathlib import Path as FilePath
from typing import Any, Dict, Union

from repro.exceptions import TopologyError
from repro.topology.graph import Link, Network, Path

#: Format version written into every file.
FORMAT_VERSION = 1


def network_to_dict(network: Network) -> Dict[str, Any]:
    """Serialise ``network`` to plain JSON-compatible data."""
    return {
        "format_version": FORMAT_VERSION,
        "name": network.name,
        "links": [
            {
                "index": link.index,
                "src": link.src,
                "dst": link.dst,
                "asn": link.asn,
                "router_links": sorted(link.router_links),
            }
            for link in network.links
        ],
        "paths": [
            {"index": path.index, "links": list(path.links)}
            for path in network.paths
        ],
    }


def network_from_dict(data: Dict[str, Any]) -> Network:
    """Rebuild a :class:`Network` from :func:`network_to_dict` data.

    Raises
    ------
    TopologyError
        On version mismatch or malformed content.
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise TopologyError(
            f"unsupported topology format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    try:
        links = [
            Link(
                index=int(entry["index"]),
                src=int(entry["src"]),
                dst=int(entry["dst"]),
                asn=int(entry["asn"]),
                router_links=frozenset(int(r) for r in entry["router_links"]),
            )
            for entry in data["links"]
        ]
        paths = [
            Path(index=int(entry["index"]), links=tuple(int(e) for e in entry["links"]))
            for entry in data["paths"]
        ]
        name = str(data.get("name", "network"))
    except (KeyError, TypeError, ValueError) as exc:
        raise TopologyError(f"malformed topology data: {exc}") from exc
    return Network(links, paths, name=name)


def save_network(network: Network, path: Union[str, FilePath]) -> None:
    """Write ``network`` to ``path`` as JSON."""
    FilePath(path).write_text(
        json.dumps(network_to_dict(network), indent=2, sort_keys=True)
    )


def load_network(path: Union[str, FilePath]) -> Network:
    """Read a :class:`Network` previously written by :func:`save_network`."""
    try:
        data = json.loads(FilePath(path).read_text())
    except json.JSONDecodeError as exc:
        raise TopologyError(f"not a topology JSON file: {path}") from exc
    return network_from_dict(data)
