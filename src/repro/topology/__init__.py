"""Topology substrate: network model, generators, and AS-level derivation.

The paper's network model (Section 2): a directed graph whose edges are
*logical links*; a *path* is a loop-free sequence of links between end-hosts;
links are grouped into *correlation sets* (one per Autonomous System).

Submodules
----------
``graph``
    Core :class:`~repro.topology.graph.Network` model with the path/link
    coverage functions ``Paths()`` and ``Links()`` of Section 5.2.
``builders``
    Hand-built topologies, including the paper's Fig. 1 toy topology.
``brite``
    BRITE-like two-level synthetic topology generator (dense AS-level graphs).
``traceroute``
    Traceroute-collection simulator producing *Sparse* topologies, the
    substitute for the source ISP's proprietary measurement campaign.
``aslevel``
    Router-level → AS-level graph derivation and correlation structure.
``routing``
    Path computation over router-level graphs.
"""

from repro.topology.graph import Link, Network, Path
from repro.topology.builders import (
    fig1_topology,
    line_topology,
    network_from_paths,
    star_topology,
)
from repro.topology.brite import BriteConfig, generate_brite_network
from repro.topology.traceroute import TracerouteConfig, generate_sparse_network

__all__ = [
    "Link",
    "Network",
    "Path",
    "fig1_topology",
    "line_topology",
    "star_topology",
    "network_from_paths",
    "BriteConfig",
    "generate_brite_network",
    "TracerouteConfig",
    "generate_sparse_network",
]
