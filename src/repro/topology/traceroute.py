"""Traceroute-collection simulator producing *Sparse* topologies.

The paper's Sparse topologies are real: the source ISP's operator ran
traceroutes from a few end-hosts inside her network toward a large number of
external end-hosts and discarded all incomplete traceroutes; "most
traceroutes returned incomplete/inconclusive results and had to be discarded,
which resulted in a 'sparse' view, where few paths intersect one another"
(Section 3.2).

We cannot obtain that proprietary dataset, so we simulate the *collection
process* itself (substitution documented in DESIGN.md):

* an Internet-like two-level underlay (reusing the BRITE-style generator,
  scaled to many stub ASes so destinations rarely share infrastructure);
* per-traceroute router behaviour: every router on the route fails to
  respond with some probability (``response_prob``), and equal-cost
  multi-path load balancing perturbs routes (``load_balance_prob``);
* any traceroute with a non-responding router is *incomplete* and discarded,
  exactly like the operator's campaign.

What survives is a sparse path set: long routes are disproportionately
discarded, and the destinations that remain are scattered across many stub
ASes, so few paths intersect and the tomographic equation system has low
rank — the regime in which the paper shows all Boolean-inference algorithms
break down.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.exceptions import TopologyError
from repro.topology.aslevel import AsLevelBuilder
from repro.topology.brite import BriteConfig, build_router_internet, _dedupe_paths
from repro.topology.routing import RouteOracle
from repro.util.rng import RandomState, as_generator, derive_rng


@dataclass
class TracerouteConfig:
    """Parameters of the traceroute measurement campaign.

    Defaults give a laptop-scale sparse topology; the paper's instance is
    ~2000 links / 1500 paths (scale ``num_probes`` and the underlay up).
    """

    underlay: BriteConfig = field(
        default_factory=lambda: BriteConfig(
            num_ases=40,
            as_attachment=1,
            routers_per_as=5,
            inter_as_links=1,
            num_vantage_points=2,
        )
    )
    num_probes: int = 600
    response_prob: float = 0.93
    load_balance_prob: float = 0.3
    max_kept_paths: int = 400

    def validate(self) -> None:
        """Raise :class:`TopologyError` on inconsistent parameters."""
        if not 0.0 < self.response_prob <= 1.0:
            raise TopologyError("TracerouteConfig: response_prob must be in (0, 1]")
        if not 0.0 <= self.load_balance_prob <= 1.0:
            raise TopologyError("TracerouteConfig: load_balance_prob in [0, 1]")
        if self.num_probes < 1:
            raise TopologyError("TracerouteConfig: need at least one probe")


@dataclass
class TracerouteCampaign:
    """Outcome statistics of a simulated measurement campaign."""

    probes_sent: int = 0
    incomplete_discarded: int = 0
    unroutable: int = 0
    kept: int = 0

    @property
    def discard_rate(self) -> float:
        """Fraction of routable probes discarded as incomplete."""
        routable = self.probes_sent - self.unroutable
        if routable <= 0:
            return 0.0
        return self.incomplete_discarded / routable


def generate_sparse_network(
    config: TracerouteConfig | None = None,
    random_state: RandomState = None,
    return_campaign: bool = False,
):
    """Simulate the traceroute campaign and return the Sparse network.

    Parameters
    ----------
    config:
        Campaign parameters (defaults documented on :class:`TracerouteConfig`).
    random_state:
        Seed or generator for the underlay, probe targets, and router
        response behaviour.
    return_campaign:
        When true, return ``(network, campaign)`` where ``campaign`` records
        how many traceroutes were discarded — mirroring the paper's remark
        that most had to be thrown away.
    """
    config = config or TracerouteConfig()
    config.validate()
    rng = as_generator(random_state)
    graph, asn_of = build_router_internet(config.underlay, derive_rng(rng, 0))
    probe_rng = derive_rng(rng, 1)

    routers = sorted(asn_of)
    source_asn = config.underlay.source_asn
    source_routers = [r for r in routers if asn_of[r] == source_asn]
    other_routers = [r for r in routers if asn_of[r] != source_asn]
    vantage = [
        int(i)
        for i in probe_rng.choice(
            source_routers,
            size=min(config.underlay.num_vantage_points, len(source_routers)),
            replace=False,
        )
    ]

    builder = AsLevelBuilder(asn_of, source_asn=source_asn, include_source_as=False)
    campaign = TracerouteCampaign()
    # Routes repeat across probes (few vantage points, reused targets);
    # the oracle memoises BFS work while leaving the RNG stream untouched.
    oracle = RouteOracle(graph)
    for _ in range(config.num_probes):
        if builder.num_routes >= config.max_kept_paths:
            break
        campaign.probes_sent += 1
        source = int(probe_rng.choice(vantage))
        destination = int(probe_rng.choice(other_routers))
        if probe_rng.random() < config.load_balance_prob:
            route = oracle.load_balanced(source, destination, probe_rng)
        else:
            route = oracle.shortest(source, destination)
        if route is None:
            campaign.unroutable += 1
            continue
        # Each intermediate router answers independently; one silent router
        # makes the traceroute incomplete, and incomplete traceroutes are
        # discarded (Section 3.2).
        hops = len(route) - 2  # endpoints always respond
        responded = probe_rng.random(max(hops, 0)) < config.response_prob
        if hops > 0 and not bool(responded.all()):
            campaign.incomplete_discarded += 1
            continue
        if builder.add_route(route):
            campaign.kept += 1
    if builder.num_routes == 0:
        raise TopologyError(
            "traceroute campaign kept no complete traceroutes; "
            "raise response_prob or num_probes"
        )
    network = _dedupe_paths(builder.build(name="sparse"), "sparse")
    if return_campaign:
        return network, campaign
    return network
