"""Core network model: links, paths, correlation sets, coverage functions.

This module implements the model of Section 2 of the paper:

* the network is a directed graph of logical links (``Link``);
* a path (``Path``) is a loop-free sequence of links between end-hosts;
* links are partitioned into *correlation sets* — in the paper's scenario,
  one correlation set per Autonomous System (Assumption 5);
* each AS-level link maps to a set of underlying *router-level* links; two
  AS-level links that share a router-level link become congested together
  (this is how the paper's simulator derives correlations, Section 3.2).

It also implements the coverage functions of Section 5.2:

* ``Paths(E)`` — the set of paths traversing at least one link of ``E``
  (:meth:`Network.paths_covering`);
* ``Links(P)`` — the set of links traversed by at least one path of ``P``
  (:meth:`Network.links_covered`).

The path-link *incidence matrix* (paths x links, boolean) backs both
functions with vectorised numpy operations; the same matrix is the "routing
matrix" every tomography algorithm consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import TopologyError


@dataclass(frozen=True)
class Link:
    """A logical (AS-level) link.

    Attributes
    ----------
    index:
        Position of the link in the network's arbitrary ordering (``e_i``).
    src, dst:
        Vertex identifiers (border routers or end-hosts).
    asn:
        The Autonomous System this link belongs to. Links sharing an ``asn``
        form one correlation set (Assumption 5 instantiated per the paper:
        "all links that belong to one AS are assigned to a separate
        correlation set").
    router_links:
        Identifiers of the underlying router-level links this logical link
        traverses. Two logical links sharing a router-level link are
        *correlated*: congestion of the shared router-level link congests
        both simultaneously.
    """

    index: int
    src: int
    dst: int
    asn: int = 0
    router_links: FrozenSet[int] = frozenset()

    def shares_router_link(self, other: "Link") -> bool:
        """Return whether this link and ``other`` share a router-level link."""
        return bool(self.router_links & other.router_links)


@dataclass(frozen=True)
class Path:
    """An end-to-end path: a loop-free sequence of link indices (``p_i``)."""

    index: int
    links: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.links:
            raise TopologyError(f"path {self.index} is empty")
        if len(set(self.links)) != len(self.links):
            raise TopologyError(
                f"path {self.index} traverses a link twice; the model forbids loops"
            )

    def __len__(self) -> int:
        return len(self.links)

    def traverses(self, link_index: int) -> bool:
        """Return whether this path traverses link ``link_index``."""
        return link_index in self.links


class Network:
    """An observed network: links, monitored paths, and correlation sets.

    Parameters
    ----------
    links:
        The set of all links ``E*`` in arbitrary (index) order.
    paths:
        The set of all monitored paths ``P*`` in arbitrary (index) order.
    name:
        Optional human-readable label (used in experiment reports).

    Raises
    ------
    TopologyError
        If link/path indices are inconsistent or a path references an
        unknown link.
    """

    def __init__(
        self,
        links: Sequence[Link],
        paths: Sequence[Path],
        name: str = "network",
    ) -> None:
        self.name = name
        self.links: List[Link] = list(links)
        self.paths: List[Path] = list(paths)
        self._validate()
        self._incidence = self._build_incidence()
        self._correlation_sets = self._build_correlation_sets()
        self._paths_by_link: List[FrozenSet[int]] = [
            frozenset(np.flatnonzero(self._incidence[:, e]).tolist())
            for e in range(self.num_links)
        ]
        self._path_link_masks: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        for position, link in enumerate(self.links):
            if link.index != position:
                raise TopologyError(
                    f"link at position {position} has index {link.index}; "
                    "links must be supplied in index order"
                )
        for position, path in enumerate(self.paths):
            if path.index != position:
                raise TopologyError(
                    f"path at position {position} has index {path.index}; "
                    "paths must be supplied in index order"
                )
            for link_index in path.links:
                if not 0 <= link_index < len(self.links):
                    raise TopologyError(
                        f"path {path.index} references unknown link {link_index}"
                    )

    def _build_incidence(self) -> np.ndarray:
        incidence = np.zeros((len(self.paths), len(self.links)), dtype=bool)
        for path in self.paths:
            incidence[path.index, list(path.links)] = True
        return incidence

    def _build_correlation_sets(self) -> List[FrozenSet[int]]:
        by_asn: Dict[int, List[int]] = {}
        for link in self.links:
            by_asn.setdefault(link.asn, []).append(link.index)
        return [frozenset(members) for _, members in sorted(by_asn.items())]

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_links(self) -> int:
        """Number of links ``|E*|``."""
        return len(self.links)

    @property
    def num_paths(self) -> int:
        """Number of monitored paths ``|P*|``."""
        return len(self.paths)

    @property
    def incidence(self) -> np.ndarray:
        """Boolean path-link incidence matrix of shape (num_paths, num_links).

        ``incidence[p, e]`` is true iff path ``p`` traverses link ``e``.
        The returned array is the internal one; treat it as read-only.
        """
        return self._incidence

    @property
    def correlation_sets(self) -> List[FrozenSet[int]]:
        """The correlation sets ``C*`` (one per AS), as frozensets of link indices."""
        return list(self._correlation_sets)

    def correlation_set_of(self, link_index: int) -> FrozenSet[int]:
        """Return the correlation set containing link ``link_index``."""
        asn = self.links[link_index].asn
        for members in self._correlation_sets:
            if link_index in members:
                return members
        raise TopologyError(f"link {link_index} (asn {asn}) is in no correlation set")

    def path_lengths(self) -> np.ndarray:
        """Return the number of links ``d`` of each path, shape (num_paths,)."""
        return self._incidence.sum(axis=1)

    # ------------------------------------------------------------------
    # Coverage functions of Section 5.2
    # ------------------------------------------------------------------
    def paths_covering(self, link_set: Iterable[int]) -> FrozenSet[int]:
        """``Paths(E)``: paths traversing at least one link of ``link_set``."""
        result: FrozenSet[int] = frozenset()
        for link_index in link_set:
            result = result | self._paths_by_link[link_index]
        return result

    def links_covered(self, path_set: Iterable[int]) -> FrozenSet[int]:
        """``Links(P)``: links traversed by at least one path of ``path_set``."""
        indices = list(path_set)
        if not indices:
            return frozenset()
        mask = self._incidence[indices].any(axis=0)
        return frozenset(np.flatnonzero(mask).tolist())

    def path_link_masks(self) -> List[int]:
        """Per-path link coverage as integer bitmasks (bit ``e`` = link ``e``).

        Coverage unions over a path set reduce to bitwise ORs of these
        masks, which is how the estimation stack builds equation rows
        without materialising frozensets per query. Computed once per
        network and cached.
        """
        if self._path_link_masks is None:
            masks = []
            for path in self.paths:
                mask = 0
                for link_index in path.links:
                    mask |= 1 << link_index
                masks.append(mask)
            self._path_link_masks = masks
        return self._path_link_masks

    def paths_through_all(self, link_set: Iterable[int]) -> FrozenSet[int]:
        """Paths traversing *every* link of ``link_set`` (used by Condition 1)."""
        indices = list(link_set)
        if not indices:
            return frozenset(range(self.num_paths))
        mask = self._incidence[:, indices].all(axis=1)
        return frozenset(np.flatnonzero(mask).tolist())

    # ------------------------------------------------------------------
    # Correlation structure
    # ------------------------------------------------------------------
    def shared_router_links(self) -> Dict[int, FrozenSet[int]]:
        """Map each router-level link shared by >= 2 logical links to those links.

        This is the correlation structure the paper derives from the
        router-level graph: "if a router-level link becomes congested, then
        all the AS-level links that share this router-level link become
        congested at the same time".
        """
        owners: Dict[int, List[int]] = {}
        for link in self.links:
            for router_link in link.router_links:
                owners.setdefault(router_link, []).append(link.index)
        return {
            router_link: frozenset(members)
            for router_link, members in owners.items()
            if len(members) >= 2
        }

    def correlated_link_pairs(self) -> List[Tuple[int, int]]:
        """All pairs of distinct logical links sharing a router-level link."""
        pairs = set()
        for members in self.shared_router_links().values():
            ordered = sorted(members)
            for i, a in enumerate(ordered):
                for b in ordered[i + 1 :]:
                    pairs.add((a, b))
        return sorted(pairs)

    # ------------------------------------------------------------------
    # Structural statistics (used by scenario builders and reports)
    # ------------------------------------------------------------------
    def link_degrees(self) -> np.ndarray:
        """Number of monitored paths traversing each link, shape (num_links,)."""
        return self._incidence.sum(axis=0)

    def edge_links(self) -> List[int]:
        """Links at the destination edge of the network (last hops).

        The Concentrated-Congestion scenario places congestion "toward the
        edge of the network, i.e., there is no congestion at the core": we
        take edge links to be the final hops of monitored paths — the links
        adjacent to destination end-hosts, which few paths share. (First
        hops sit next to the monitoring ISP's vantage points and are shared
        by many paths, i.e. they behave like core links.)
        """
        edge: set = set()
        for path in self.paths:
            edge.add(path.links[-1])
        return sorted(edge)

    def core_links(self) -> List[int]:
        """Links that are never the last hop of a monitored path."""
        edge = set(self.edge_links())
        return [link.index for link in self.links if link.index not in edge]

    def routing_rank(self) -> int:
        """Rank of the real-valued incidence matrix.

        Sparse topologies produce low-rank systems (Section 3.2: "the sparser
        the topology, the lower the rank of the resulting system of
        equations").
        """
        if self.num_paths == 0 or self.num_links == 0:
            return 0
        return int(np.linalg.matrix_rank(self._incidence.astype(float)))

    def describe(self) -> Mapping[str, float]:
        """Summary statistics used by experiment reports."""
        degrees = self.link_degrees()
        return {
            "num_links": float(self.num_links),
            "num_paths": float(self.num_paths),
            "num_correlation_sets": float(len(self._correlation_sets)),
            "mean_path_length": float(self.path_lengths().mean()) if self.paths else 0.0,
            "mean_link_degree": float(degrees.mean()) if self.num_links else 0.0,
            "routing_rank": float(self.routing_rank()),
            "num_correlated_pairs": float(len(self.correlated_link_pairs())),
        }

    def __repr__(self) -> str:
        return (
            f"Network(name={self.name!r}, links={self.num_links}, "
            f"paths={self.num_paths}, correlation_sets={len(self._correlation_sets)})"
        )
