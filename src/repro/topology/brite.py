"""BRITE-like two-level synthetic topology generator.

The paper evaluates on topologies produced by the BRITE generator [1]: a
*top-down* hierarchical model with an AS-level graph and per-AS router-level
graphs. BRITE itself is an external Java tool; we implement the same model
natively (substitution documented in DESIGN.md):

* the AS-level graph follows Barabasi-Albert preferential attachment (the
  mode BRITE uses for AS topologies);
* each AS contains a Waxman random router graph (BRITE's router-level mode),
  made connected by a random spanning backbone;
* each AS-level adjacency is realised by one or more inter-domain
  router-level links between randomly chosen border routers.

Monitored paths are shortest router-level routes from vantage routers in a
designated *source AS* to random destination routers elsewhere, abstracted to
the AS level by :class:`repro.topology.aslevel.AsLevelBuilder`. The result is
the "relatively dense" topology of Section 3.2 where "paths tend to
criss-cross", which is the favourable regime for inference algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx
import numpy as np

from repro.exceptions import TopologyError
from repro.topology.aslevel import AsLevelBuilder
from repro.topology.graph import Network
from repro.topology.routing import select_endpoint_pairs, shortest_route
from repro.util.rng import RandomState, as_generator, derive_rng


@dataclass
class BriteConfig:
    """Parameters of the BRITE-like generator.

    Defaults produce a laptop-scale dense topology (a few hundred AS-level
    links); scale ``num_ases``/``num_paths`` up for paper-sized instances
    (~1000 links, 1500 paths).
    """

    num_ases: int = 16
    as_attachment: int = 2
    routers_per_as: int = 6
    waxman_alpha: float = 0.4
    waxman_beta: float = 0.6
    inter_as_links: int = 2
    num_vantage_points: int = 4
    num_destinations: int = 80
    num_paths: int = 200
    source_asn: int = 0

    def validate(self) -> None:
        """Raise :class:`TopologyError` on inconsistent parameters."""
        if self.num_ases < 3:
            raise TopologyError("BriteConfig: need at least 3 ASes")
        if self.as_attachment < 1 or self.as_attachment >= self.num_ases:
            raise TopologyError("BriteConfig: as_attachment out of range")
        if self.routers_per_as < 2:
            raise TopologyError("BriteConfig: need at least 2 routers per AS")
        if self.num_paths < 1:
            raise TopologyError("BriteConfig: need at least one path")
        if not 0 <= self.source_asn < self.num_ases:
            raise TopologyError("BriteConfig: source_asn out of range")


def _waxman_as_graph(
    config: BriteConfig, asn: int, first_router: int, rng: np.random.Generator
) -> Tuple[nx.Graph, List[int]]:
    """Build one AS's router-level Waxman graph on fresh router identifiers."""
    n = config.routers_per_as
    routers = list(range(first_router, first_router + n))
    positions = rng.random((n, 2))
    graph = nx.Graph()
    graph.add_nodes_from(routers)
    scale = float(np.sqrt(2.0))
    for i in range(n):
        for j in range(i + 1, n):
            distance = float(np.linalg.norm(positions[i] - positions[j]))
            probability = config.waxman_alpha * np.exp(
                -distance / (config.waxman_beta * scale)
            )
            if rng.random() < probability:
                graph.add_edge(routers[i], routers[j])
    # Guarantee intra-AS connectivity with a random backbone path.
    order = rng.permutation(n)
    for i in range(n - 1):
        graph.add_edge(routers[int(order[i])], routers[int(order[i + 1])])
    return graph, routers


def build_router_internet(
    config: BriteConfig, random_state: RandomState = None
) -> Tuple[nx.Graph, Dict[int, int]]:
    """Build the full router-level graph and the router -> AS mapping.

    Returns
    -------
    (graph, asn_of_router):
        ``graph`` is an undirected router-level graph; ``asn_of_router``
        maps every router identifier to its AS number.
    """
    config.validate()
    rng = as_generator(random_state)
    as_graph = nx.barabasi_albert_graph(
        config.num_ases, config.as_attachment, seed=int(rng.integers(0, 2**31))
    )
    full = nx.Graph()
    asn_of: Dict[int, int] = {}
    routers_of: Dict[int, List[int]] = {}
    next_router = 0
    for asn in range(config.num_ases):
        subgraph, routers = _waxman_as_graph(config, asn, next_router, rng)
        next_router += config.routers_per_as
        # Router ids are globally fresh, so an in-place update equals
        # nx.union (which would re-copy the accumulated graph per AS).
        full.update(subgraph)
        routers_of[asn] = routers
        for router in routers:
            asn_of[router] = asn
    for a, b in as_graph.edges():
        for _ in range(config.inter_as_links):
            u = int(rng.choice(routers_of[a]))
            v = int(rng.choice(routers_of[b]))
            full.add_edge(u, v)
    return full, asn_of


def generate_brite_network(
    config: BriteConfig | None = None, random_state: RandomState = None
) -> Network:
    """Generate a dense Brite-style AS-level :class:`Network`.

    Vantage routers live in ``config.source_asn``; destinations are sampled
    from all other ASes. Duplicate AS-level paths (distinct router pairs that
    collapse to the same AS-level link sequence) are dropped, as are routes
    that would loop at the AS level.
    """
    config = config or BriteConfig()
    rng = as_generator(random_state)
    graph, asn_of = build_router_internet(config, derive_rng(rng, 0))
    routers = sorted(asn_of)
    source_routers = [r for r in routers if asn_of[r] == config.source_asn]
    other_routers = [r for r in routers if asn_of[r] != config.source_asn]
    pair_rng = derive_rng(rng, 1)
    vantage = [
        int(i)
        for i in pair_rng.choice(
            source_routers,
            size=min(config.num_vantage_points, len(source_routers)),
            replace=False,
        )
    ]
    destinations = [
        int(i)
        for i in pair_rng.choice(
            other_routers,
            size=min(config.num_destinations, len(other_routers)),
            replace=False,
        )
    ]
    builder = AsLevelBuilder(
        asn_of, source_asn=config.source_asn, include_source_as=False
    )
    requested = min(config.num_paths, len(vantage) * len(destinations))
    pairs = select_endpoint_pairs(vantage, destinations, requested, pair_rng)
    seen_sequences = set()
    for source, destination in pairs:
        route = shortest_route(graph, source, destination)
        if route is None:
            continue
        before = builder.num_routes
        if builder.add_route(route) and builder.num_routes > before:
            pass
    network = builder.build(name="brite")
    return _dedupe_paths(network, "brite")


def _dedupe_paths(network: Network, name: str) -> Network:
    """Drop monitored paths with identical link sequences."""
    from repro.topology.graph import Path

    seen = set()
    kept = []
    for path in network.paths:
        if path.links not in seen:
            seen.add(path.links)
            kept.append(path.links)
    paths = [Path(index=i, links=links) for i, links in enumerate(kept)]
    return Network(network.links, paths, name=name)
