"""Load, validate, aggregate, and render span-event JSONL traces.

Consumes the ``telemetry.jsonl`` files written by :mod:`repro.obs.span`
and powers ``repro-tomography obs spans`` (``--tree`` flame-style view,
``--validate`` schema check) plus the per-span aggregates that
``benchmarks/compare_baseline.py`` uses to name regressed stages.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

_REQUIRED_KEYS = ("type", "name", "id", "pid", "t_start", "t_end", "dur", "attrs")
_TYPES = ("span", "event")
_STATUSES = ("ok", "error")


def read_events(path: Union[str, Path]) -> Tuple[List[dict], List[str]]:
    """Parse a JSONL trace file; returns ``(events, warnings)``.

    Blank lines are skipped. A malformed *final* line is tolerated — a
    worker killed mid-``O_APPEND`` write leaves exactly one truncated
    trailing record, which is reported (a warning string naming the
    line) and skipped rather than failing the whole trace. Malformed
    JSON anywhere *else* still raises ``ValueError`` naming the line:
    traces are machine-written, so an interior parse failure means real
    corruption the caller should know about.
    """
    with open(path, "r", encoding="utf-8") as handle:
        raw_lines = handle.readlines()
    numbered = [
        (lineno, line.strip())
        for lineno, line in enumerate(raw_lines, start=1)
        if line.strip()
    ]
    events: List[dict] = []
    warnings: List[str] = []
    last_index = len(numbered) - 1
    for position, (lineno, line) in enumerate(numbered):
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            if position == last_index:
                warnings.append(
                    f"{path}:{lineno}: skipped truncated trailing record "
                    f"({exc})"
                )
                continue
            raise ValueError(f"{path}:{lineno}: invalid JSON ({exc})") from None
        events.append(event)
    return events, warnings


def load_events(path: Union[str, Path]) -> List[dict]:
    """Parse a JSONL trace file, skipping blank lines.

    Thin wrapper over :func:`read_events` that discards the truncation
    warnings — callers that should surface them (the ``obs`` CLI, the
    analyzer) use :func:`read_events` directly.
    """
    events, _warnings = read_events(path)
    return events


def validate_events(events: Sequence[dict]) -> List[str]:
    """Schema-check parsed events; an empty list means a valid trace.

    A parent id pointing outside the file is legal (the parent may live
    in another process's trace or before a rotation), but duplicate
    ids, negative durations, and unknown types/statuses are not.
    """
    errors: List[str] = []
    seen_ids: Dict[str, int] = {}
    for index, event in enumerate(events, start=1):
        where = f"event {index}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        missing = [key for key in _REQUIRED_KEYS if key not in event]
        if missing:
            errors.append(f"{where}: missing keys {missing}")
            continue
        if event["type"] not in _TYPES:
            errors.append(f"{where}: unknown type {event['type']!r}")
        if not isinstance(event["name"], str) or not event["name"]:
            errors.append(f"{where}: name must be a non-empty string")
        span_id = event["id"]
        if not isinstance(span_id, str) or not span_id:
            errors.append(f"{where}: id must be a non-empty string")
        elif span_id in seen_ids:
            errors.append(
                f"{where}: duplicate span id {span_id!r} "
                f"(first seen at event {seen_ids[span_id]})"
            )
        else:
            seen_ids[span_id] = index
        parent = event.get("parent")
        if parent is not None and not isinstance(parent, str):
            errors.append(f"{where}: parent must be a span id string or null")
        for key in ("t_start", "t_end", "dur"):
            if not isinstance(event[key], (int, float)):
                errors.append(f"{where}: {key} must be a number")
        if (
            isinstance(event["dur"], (int, float))
            and event["dur"] < 0
        ):
            errors.append(f"{where}: negative duration {event['dur']}")
        if event.get("status") not in _STATUSES:
            errors.append(f"{where}: status must be one of {list(_STATUSES)}")
        if not isinstance(event["attrs"], dict):
            errors.append(f"{where}: attrs must be an object")
    return errors


class SpanNode:
    """One span plus its in-file children and derived self time."""

    __slots__ = ("event", "children", "self_time")

    def __init__(self, event: dict) -> None:
        self.event = event
        self.children: List["SpanNode"] = []
        self.self_time = float(event.get("dur", 0.0))

    @property
    def name(self) -> str:
        return self.event["name"]

    @property
    def total(self) -> float:
        return float(self.event.get("dur", 0.0))


def build_tree(events: Sequence[dict]) -> List[SpanNode]:
    """Link events into forests by parent id; orphans become roots.

    Self time is total duration minus the durations of direct children
    found in the file; children emitted by concurrent workers overlap,
    so self time clamps at zero rather than going negative.
    """
    nodes: Dict[str, SpanNode] = {}
    ordered: List[SpanNode] = []
    for event in events:
        node = SpanNode(event)
        nodes[event["id"]] = node
        ordered.append(node)
    roots: List[SpanNode] = []
    for node in ordered:
        parent_id = node.event.get("parent")
        parent = nodes.get(parent_id) if parent_id else None
        if parent is not None and parent is not node:
            parent.children.append(node)
            parent.self_time = max(0.0, parent.self_time - node.total)
        else:
            roots.append(node)
    for node in ordered:
        node.children.sort(key=lambda child: child.event.get("t_start", 0.0))
    roots.sort(key=lambda node: node.event.get("t_start", 0.0))
    return roots


def _format_attrs(attrs: dict, limit: int = 4) -> str:
    if not attrs:
        return ""
    items = list(attrs.items())[:limit]
    body = " ".join(f"{key}={value}" for key, value in items)
    if len(attrs) > limit:
        body += " …"
    return f"  [{body}]"


def render_tree(events: Sequence[dict]) -> str:
    """Flame-style ASCII tree with total and self milliseconds."""
    roots = build_tree(events)
    if not roots:
        return "(empty trace)\n"
    lines: List[str] = []
    lines.append(f"{'total':>10}  {'self':>10}  span")

    def walk(node: SpanNode, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            branch, child_prefix = "", ""
        else:
            branch = prefix + ("└─ " if is_last else "├─ ")
            child_prefix = prefix + ("   " if is_last else "│  ")
        marker = "!" if node.event.get("status") == "error" else ""
        label = f"{branch}{node.name}{marker}{_format_attrs(node.event.get('attrs', {}))}"
        lines.append(
            f"{node.total * 1e3:>9.2f}m {node.self_time * 1e3:>9.2f}m  {label}"
        )
        for i, child in enumerate(node.children):
            walk(child, child_prefix, i == len(node.children) - 1, False)

    for root in roots:
        walk(root, "", True, True)
    return "\n".join(lines) + "\n"


def aggregate_spans(events: Sequence[dict]) -> Dict[str, Dict[str, float]]:
    """Per-name totals: ``{name: {count, total_s, self_s}}``.

    The compact form committed into ``BENCH_baseline.json`` and diffed
    by ``compare_baseline.py`` to name the spans behind a regression.
    """
    build_order = build_tree(events)

    totals: Dict[str, Dict[str, float]] = {}

    def visit(node: SpanNode) -> None:
        entry = totals.setdefault(
            node.name, {"count": 0.0, "total_s": 0.0, "self_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += node.total
        entry["self_s"] += node.self_time
        for child in node.children:
            visit(child)

    for root in build_order:
        visit(root)
    return totals


def stage_durations(
    events: Sequence[dict], prefix: str = "pipeline."
) -> Dict[Tuple[Optional[str], str], float]:
    """Map ``(parent id, stage name)`` to duration for pipeline spans.

    Used by tests to reconcile the trace against
    ``FitReport.stage_seconds`` fit by fit.
    """
    out: Dict[Tuple[Optional[str], str], float] = {}
    for event in events:
        name = event.get("name", "")
        if event.get("type") == "span" and name.startswith(prefix):
            out[(event.get("parent"), name[len(prefix):])] = float(event["dur"])
    return out


__all__ = [
    "SpanNode",
    "aggregate_spans",
    "build_tree",
    "load_events",
    "read_events",
    "render_tree",
    "stage_durations",
    "validate_events",
]
