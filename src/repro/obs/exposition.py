"""Render a metrics snapshot as Prometheus text or a human summary.

Both renderers work from the picklable dict produced by
``MetricsRegistry.snapshot()`` — they never touch live registries, so
the same code formats the in-process registry, a shard's shipped
snapshot, and a ``metrics.json`` file loaded from disk.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Sequence, Tuple

from repro.obs.registry import FAMILIES, quantile_from_counts


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _labels_text(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    parts = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(names, values)
    ]
    return "{" + ",".join(parts) + "}"


def _snapshot_families(snapshot: dict) -> Dict[str, dict]:
    """Family metadata: the snapshot's own, else the live declarations.

    Snapshots written by this code carry their families; for bare dicts
    (hand-built in tests) fall back to the process declarations.
    """
    families = snapshot.get("families")
    if families:
        return families
    return {
        name: {
            "kind": spec.kind,
            "help": spec.help,
            "labels": list(spec.labels),
            "buckets": list(spec.buckets) if spec.buckets else None,
        }
        for name, spec in sorted(FAMILIES.items())
    }


def render_prometheus(snapshot: dict) -> str:
    """Prometheus text exposition (format version 0.0.4).

    Every declared family appears — with ``# HELP`` / ``# TYPE``
    headers even at zero samples — so a scrape documents the full
    metric surface of the loaded code, not just what fired.
    """
    families = _snapshot_families(snapshot)
    by_family: Dict[str, List[Tuple[List[str], object]]] = {name: [] for name in families}
    for section in ("counters", "gauges"):
        for name, label_values, value in snapshot.get(section, []):
            by_family.setdefault(name, []).append((list(label_values), value))
    for name, label_values, payload in snapshot.get("histograms", []):
        by_family.setdefault(name, []).append((list(label_values), payload))

    lines: List[str] = []
    for name in sorted(by_family):
        spec = families.get(
            name, {"kind": "untyped", "help": "", "labels": [], "buckets": None}
        )
        kind = spec["kind"]
        help_text = spec.get("help", "")
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        label_names = spec.get("labels", [])
        for label_values, value in by_family[name]:
            if kind == "histogram":
                payload = value
                buckets = spec.get("buckets") or []
                counts = payload["counts"]
                cumulative = 0
                for bound, count in zip(buckets, counts):
                    cumulative += count
                    le_labels = _labels_text(
                        list(label_names) + ["le"],
                        list(label_values) + [_format_value(float(bound))],
                    )
                    lines.append(f"{name}_bucket{le_labels} {cumulative}")
                cumulative += counts[len(buckets)] if len(counts) > len(buckets) else 0
                inf_labels = _labels_text(
                    list(label_names) + ["le"], list(label_values) + ["+Inf"]
                )
                lines.append(f"{name}_bucket{inf_labels} {cumulative}")
                plain = _labels_text(label_names, label_values)
                lines.append(f"{name}_sum{plain} {_format_value(payload['sum'])}")
                lines.append(f"{name}_count{plain} {cumulative}")
            else:
                labels = _labels_text(label_names, label_values)
                lines.append(f"{name}{labels} {_format_value(float(value))}")
    return "\n".join(lines) + "\n"


def render_json(snapshot: dict, indent: int = 2) -> str:
    """The snapshot as pretty-printed JSON (machine-consumable twin)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def render_summary(snapshot: dict) -> str:
    """A terse human summary: non-zero series plus histogram quantiles."""
    families = _snapshot_families(snapshot)
    lines: List[str] = []
    counters = snapshot.get("counters", [])
    gauges = snapshot.get("gauges", [])
    hists = snapshot.get("histograms", [])
    if not (counters or gauges or hists):
        return "no metrics recorded (is REPRO_OBS set?)\n"

    def label_suffix(name: str, label_values: Sequence[str]) -> str:
        names = families.get(name, {}).get("labels", [])
        return _labels_text(names, list(label_values))

    if counters:
        lines.append("counters:")
        for name, label_values, value in counters:
            lines.append(
                f"  {name}{label_suffix(name, label_values)} = "
                f"{_format_value(float(value))}"
            )
    if gauges:
        lines.append("gauges:")
        for name, label_values, value in gauges:
            lines.append(
                f"  {name}{label_suffix(name, label_values)} = "
                f"{_format_value(float(value))}"
            )
    if hists:
        lines.append("histograms:")
        for name, label_values, payload in hists:
            buckets = families.get(name, {}).get("buckets") or []
            counts = payload["counts"]
            total = sum(counts)
            mean = payload["sum"] / total if total else math.nan
            p50 = quantile_from_counts(buckets, counts, 0.50)
            p99 = quantile_from_counts(buckets, counts, 0.99)
            lines.append(
                f"  {name}{label_suffix(name, label_values)}: "
                f"count={total} mean={mean:.6g} p50={p50:.6g} p99={p99:.6g}"
            )
    return "\n".join(lines) + "\n"


__all__ = ["render_json", "render_prometheus", "render_summary"]
