"""Live telemetry export: a stdlib HTTP ``/metrics`` endpoint + sampler.

Zero-dependency counterpart to a Prometheus client library. One
:class:`TelemetryServer` runs an :class:`http.server.ThreadingHTTPServer`
on a daemon thread and serves point-in-time *snapshots* of the process's
telemetry — the hot paths are never touched; every request calls
``registry.snapshot()`` exactly like the on-disk exports do:

* ``/metrics`` — Prometheus text exposition (format 0.0.4) of the live
  registry, scrapeable by any Prometheus/VictoriaMetrics/Grafana agent.
* ``/metrics.json`` — the same snapshot as JSON.
* ``/healthz`` — liveness JSON: telemetry mode, uptime, sample count,
  plus whatever the embedding run reports through ``status_fn`` (the
  ``monitor`` CLI wires the streaming engine's counters in here).
* ``/spans/recent`` — the tail of the active trace file as JSON
  (``?limit=N``, default 50), tolerant of a truncated trailing record.

:class:`ResourceSampler` rides along (on by default when serving): a
daemon thread sampling RSS, cumulative CPU time, and GC collection
counts into gauges, with per-tick cost recorded in a histogram, at a
configurable interval. Sampling goes through the ordinary guarded
handles, so it is inert when ``REPRO_OBS=off`` — the serve CLI glue
promotes the mode to ``metrics`` when serving is requested with
telemetry off, precisely so a scrape is never empty by accident.
"""

from __future__ import annotations

import gc
import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional
from urllib.parse import parse_qs, urlparse

from repro.obs import config
from repro.obs.exposition import render_json, render_prometheus
from repro.obs.registry import (
    MetricsRegistry,
    counter,
    gauge,
    global_registry,
    histogram,
)
from repro.obs.render import read_events

#: Default resource-sampler cadence in seconds.
DEFAULT_SAMPLE_INTERVAL = 5.0

#: Default number of events ``/spans/recent`` returns.
DEFAULT_RECENT_SPANS = 50

_CONTENT_TYPE_PROM = "text/plain; version=0.0.4; charset=utf-8"
_CONTENT_TYPE_JSON = "application/json; charset=utf-8"

# Process resource telemetry, fed by the sampler (REPRO_OBS=metrics|trace).
_RSS_BYTES = gauge(
    "repro_process_resident_memory_bytes",
    "Resident set size sampled by the resource sampler.",
)
_CPU_SECONDS = gauge(
    "repro_process_cpu_seconds_total",
    "Cumulative process CPU seconds (user + system).",
)
_GC_COLLECTIONS = gauge(
    "repro_process_gc_collections_total",
    "Cumulative garbage collections per generation.",
    ["generation"],
)
_GC_PENDING = gauge(
    "repro_process_gc_tracked_pending",
    "Objects counted by gc.get_count per generation (pending threshold).",
    ["generation"],
)
_SAMPLE_SECONDS = histogram(
    "repro_obs_resource_sample_seconds",
    "Cost of one resource-sampler tick.",
)
_SCRAPES_TOTAL = counter(
    "repro_obs_scrapes_total",
    "HTTP requests served by the telemetry server.",
    ["endpoint"],
)


def read_rss_bytes() -> float:
    """Resident set size in bytes, without psutil.

    Reads ``/proc/self/status`` (Linux); falls back to the peak RSS from
    ``resource.getrusage`` (reported in KiB on Linux) elsewhere.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) * 1024.0
    except OSError:
        pass
    try:
        import resource

        return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024.0
    except (ImportError, ValueError):
        return 0.0


def read_peak_rss_bytes() -> float:
    """High-water-mark RSS in bytes (``VmHWM``), without psutil.

    The process-lifetime peak, not the current value: campaign outcomes
    record it so a sweep's memory footprint survives into the result JSON
    even when no sampler thread was running. Falls back to
    ``resource.getrusage`` peak (KiB on Linux) when ``/proc`` is absent.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return float(line.split()[1]) * 1024.0
    except OSError:
        pass
    try:
        import resource

        return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024.0
    except (ImportError, ValueError):
        return 0.0


def cpu_seconds() -> float:
    """Cumulative user + system CPU seconds of this process."""
    times = os.times()
    return float(times.user + times.system)


class ResourceSampler:
    """Background thread sampling process resources into the registry.

    ``sample()`` is also callable directly (tests, one-shot probes).
    Every update goes through guarded metric handles, so the sampler is
    a no-op branch per family under ``REPRO_OBS=off``.
    """

    def __init__(self, interval: float = DEFAULT_SAMPLE_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError(f"sample interval must be > 0, got {interval}")
        self.interval = float(interval)
        self.samples = 0
        #: Highest RSS seen by any sample (bytes); campaign outcomes
        #: report it so long sweeps record their memory high-water mark.
        self.peak_rss_bytes = 0.0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def sample(self) -> None:
        """Take one sample of RSS, CPU time, and GC counts."""
        start = time.perf_counter()
        rss = read_rss_bytes()
        if rss > self.peak_rss_bytes:
            self.peak_rss_bytes = rss
        _RSS_BYTES.set(rss)
        _CPU_SECONDS.set(cpu_seconds())
        stats = gc.get_stats()
        for generation, entry in enumerate(stats):
            _GC_COLLECTIONS.set(
                float(entry.get("collections", 0)), generation=str(generation)
            )
        for generation, pending in enumerate(gc.get_count()):
            _GC_PENDING.set(float(pending), generation=str(generation))
        self.samples += 1
        _SAMPLE_SECONDS.observe(time.perf_counter() - start)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    def start(self) -> "ResourceSampler":
        """Take an immediate first sample, then sample on a daemon thread."""
        if self._thread is not None:
            return self
        self.sample()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval + 1.0)
            self._thread = None


def recent_spans(limit: int = DEFAULT_RECENT_SPANS) -> Dict[str, object]:
    """The tail of the active trace file as a JSON-able payload.

    Reads the configured trace sink tolerantly (a truncated trailing
    record is reported in ``warnings``, not fatal) and returns the last
    ``limit`` events. An absent file — tracing off, or nothing emitted
    yet — yields an empty event list, not an error: a scraper polling a
    warming-up service should see ``200``, not ``500``.
    """
    path = config.trace_path()
    payload: Dict[str, object] = {
        "path": str(path),
        "tracing": config.trace_enabled(),
        "events": [],
        "warnings": [],
    }
    try:
        events, warnings = read_events(path)
    except FileNotFoundError:
        return payload  # tracing off or nothing emitted yet: empty, not 500
    except (OSError, ValueError) as exc:
        payload["warnings"] = [str(exc)]
        return payload
    payload["events"] = events[-limit:] if limit > 0 else []
    payload["warnings"] = warnings
    return payload


class TelemetryServer:
    """Serve live telemetry snapshots over HTTP from a daemon thread.

    Parameters
    ----------
    host, port:
        Bind address; port ``0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    registry_fn:
        Returns the registry to snapshot per request; defaults to the
        process-wide registry (capture contexts are shard-local and
        never the right thing to scrape).
    status_fn:
        Optional callable returning extra ``/healthz`` fields — the
        monitor CLI reports the streaming engine's live counters here.
    sample_interval:
        Resource-sampler cadence in seconds; ``None`` disables the
        sampler (it is on by default, per the serving contract).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        registry_fn: Optional[Callable[[], MetricsRegistry]] = None,
        status_fn: Optional[Callable[[], Dict[str, object]]] = None,
        sample_interval: Optional[float] = DEFAULT_SAMPLE_INTERVAL,
    ) -> None:
        self.host = host
        self._requested_port = port
        self.registry_fn = registry_fn or global_registry
        self.status_fn = status_fn
        self.sampler = (
            ResourceSampler(sample_interval)
            if sample_interval is not None
            else None
        )
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_at = 0.0

    # -- lifecycle -------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (0 until started)."""
        return self._httpd.server_address[1] if self._httpd else 0

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        if self._httpd is not None:
            return self
        handler = _build_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._httpd.daemon_threads = True
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-serve",
            daemon=True,
        )
        self._thread.start()
        if self.sampler is not None:
            self.sampler.start()
        return self

    def stop(self) -> None:
        if self.sampler is not None:
            self.sampler.stop()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- responses -------------------------------------------------------
    def health(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "status": "ok",
            "mode": config.mode(),
            "pid": os.getpid(),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "samples": self.sampler.samples if self.sampler else 0,
        }
        if self.status_fn is not None:
            try:
                payload.update(self.status_fn())
            except Exception as exc:  # a sick status hook must not 500 /healthz
                payload["status_error"] = str(exc)
        return payload


def _build_handler(server: "TelemetryServer"):
    class _Handler(BaseHTTPRequestHandler):
        # Scrapes are periodic; default stderr access logging would spam
        # the monitored run's console.
        def log_message(self, format: str, *args: object) -> None:
            pass

        def _respond(self, body: str, content_type: str, code: int = 200) -> None:
            data = body.encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            parsed = urlparse(self.path)
            route = parsed.path.rstrip("/") or "/"
            try:
                if route == "/metrics":
                    _SCRAPES_TOTAL.inc(endpoint="metrics")
                    snapshot = server.registry_fn().snapshot()
                    self._respond(render_prometheus(snapshot), _CONTENT_TYPE_PROM)
                elif route == "/metrics.json":
                    _SCRAPES_TOTAL.inc(endpoint="metrics.json")
                    snapshot = server.registry_fn().snapshot()
                    self._respond(render_json(snapshot), _CONTENT_TYPE_JSON)
                elif route == "/healthz":
                    _SCRAPES_TOTAL.inc(endpoint="healthz")
                    self._respond(
                        json.dumps(server.health(), sort_keys=True),
                        _CONTENT_TYPE_JSON,
                    )
                elif route == "/spans/recent":
                    _SCRAPES_TOTAL.inc(endpoint="spans.recent")
                    query = parse_qs(parsed.query)
                    try:
                        limit = int(query.get("limit", [DEFAULT_RECENT_SPANS])[0])
                    except ValueError:
                        limit = DEFAULT_RECENT_SPANS
                    self._respond(
                        json.dumps(recent_spans(limit)), _CONTENT_TYPE_JSON
                    )
                else:
                    self._respond(
                        json.dumps(
                            {
                                "error": "not found",
                                "routes": [
                                    "/metrics",
                                    "/metrics.json",
                                    "/healthz",
                                    "/spans/recent",
                                ],
                            }
                        ),
                        _CONTENT_TYPE_JSON,
                        code=404,
                    )
            except BrokenPipeError:
                pass  # scraper hung up mid-response

    return _Handler


def ensure_metrics_mode() -> bool:
    """Promote ``REPRO_OBS=off`` to ``metrics`` for a serving run.

    Serving an empty registry would make every scrape silently useless;
    returns True when the mode was promoted so the CLI can say so.
    """
    if not config.metrics_enabled():
        config.configure(mode=config.METRICS)
        return True
    return False


__all__ = [
    "DEFAULT_RECENT_SPANS",
    "DEFAULT_SAMPLE_INTERVAL",
    "ResourceSampler",
    "TelemetryServer",
    "cpu_seconds",
    "ensure_metrics_mode",
    "read_peak_rss_bytes",
    "read_rss_bytes",
    "recent_spans",
]
