"""Post-hoc trace analytics: critical paths, shard reports, cross-run diffs.

The analysis layer over the ``telemetry.jsonl`` span traces written by
:mod:`repro.obs.span`. Everything here is offline — it loads a recorded
trace into the span forest of :func:`repro.obs.render.build_tree` and
answers the three operational questions a slow or regressed run raises:

* **Where did the time go?** :func:`critical_paths` decomposes each root
  span into self time vs child time, follows the dominant child chain
  to the bottom of the tree, and names the top self-time contributors
  of the whole subtree.
* **Which shard straggled?** :func:`shard_report` reads the existing
  ``runner.shard`` / ``runner.trial`` spans into per-shard utilization
  rows — wall vs busy time, start delay behind the campaign span, and
  the slowest trial — and names the straggler that bounded the sweep.
* **What regressed vs the last run?** :func:`diff_aggregates` aligns two
  per-span aggregates by name and reports self-time deltas with counts;
  :func:`top_regressions` ranks the growth. ``benchmarks/compare_baseline.py``
  re-uses exactly these to name regressed spans on a gate failure, so
  ``obs diff`` and the benchmark gate agree on what "regressed" means.

Analysis is post-hoc by design: nothing in this module runs on a hot
path or touches the live registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.render import (
    SpanNode,
    aggregate_spans,
    build_tree,
    read_events,
)

#: Per-span aggregate rows: ``{name: {"count", "total_s", "self_s"}}``.
SpanAggregate = Dict[str, Dict[str, float]]


def load_trace(path: Union[str, Path]) -> Tuple[List[dict], List[str]]:
    """Load a trace tolerantly; returns ``(events, warnings)``.

    Alias of :func:`repro.obs.render.read_events` re-exported here so
    analysis callers get the report-and-skip handling of a truncated
    trailing record without reaching into the render module.
    """
    return read_events(path)


# ---------------------------------------------------------------------------
# Critical-path decomposition
# ---------------------------------------------------------------------------
@dataclass
class CriticalStep:
    """One hop of a root's dominant-child chain."""

    name: str
    total_s: float
    self_s: float
    #: This span's share of the chain root's total duration.
    fraction: float


@dataclass
class CriticalPath:
    """Critical-path decomposition of one root span."""

    root: str
    total_s: float
    self_s: float
    child_s: float
    #: Dominant chain, root first: at every level the child with the
    #: largest total duration.
    steps: List[CriticalStep] = field(default_factory=list)
    #: Largest self-time sinks across the whole subtree, aggregated by
    #: span name: ``(name, self_s, count)``, heaviest first.
    contributors: List[Tuple[str, float, int]] = field(default_factory=list)


def _subtree_self_times(root: SpanNode) -> Dict[str, Tuple[float, int]]:
    totals: Dict[str, Tuple[float, int]] = {}
    stack = [root]
    while stack:
        node = stack.pop()
        self_s, count = totals.get(node.name, (0.0, 0))
        totals[node.name] = (self_s + node.self_time, count + 1)
        stack.extend(node.children)
    return totals


def critical_paths(events: Sequence[dict], top: int = 5) -> List[CriticalPath]:
    """Decompose every root span of a trace, longest root first.

    Zero-duration point events are roots too when orphaned; they carry
    no time, so they are skipped. ``top`` bounds both the dominant chain
    length reported and the contributor list.
    """
    reports: List[CriticalPath] = []
    for root in build_tree(events):
        if root.event.get("type") != "span":
            continue
        child_s = sum(child.total for child in root.children)
        contributors = sorted(
            (
                (name, self_s, count)
                for name, (self_s, count) in _subtree_self_times(root).items()
                if self_s > 0.0
            ),
            key=lambda row: (-row[1], row[0]),
        )[:top]
        steps: List[CriticalStep] = []
        node = root
        denominator = root.total or 1.0
        while node is not None and len(steps) < top:
            steps.append(
                CriticalStep(
                    name=node.name,
                    total_s=node.total,
                    self_s=node.self_time,
                    fraction=node.total / denominator,
                )
            )
            node = max(
                node.children, key=lambda child: child.total, default=None
            )
        reports.append(
            CriticalPath(
                root=root.name,
                total_s=root.total,
                self_s=root.self_time,
                child_s=child_s,
                steps=steps,
                contributors=contributors,
            )
        )
    reports.sort(key=lambda report: -report.total_s)
    return reports


def render_critical_paths(reports: Sequence[CriticalPath]) -> str:
    """Human rendering of :func:`critical_paths` output."""
    if not reports:
        return "(no root spans in trace)\n"
    lines: List[str] = []
    for report in reports:
        lines.append(
            f"{report.root}: {report.total_s * 1e3:.2f}ms total "
            f"({report.self_s * 1e3:.2f}ms self, "
            f"{report.child_s * 1e3:.2f}ms in children)"
        )
        lines.append("  critical path:")
        for step in report.steps:
            lines.append(
                f"    {step.name}: {step.total_s * 1e3:.2f}ms "
                f"({step.fraction:.0%} of root, "
                f"{step.self_s * 1e3:.2f}ms self)"
            )
        if report.contributors:
            lines.append("  top self-time contributors:")
            for name, self_s, count in report.contributors:
                lines.append(
                    f"    {name}: {self_s * 1e3:.2f}ms self "
                    f"across {count} span(s)"
                )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


# ---------------------------------------------------------------------------
# Runner shard utilization / straggler attribution
# ---------------------------------------------------------------------------
@dataclass
class ShardStats:
    """Utilization of one ``runner.shard`` span."""

    shard: int
    wall_s: float
    busy_s: float
    utilization: float
    trials: int
    #: Seconds between the owning campaign span opening and this shard
    #: starting — queue wait plus executor spin-up.
    start_delay_s: float
    slowest_trial_index: Optional[int]
    slowest_trial_s: float


@dataclass
class ShardUtilizationReport:
    """Every shard of a trace plus the straggler that bounded the run."""

    shards: List[ShardStats] = field(default_factory=list)
    #: Shard finishing last (wall-clock end), i.e. the sweep's bound.
    straggler: Optional[int] = None
    #: Wall-clock spread between first and last shard end.
    spread_s: float = 0.0


def shard_report(events: Sequence[dict]) -> ShardUtilizationReport:
    """Shard utilization from the existing ``runner.*`` spans.

    Works on any trace that contains ``runner.shard`` spans (campaign
    and sweep runs); returns an empty report otherwise. Start delay is
    measured against the earliest enclosing ``campaign`` span when one
    exists, else against the earliest shard start.
    """
    spans = [e for e in events if e.get("type") == "span"]
    shard_spans = [e for e in spans if e.get("name") == "runner.shard"]
    report = ShardUtilizationReport()
    if not shard_spans:
        return report
    campaign_starts = [
        e["t_start"] for e in spans if e.get("name") == "campaign"
    ]
    epoch = (
        min(campaign_starts)
        if campaign_starts
        else min(e["t_start"] for e in shard_spans)
    )
    trials_by_parent: Dict[str, List[dict]] = {}
    for e in spans:
        if e.get("name") == "runner.trial" and e.get("parent"):
            trials_by_parent.setdefault(e["parent"], []).append(e)
    ends = []
    for shard_span in sorted(
        shard_spans, key=lambda e: int(e.get("attrs", {}).get("shard", 0))
    ):
        trials = trials_by_parent.get(shard_span["id"], [])
        busy = sum(t["dur"] for t in trials)
        wall = float(shard_span["dur"])
        slowest = max(trials, key=lambda t: t["dur"], default=None)
        report.shards.append(
            ShardStats(
                shard=int(shard_span.get("attrs", {}).get("shard", -1)),
                wall_s=wall,
                busy_s=busy,
                utilization=busy / wall if wall > 0 else 0.0,
                trials=len(trials),
                start_delay_s=max(0.0, shard_span["t_start"] - epoch),
                slowest_trial_index=(
                    slowest.get("attrs", {}).get("index")
                    if slowest is not None
                    else None
                ),
                slowest_trial_s=slowest["dur"] if slowest is not None else 0.0,
            )
        )
        ends.append(shard_span["t_end"])
    last_end = max(ends)
    report.spread_s = last_end - min(ends)
    report.straggler = report.shards[ends.index(last_end)].shard
    return report


def render_shard_report(report: ShardUtilizationReport) -> str:
    """Human rendering of :func:`shard_report` output."""
    if not report.shards:
        return "(no runner.shard spans in trace)\n"
    lines = [
        f"{'shard':>5}  {'wall':>9}  {'busy':>9}  {'util':>5}  "
        f"{'delay':>8}  {'trials':>6}  slowest trial"
    ]
    for stats in report.shards:
        slowest = (
            f"#{stats.slowest_trial_index} ({stats.slowest_trial_s * 1e3:.1f}ms)"
            if stats.slowest_trial_index is not None
            else "-"
        )
        marker = "  <-- straggler" if stats.shard == report.straggler else ""
        lines.append(
            f"{stats.shard:>5}  {stats.wall_s * 1e3:>8.1f}m  "
            f"{stats.busy_s * 1e3:>8.1f}m  {stats.utilization:>4.0%}  "
            f"{stats.start_delay_s * 1e3:>7.1f}m  {stats.trials:>6}  "
            f"{slowest}{marker}"
        )
    lines.append(
        f"shard end spread: {report.spread_s * 1e3:.1f}ms "
        f"(straggler: shard {report.straggler})"
    )
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Cross-run diffing
# ---------------------------------------------------------------------------
@dataclass
class SpanDelta:
    """One span name's change between two per-span aggregates."""

    name: str
    base_count: int
    cur_count: int
    base_self_s: float
    cur_self_s: float

    @property
    def delta_self_s(self) -> float:
        return self.cur_self_s - self.base_self_s

    @property
    def ratio(self) -> Optional[float]:
        """Current/base self time; ``None`` when the base is zero."""
        if self.base_self_s > 0.0:
            return self.cur_self_s / self.base_self_s
        return None


def diff_aggregates(base: SpanAggregate, current: SpanAggregate) -> List[SpanDelta]:
    """Align two per-span aggregates by name; one row per span name.

    Spans present on only one side appear with zero count/time on the
    other, so additions and removals are visible alongside regressions.
    Rows are ordered by absolute self-time delta, largest first.
    """
    deltas = [
        SpanDelta(
            name=name,
            base_count=int(base.get(name, {}).get("count", 0)),
            cur_count=int(current.get(name, {}).get("count", 0)),
            base_self_s=float(base.get(name, {}).get("self_s", 0.0)),
            cur_self_s=float(current.get(name, {}).get("self_s", 0.0)),
        )
        for name in sorted(set(base) | set(current))
    ]
    deltas.sort(key=lambda delta: (-abs(delta.delta_self_s), delta.name))
    return deltas


def top_regressions(
    deltas: Sequence[SpanDelta], limit: int = 3, known_only: bool = True
) -> List[SpanDelta]:
    """Spans whose self time grew, largest absolute growth first.

    ``known_only`` drops spans absent from the baseline side (there is
    nothing to regress against) — the semantics the benchmark gate
    wants; ``obs diff`` passes ``False`` so brand-new spans still rank.
    """
    rows = [
        delta
        for delta in deltas
        if delta.delta_self_s > 0.0
        and (not known_only or delta.base_count > 0)
    ]
    rows.sort(key=lambda delta: (-delta.delta_self_s, delta.name))
    return rows[:limit]


def diff_traces(
    base_path: Union[str, Path], current_path: Union[str, Path]
) -> Tuple[List[SpanDelta], List[str]]:
    """Diff two recorded traces; returns ``(deltas, load warnings)``."""
    base_events, base_warnings = load_trace(base_path)
    cur_events, cur_warnings = load_trace(current_path)
    deltas = diff_aggregates(
        aggregate_spans(base_events), aggregate_spans(cur_events)
    )
    return deltas, base_warnings + cur_warnings


def render_diff(
    deltas: Sequence[SpanDelta], limit: int = 10, regressions: int = 3
) -> str:
    """Human rendering of a cross-run diff: table plus top regressions."""
    if not deltas:
        return "(no spans on either side)\n"
    shown = list(deltas)[:limit]
    width = max(len(delta.name) for delta in shown)
    lines = [
        f"{'span':<{width}}  {'base self':>10}  {'cur self':>10}  "
        f"{'delta':>9}  {'count':>11}"
    ]
    for delta in shown:
        ratio = delta.ratio
        ratio_text = f" ({ratio:.2f}x)" if ratio is not None else ""
        lines.append(
            f"{delta.name:<{width}}  {delta.base_self_s:>9.3f}s  "
            f"{delta.cur_self_s:>9.3f}s  {delta.delta_self_s:>+8.3f}s  "
            f"{delta.base_count:>4} -> {delta.cur_count:<4}{ratio_text}"
        )
    if len(deltas) > limit:
        lines.append(f"... {len(deltas) - limit} more span name(s)")
    regressed = top_regressions(deltas, limit=regressions, known_only=False)
    if regressed:
        lines.append("")
        lines.append("top regressions (self-time growth):")
        for delta in regressed:
            lines.append(
                f"  {delta.name}: {delta.base_self_s:.3f}s -> "
                f"{delta.cur_self_s:.3f}s (+{delta.delta_self_s:.3f}s)"
            )
    else:
        lines.append("")
        lines.append("no span self-time grew")
    return "\n".join(lines) + "\n"


def render_regressions(deltas: Sequence[SpanDelta]) -> str:
    """The compact regression list ``compare_baseline.py`` prints."""
    lines = ["top regressed spans (self-time vs committed aggregate):"]
    for delta in deltas:
        lines.append(
            f"  {delta.name}: {delta.base_self_s:.3f}s -> "
            f"{delta.cur_self_s:.3f}s (+{delta.delta_self_s:.3f}s)"
        )
    return "\n".join(lines)


__all__ = [
    "CriticalPath",
    "CriticalStep",
    "ShardStats",
    "ShardUtilizationReport",
    "SpanDelta",
    "critical_paths",
    "diff_aggregates",
    "diff_traces",
    "load_trace",
    "render_critical_paths",
    "render_diff",
    "render_regressions",
    "render_shard_report",
    "shard_report",
    "top_regressions",
]
