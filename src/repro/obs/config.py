"""Telemetry mode switch: ``REPRO_OBS=off|metrics|trace``.

The whole :mod:`repro.obs` subsystem hangs off one three-way mode:

* ``off`` (the default) — no metrics are collected and no spans are
  emitted. Instrumented hot loops pay exactly one branch
  (:func:`metrics_enabled` returning ``False``); spans still measure
  wall time (two ``perf_counter`` calls, the cost the code paid before
  the telemetry layer existed) because callers such as the estimation
  pipeline feed ``FitReport.stage_seconds`` from them.
* ``metrics`` — counters, gauges, and histograms accumulate in the
  process registry (:mod:`repro.obs.registry`), exportable as
  Prometheus text or a JSON snapshot.
* ``trace`` — metrics plus structured span events appended as JSONL to
  the trace sink (``REPRO_OBS_TRACE`` or :func:`set_trace_path`;
  defaults to ``telemetry.jsonl`` in the working directory).

The mode is read from the environment once at import; tests and
embedding code change it with :func:`configure` / :func:`use_mode`, and
:func:`reset` re-reads the environment. The module is intentionally
dependency-free — it must import before (and independently of) the rest
of the package.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional, Union

#: Recognised modes, in increasing order of collection.
OFF = "off"
METRICS = "metrics"
TRACE = "trace"
MODES = (OFF, METRICS, TRACE)

#: Environment variable selecting the mode.
MODE_ENV = "REPRO_OBS"

#: Environment variable naming the span-event JSONL sink.
TRACE_PATH_ENV = "REPRO_OBS_TRACE"

#: Default trace sink when tracing is on and no path was given.
DEFAULT_TRACE_FILENAME = "telemetry.jsonl"

_mode: str = OFF
_trace_path: Optional[Path] = None
#: True when the trace path came from the environment or an explicit
#: :func:`configure` call — run wrappers (the campaign CLI) only install
#: their default sink when the user has not pinned one.
_trace_path_explicit: bool = False


def _parse_mode(raw: Optional[str]) -> str:
    if not raw:
        return OFF
    value = raw.strip().lower()
    if value in MODES:
        return value
    warnings.warn(
        f"unknown {MODE_ENV} value {raw!r}; expected one of {list(MODES)}; "
        "telemetry stays off",
        RuntimeWarning,
        stacklevel=3,
    )
    return OFF


def mode() -> str:
    """The resolved telemetry mode (``off`` / ``metrics`` / ``trace``)."""
    return _mode


def metrics_enabled() -> bool:
    """True when metric collection is on (modes ``metrics`` and ``trace``).

    The single branch instrumented hot loops take: call sites guard
    every metric update with it so ``off`` costs one bool check.
    """
    return _mode != OFF


def trace_enabled() -> bool:
    """True when span events are emitted (mode ``trace``)."""
    return _mode == TRACE


def trace_path() -> Path:
    """The JSONL file span events append to."""
    if _trace_path is not None:
        return _trace_path
    return Path(DEFAULT_TRACE_FILENAME)


def trace_path_explicit() -> bool:
    """Whether the trace sink was pinned by env or an explicit configure."""
    return _trace_path_explicit


def configure(
    mode: Optional[str] = None,
    trace_path: Optional[Union[str, Path]] = None,
) -> None:
    """Programmatically set the mode and/or trace sink.

    Unknown mode names raise (unlike the forgiving environment path —
    a typo in code is a bug, a typo in an env var should not kill a
    run). ``None`` leaves the corresponding setting untouched.
    """
    global _mode, _trace_path, _trace_path_explicit
    if mode is not None:
        if mode not in MODES:
            raise ValueError(
                f"unknown telemetry mode {mode!r}; expected one of {list(MODES)}"
            )
        _mode = mode
    if trace_path is not None:
        _trace_path = Path(trace_path)
        _trace_path_explicit = True


def set_default_trace_path(path: Union[str, Path]) -> bool:
    """Install ``path`` as the sink unless one was explicitly pinned.

    Returns True when the path was installed. Run wrappers (the
    campaign CLI dropping ``telemetry.jsonl`` next to its results) use
    this so ``REPRO_OBS_TRACE`` always wins.
    """
    global _trace_path
    if _trace_path_explicit:
        return False
    _trace_path = Path(path)
    return True


def reset() -> None:
    """Re-read the environment, discarding programmatic overrides."""
    global _mode, _trace_path, _trace_path_explicit
    _mode = _parse_mode(os.environ.get(MODE_ENV))
    raw_path = os.environ.get(TRACE_PATH_ENV)
    _trace_path = Path(raw_path) if raw_path else None
    _trace_path_explicit = raw_path is not None


def runtime_config() -> dict:
    """The picklable settings a worker needs to mirror this process.

    Shipped to shard workers by :mod:`repro.runner.pool` so telemetry
    behaves identically under fork, spawn, and thread executors.
    """
    return {
        "mode": _mode,
        "trace_path": str(_trace_path) if _trace_path is not None else None,
        "trace_path_explicit": _trace_path_explicit,
    }


def apply_runtime_config(settings: dict) -> None:
    """Adopt a parent process's :func:`runtime_config` verbatim."""
    global _mode, _trace_path, _trace_path_explicit
    _mode = _parse_mode(settings.get("mode"))
    raw_path = settings.get("trace_path")
    _trace_path = Path(raw_path) if raw_path else None
    _trace_path_explicit = bool(settings.get("trace_path_explicit"))


@contextmanager
def use_mode(
    mode_name: str, trace_path: Optional[Union[str, Path]] = None
) -> Iterator[None]:
    """Scope a mode (and optionally a trace sink), restoring on exit."""
    global _mode, _trace_path, _trace_path_explicit
    saved = (_mode, _trace_path, _trace_path_explicit)
    try:
        configure(mode_name, trace_path)
        yield
    finally:
        _mode, _trace_path, _trace_path_explicit = saved


reset()
