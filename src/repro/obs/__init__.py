"""`repro.obs` — zero-dependency telemetry: metrics, spans, exposition.

The observability layer for the whole package, switched by
``REPRO_OBS=off|metrics|trace``:

* **Metrics** (:mod:`repro.obs.registry`): process-wide counter /
  gauge / histogram families with fixed-bucket quantile estimation,
  exportable as Prometheus text or a JSON snapshot
  (:mod:`repro.obs.exposition`). Shard workers capture their updates
  into local registries that merge deterministically into the parent.
* **Spans** (:mod:`repro.obs.span`): timed scopes emitted as JSONL
  events with monotonic timestamps, span ids, and parent links that
  survive thread and process boundaries; rendered as a flame-style
  tree by :mod:`repro.obs.render` and the ``repro-tomography obs``
  CLI.
* **Timer** (:mod:`repro.obs.timer`): the bare wall-clock primitive
  (formerly ``repro.util.timer``).

This package imports nothing from the rest of ``repro`` — every other
layer imports it, so it must stand alone.
"""

from repro.obs.config import (
    METRICS,
    MODE_ENV,
    MODES,
    OFF,
    TRACE,
    TRACE_PATH_ENV,
    apply_runtime_config,
    configure,
    metrics_enabled,
    mode,
    reset,
    runtime_config,
    set_default_trace_path,
    trace_enabled,
    trace_path,
    use_mode,
)
from repro.obs.exposition import render_json, render_prometheus, render_summary
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    FAMILIES,
    LocalCounters,
    MetricsRegistry,
    bump_local,
    capture_metrics,
    counter,
    gauge,
    global_registry,
    histogram,
    local_counters,
    merge_snapshot,
    quantile_from_counts,
    registry,
)
from repro.obs.render import (
    aggregate_spans,
    build_tree,
    load_events,
    render_tree,
    stage_durations,
    validate_events,
)
from repro.obs.span import (
    Span,
    current_span_id,
    event,
    flush,
    parent_scope,
    span,
)
from repro.obs.timer import Timer

__all__ = [
    "DEFAULT_BUCKETS",
    "FAMILIES",
    "LocalCounters",
    "METRICS",
    "MODE_ENV",
    "MODES",
    "MetricsRegistry",
    "OFF",
    "Span",
    "TRACE",
    "TRACE_PATH_ENV",
    "Timer",
    "aggregate_spans",
    "apply_runtime_config",
    "build_tree",
    "bump_local",
    "capture_metrics",
    "configure",
    "counter",
    "current_span_id",
    "event",
    "flush",
    "gauge",
    "global_registry",
    "histogram",
    "load_events",
    "local_counters",
    "merge_snapshot",
    "metrics_enabled",
    "mode",
    "parent_scope",
    "quantile_from_counts",
    "registry",
    "render_json",
    "render_prometheus",
    "render_summary",
    "render_tree",
    "reset",
    "runtime_config",
    "set_default_trace_path",
    "span",
    "stage_durations",
    "trace_enabled",
    "trace_path",
    "use_mode",
    "validate_events",
]
