"""`repro.obs` — zero-dependency telemetry: metrics, spans, exposition.

The observability layer for the whole package, switched by
``REPRO_OBS=off|metrics|trace``:

* **Metrics** (:mod:`repro.obs.registry`): process-wide counter /
  gauge / histogram families with fixed-bucket quantile estimation,
  exportable as Prometheus text or a JSON snapshot
  (:mod:`repro.obs.exposition`). Shard workers capture their updates
  into local registries that merge deterministically into the parent.
* **Spans** (:mod:`repro.obs.span`): timed scopes emitted as JSONL
  events with monotonic timestamps, span ids, and parent links that
  survive thread and process boundaries; rendered as a flame-style
  tree by :mod:`repro.obs.render` and the ``repro-tomography obs``
  CLI.
* **Timer** (:mod:`repro.obs.timer`): the bare wall-clock primitive
  (formerly ``repro.util.timer``).
* **Analysis** (:mod:`repro.obs.analyze`): post-hoc trace analytics —
  critical-path decomposition per root span, runner shard
  utilization/straggler reports, and cross-run diffing of per-span
  self times (``repro-tomography obs critical-path`` / ``obs diff``).
* **Serving** (:mod:`repro.obs.serve`): a stdlib HTTP exporter
  (``/metrics`` Prometheus text, ``/metrics.json``, ``/healthz``,
  ``/spans/recent``) on a daemon thread, plus a background resource
  sampler (RSS, CPU time, GC counts) — ``obs serve`` or
  ``--serve-port`` on ``monitor`` / ``campaign``.

This package imports nothing from the rest of ``repro`` — every other
layer imports it, so it must stand alone.
"""

from repro.obs.config import (
    METRICS,
    MODE_ENV,
    MODES,
    OFF,
    TRACE,
    TRACE_PATH_ENV,
    apply_runtime_config,
    configure,
    metrics_enabled,
    mode,
    reset,
    runtime_config,
    set_default_trace_path,
    trace_enabled,
    trace_path,
    use_mode,
)
from repro.obs.analyze import (
    CriticalPath,
    ShardUtilizationReport,
    SpanDelta,
    critical_paths,
    diff_aggregates,
    diff_traces,
    load_trace,
    render_critical_paths,
    render_diff,
    render_regressions,
    render_shard_report,
    shard_report,
    top_regressions,
)
from repro.obs.exposition import render_json, render_prometheus, render_summary
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    FAMILIES,
    LocalCounters,
    MetricsRegistry,
    bump_local,
    capture_metrics,
    counter,
    gauge,
    global_registry,
    histogram,
    local_counters,
    merge_snapshot,
    quantile_from_counts,
    registry,
)
from repro.obs.render import (
    aggregate_spans,
    build_tree,
    load_events,
    read_events,
    render_tree,
    stage_durations,
    validate_events,
)
from repro.obs.serve import (
    ResourceSampler,
    TelemetryServer,
    ensure_metrics_mode,
    recent_spans,
)
from repro.obs.span import (
    Span,
    current_span_id,
    event,
    flush,
    parent_scope,
    span,
)
from repro.obs.timer import Timer

__all__ = [
    "CriticalPath",
    "DEFAULT_BUCKETS",
    "FAMILIES",
    "LocalCounters",
    "METRICS",
    "MODE_ENV",
    "MODES",
    "MetricsRegistry",
    "OFF",
    "ResourceSampler",
    "ShardUtilizationReport",
    "Span",
    "SpanDelta",
    "TRACE",
    "TRACE_PATH_ENV",
    "TelemetryServer",
    "Timer",
    "aggregate_spans",
    "apply_runtime_config",
    "build_tree",
    "bump_local",
    "capture_metrics",
    "configure",
    "counter",
    "critical_paths",
    "current_span_id",
    "diff_aggregates",
    "diff_traces",
    "ensure_metrics_mode",
    "event",
    "flush",
    "gauge",
    "global_registry",
    "histogram",
    "load_events",
    "load_trace",
    "local_counters",
    "merge_snapshot",
    "metrics_enabled",
    "mode",
    "parent_scope",
    "quantile_from_counts",
    "read_events",
    "recent_spans",
    "registry",
    "render_critical_paths",
    "render_diff",
    "render_json",
    "render_prometheus",
    "render_regressions",
    "render_shard_report",
    "render_summary",
    "render_tree",
    "reset",
    "runtime_config",
    "set_default_trace_path",
    "shard_report",
    "span",
    "stage_durations",
    "top_regressions",
    "trace_enabled",
    "trace_path",
    "use_mode",
    "validate_events",
]
