"""Tracing spans: timed scopes emitted as structured JSONL events.

A span is a timed ``with`` scope::

    with span("pipeline.frequency", estimator=name) as sp:
        ...
    report.stage_seconds["frequency"] = sp.elapsed

Spans always measure wall time (two ``perf_counter`` calls — the cost
the code paid before this layer existed), because callers feed results
such as ``FitReport.stage_seconds`` from ``sp.elapsed`` regardless of
telemetry mode. Everything else is gated on ``REPRO_OBS=trace``: span
ids, parent links, and the JSONL event appended to the trace sink at
span exit.

Event schema (one JSON object per line)::

    {"type": "span", "name": str, "id": "pid:seq", "parent": str|null,
     "pid": int, "t_start": float, "t_end": float, "dur": float,
     "status": "ok"|"error", "attrs": {...}}

Timestamps are ``time.monotonic()`` seconds — comparable within a
machine boot (Linux's monotonic clock is system-wide), not wall-clock
dates. Span ids embed the emitting process id, so ids stay unique when
shard workers fork; parent links are plain id strings, so a child
process's spans can parent to a span of the coordinating process. The
parent link normally comes from the context-local span stack; workers
that start with a fresh context adopt one explicitly via
:func:`parent_scope`.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import IO, Dict, Iterator, Optional, Tuple

from repro.obs import config

_span_seq = itertools.count(1)

#: Context-local stack of open span ids (innermost last).
_span_stack: ContextVar[Tuple[str, ...]] = ContextVar(
    "repro_obs_span_stack", default=()
)

_sink_lock = threading.Lock()
_sink_file: Optional[IO[str]] = None
_sink_path: Optional[Path] = None


def _next_span_id() -> str:
    return f"{os.getpid():x}:{next(_span_seq):x}"


def current_span_id() -> Optional[str]:
    """The innermost open span id of this context (None outside spans
    or when tracing is off)."""
    stack = _span_stack.get()
    return stack[-1] if stack else None


@contextmanager
def parent_scope(span_id: Optional[str]) -> Iterator[None]:
    """Adopt ``span_id`` as the parent for spans opened in this scope.

    Shard workers run in fresh contexts (worker threads and spawned
    processes alike), so the runner passes the coordinator's campaign
    span id across the executor boundary and re-roots the worker's
    spans under it with this scope. A ``None`` id is a no-op.
    """
    if span_id is None:
        yield
        return
    token = _span_stack.set((span_id,))
    try:
        yield
    finally:
        _span_stack.reset(token)


def _emit(event: dict) -> None:
    """Append one event line to the trace sink (created on first use)."""
    global _sink_file, _sink_path
    line = json.dumps(event, separators=(",", ":"), default=str)
    path = config.trace_path()
    with _sink_lock:
        if _sink_file is None or _sink_path != path or _sink_file.closed:
            if _sink_file is not None and not _sink_file.closed:
                _sink_file.close()
            if path.parent != Path("."):
                path.parent.mkdir(parents=True, exist_ok=True)
            # O_APPEND + single-write lines keep concurrent writers
            # (forked shard workers share the sink path) from
            # interleaving partial records.
            _sink_file = open(path, "a", encoding="utf-8")
            _sink_path = path
        _sink_file.write(line + "\n")
        _sink_file.flush()


def flush() -> None:
    """Flush and close the trace sink (reopened lazily on next emit)."""
    global _sink_file
    with _sink_lock:
        if _sink_file is not None and not _sink_file.closed:
            _sink_file.close()
        _sink_file = None


# Forked workers must not share the parent's file object offset cache;
# drop the handle so the child reopens the sink on first emit.
if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=lambda: flush())


class Span:
    """One timed scope; use via the :func:`span` factory."""

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "elapsed",
        "_t0",
        "_start_mono",
        "_token",
        "_traced",
    )

    def __init__(
        self, name: str, parent_id: Optional[str], attrs: Dict[str, object]
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[str] = None
        self.parent_id = parent_id
        self.elapsed = 0.0
        self._t0 = 0.0
        self._start_mono = 0.0
        self._token = None
        self._traced = False

    def annotate(self, **attrs: object) -> "Span":
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        if config.trace_enabled():
            self._traced = True
            self.span_id = _next_span_id()
            if self.parent_id is None:
                self.parent_id = current_span_id()
            self._token = _span_stack.set(_span_stack.get() + (self.span_id,))
            self._start_mono = time.monotonic()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self._t0
        if self._traced:
            end_mono = time.monotonic()
            if self._token is not None:
                _span_stack.reset(self._token)
                self._token = None
            _emit(
                {
                    "type": "span",
                    "name": self.name,
                    "id": self.span_id,
                    "parent": self.parent_id,
                    "pid": os.getpid(),
                    "t_start": self._start_mono,
                    "t_end": end_mono,
                    "dur": end_mono - self._start_mono,
                    "status": "error" if exc_type is not None else "ok",
                    "attrs": self.attrs,
                }
            )
        return None


def span(name: str, parent_id: Optional[str] = None, **attrs: object) -> Span:
    """Open a timed scope named ``name`` with free-form attributes.

    ``parent_id`` overrides the context-local parent link (used when a
    span's logical parent lives in another process or thread).
    """
    return Span(name, parent_id, dict(attrs))


def event(name: str, **attrs: object) -> None:
    """Emit a point-in-time event (zero-duration record, trace mode only).

    Used for lifecycle moments that are not scopes: worker start/stop,
    alert transitions.
    """
    if not config.trace_enabled():
        return
    now = time.monotonic()
    _emit(
        {
            "type": "event",
            "name": name,
            "id": _next_span_id(),
            "parent": current_span_id(),
            "pid": os.getpid(),
            "t_start": now,
            "t_end": now,
            "dur": 0.0,
            "status": "ok",
            "attrs": attrs,
        }
    )


__all__ = [
    "Span",
    "current_span_id",
    "event",
    "flush",
    "parent_scope",
    "span",
]
