"""Wall-clock timer (absorbed from ``repro.util.timer``).

``Timer`` is the telemetry-free primitive: two ``perf_counter`` calls
and an ``elapsed`` attribute, exactly what the experiment harness and
benchmarks need. Code that wants the measurement *and* telemetry uses
:func:`repro.obs.span` instead — a span is a ``Timer`` that also knows
its name, parents, and sink.
"""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     sum(range(1000))
    500500
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start: float = 0.0
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self.start


__all__ = ["Timer"]
