"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

Zero-dependency and deliberately small. Three pieces:

* **Family declarations** (:func:`counter` / :func:`gauge` /
  :func:`histogram`) — made once at module import by every instrumented
  layer. Declarations are process-wide metadata, independent of any
  registry instance, so an exposition always covers every family the
  loaded code *could* emit, even at zero. Handles route updates to the
  context's target registry at call time, not to a registry captured at
  declaration time.
* :class:`MetricsRegistry` — the thread-safe value store. The process
  has one global registry; :func:`capture_metrics` swaps a fresh
  registry in for the current :mod:`contextvars` context, which is how
  shard workers (threads *or* processes) collect their increments into
  a picklable snapshot the parent merges back deterministically — the
  merged totals are identical whichever executor ran the shards.
* **Local counter scopes** (:func:`local_counters`) — always-on,
  context-local delta accounting used where a *result* (not telemetry)
  needs per-scope counts: ``FitReport``'s per-fit frequency-cache
  traffic. Scopes are context-local, so two fits sharing one
  ``FrequencyCache`` under the thread executor each see only their own
  traffic — global counter snapshots would double-count.

Metric updates are cheap but not free; hot loops guard them with
``if config.metrics_enabled():`` so ``REPRO_OBS=off`` costs one branch.
"""

from __future__ import annotations

import math
import re
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.obs import config

#: Default histogram buckets: latencies from 100us to 60s.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: One (family name, label values) series key.
SeriesKey = Tuple[str, Tuple[str, ...]]


class FamilySpec:
    """Declared metadata of one metric family."""

    __slots__ = ("name", "kind", "help", "labels", "buckets")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]],
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labels = labels
        self.buckets = buckets


#: Every family the loaded code declares, by name (process-wide).
FAMILIES: Dict[str, FamilySpec] = {}

_declare_lock = threading.Lock()


def _declare(
    name: str,
    kind: str,
    help_text: str,
    labels: Sequence[str],
    buckets: Optional[Sequence[float]] = None,
) -> FamilySpec:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    for label in labels:
        if not _LABEL_RE.match(label):
            raise ValueError(f"invalid label name {label!r} on metric {name!r}")
    bucket_tuple: Optional[Tuple[float, ...]] = None
    if kind == "histogram":
        bucket_tuple = tuple(float(b) for b in (buckets or DEFAULT_BUCKETS))
        if list(bucket_tuple) != sorted(set(bucket_tuple)):
            raise ValueError(f"histogram {name!r} buckets must strictly increase")
    with _declare_lock:
        existing = FAMILIES.get(name)
        if existing is not None:
            if (
                existing.kind != kind
                or existing.labels != tuple(labels)
                or existing.buckets != bucket_tuple
            ):
                raise ValueError(
                    f"metric {name!r} already declared as a {existing.kind} "
                    f"with labels {existing.labels}"
                )
            return existing
        spec = FamilySpec(name, kind, help_text, tuple(labels), bucket_tuple)
        FAMILIES[name] = spec
        return spec


class _Hist:
    """One histogram series: cumulative-free bucket counts plus a sum."""

    __slots__ = ("counts", "sum")

    def __init__(self, num_buckets: int) -> None:
        # counts[i] observes bucket i (<= buckets[i]); the last slot is
        # the +Inf overflow bucket.
        self.counts = [0] * (num_buckets + 1)
        self.sum = 0.0


class MetricsRegistry:
    """Thread-safe value store for every declared family."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[SeriesKey, float] = {}
        self._gauges: Dict[SeriesKey, float] = {}
        self._hists: Dict[SeriesKey, _Hist] = {}

    # -- updates ---------------------------------------------------------
    def inc(self, spec: FamilySpec, label_values: Tuple[str, ...], amount: float) -> None:
        key = (spec.name, label_values)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def set(self, spec: FamilySpec, label_values: Tuple[str, ...], value: float) -> None:
        with self._lock:
            self._gauges[(spec.name, label_values)] = value

    def observe(
        self, spec: FamilySpec, label_values: Tuple[str, ...], value: float
    ) -> None:
        buckets = spec.buckets or ()
        key = (spec.name, label_values)
        with self._lock:
            hist = self._hists.get(key)
            if hist is None:
                hist = self._hists[key] = _Hist(len(buckets))
            index = len(buckets)
            for i, bound in enumerate(buckets):
                if value <= bound:
                    index = i
                    break
            hist.counts[index] += 1
            hist.sum += value

    # -- snapshots -------------------------------------------------------
    def snapshot(self) -> dict:
        """A picklable, JSON-able copy of every series plus family specs.

        The family metadata travels with the values so a snapshot file
        renders standalone (``repro-tomography obs export --snapshot``).
        """
        with self._lock:
            counters = [
                [name, list(lv), value]
                for (name, lv), value in sorted(self._counters.items())
            ]
            gauges = [
                [name, list(lv), value]
                for (name, lv), value in sorted(self._gauges.items())
            ]
            hists = [
                [name, list(lv), {"counts": list(h.counts), "sum": h.sum}]
                for (name, lv), h in sorted(self._hists.items())
            ]
        with _declare_lock:
            families = {
                name: {
                    "kind": spec.kind,
                    "help": spec.help,
                    "labels": list(spec.labels),
                    "buckets": list(spec.buckets) if spec.buckets else None,
                }
                for name, spec in sorted(FAMILIES.items())
            }
        return {
            "families": families,
            "counters": counters,
            "gauges": gauges,
            "histograms": hists,
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot in: counters/histograms add, gauges overwrite.

        Addition commutes, so counter and histogram totals are
        independent of merge order; gauges (point-in-time values) take
        the merged snapshot's value, which is why callers merge shard
        snapshots in deterministic shard order.
        """
        with self._lock:
            for name, lv, value in snapshot.get("counters", []):
                key = (name, tuple(lv))
                self._counters[key] = self._counters.get(key, 0.0) + value
            for name, lv, value in snapshot.get("gauges", []):
                self._gauges[(name, tuple(lv))] = value
            for name, lv, payload in snapshot.get("histograms", []):
                key = (name, tuple(lv))
                hist = self._hists.get(key)
                counts = payload["counts"]
                if hist is None:
                    hist = self._hists[key] = _Hist(len(counts) - 1)
                if len(hist.counts) != len(counts):
                    raise ValueError(
                        f"histogram {name!r} bucket layout changed between "
                        "snapshot and registry"
                    )
                for i, count in enumerate(counts):
                    hist.counts[i] += count
                hist.sum += payload["sum"]

    def clear(self) -> None:
        """Drop every recorded value (declarations are untouched)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()


#: The process registry; the context target below can shadow it.
_GLOBAL = MetricsRegistry()

_target: ContextVar[Optional[MetricsRegistry]] = ContextVar(
    "repro_obs_registry", default=None
)


def registry() -> MetricsRegistry:
    """The registry metric updates currently land in (context-aware)."""
    return _target.get() or _GLOBAL


def global_registry() -> MetricsRegistry:
    """The process-wide registry (ignoring any active capture)."""
    return _GLOBAL


@contextmanager
def capture_metrics() -> Iterator[MetricsRegistry]:
    """Collect this context's metric updates into a fresh registry.

    Contexts are per-thread (and trivially per-process), so a shard
    captured this way observes exactly its own updates whichever
    executor runs it; the caller ships ``registry.snapshot()`` home and
    the parent merges.
    """
    captured = MetricsRegistry()
    token = _target.set(captured)
    try:
        yield captured
    finally:
        _target.reset(token)


# ---------------------------------------------------------------------------
# Family handles
# ---------------------------------------------------------------------------
class CounterHandle:
    """Declared counter family; ``inc`` routes to the context registry."""

    __slots__ = ("spec",)

    def __init__(self, spec: FamilySpec) -> None:
        self.spec = spec

    def _label_values(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        return tuple(str(labels[name]) for name in self.spec.labels)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if not config.metrics_enabled():
            return
        registry().inc(self.spec, self._label_values(labels), amount)


class GaugeHandle:
    __slots__ = ("spec",)

    def __init__(self, spec: FamilySpec) -> None:
        self.spec = spec

    def set(self, value: float, **labels: str) -> None:
        if not config.metrics_enabled():
            return
        registry().set(
            self.spec, tuple(str(labels[n]) for n in self.spec.labels), value
        )


class HistogramHandle:
    __slots__ = ("spec",)

    def __init__(self, spec: FamilySpec) -> None:
        self.spec = spec

    def observe(self, value: float, **labels: str) -> None:
        if not config.metrics_enabled():
            return
        registry().observe(
            self.spec, tuple(str(labels[n]) for n in self.spec.labels), value
        )


def counter(name: str, help_text: str, labels: Sequence[str] = ()) -> CounterHandle:
    """Declare (idempotently) a counter family and return its handle."""
    return CounterHandle(_declare(name, "counter", help_text, labels))


def gauge(name: str, help_text: str, labels: Sequence[str] = ()) -> GaugeHandle:
    """Declare (idempotently) a gauge family and return its handle."""
    return GaugeHandle(_declare(name, "gauge", help_text, labels))


def histogram(
    name: str,
    help_text: str,
    labels: Sequence[str] = (),
    buckets: Optional[Sequence[float]] = None,
) -> HistogramHandle:
    """Declare (idempotently) a histogram family and return its handle."""
    return HistogramHandle(_declare(name, "histogram", help_text, labels, buckets))


def quantile_from_counts(
    buckets: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """Estimate the ``q``-quantile from fixed-bucket counts.

    Linear interpolation inside the selected bucket (Prometheus
    ``histogram_quantile`` semantics); observations in the +Inf
    overflow bucket report the highest finite bound.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    total = sum(counts)
    if total == 0:
        return math.nan
    rank = q * total
    cumulative = 0
    for i, count in enumerate(counts):
        if count == 0:
            continue
        if cumulative + count >= rank:
            if i >= len(buckets):  # +Inf bucket
                return float(buckets[-1]) if buckets else math.nan
            lower = float(buckets[i - 1]) if i > 0 else 0.0
            upper = float(buckets[i])
            fraction = (rank - cumulative) / count
            return lower + (upper - lower) * min(1.0, max(0.0, fraction))
        cumulative += count
    return float(buckets[-1]) if buckets else math.nan


# ---------------------------------------------------------------------------
# Always-on local counter scopes (per-fit result accounting)
# ---------------------------------------------------------------------------
class LocalCounters:
    """One scope's integer deltas, keyed by free-form counter name."""

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: Dict[str, int] = {}

    def get(self, name: str) -> int:
        return self.values.get(name, 0)


_local_scopes: ContextVar[Tuple[LocalCounters, ...]] = ContextVar(
    "repro_obs_local_counters", default=()
)


@contextmanager
def local_counters() -> Iterator[LocalCounters]:
    """Open a context-local counter scope (scopes nest; all active ones
    observe every :func:`bump_local` made in this context)."""
    scope = LocalCounters()
    token = _local_scopes.set(_local_scopes.get() + (scope,))
    try:
        yield scope
    finally:
        _local_scopes.reset(token)


def bump_local(name: str, amount: int = 1) -> None:
    """Add ``amount`` to every active local scope of this context.

    Mode-independent by design: results (``FitReport``) depend on these
    deltas, telemetry does not. With no scope active this is one
    context-variable read and a falsy check.
    """
    scopes = _local_scopes.get()
    if scopes:
        for scope in scopes:
            scope.values[name] = scope.values.get(name, 0) + amount


def merge_snapshot(snapshot: dict) -> None:
    """Merge a shard snapshot into the context's current registry."""
    registry().merge(snapshot)


__all__ = [
    "DEFAULT_BUCKETS",
    "FAMILIES",
    "CounterHandle",
    "FamilySpec",
    "GaugeHandle",
    "HistogramHandle",
    "LocalCounters",
    "MetricsRegistry",
    "bump_local",
    "capture_metrics",
    "counter",
    "gauge",
    "global_registry",
    "histogram",
    "local_counters",
    "merge_snapshot",
    "quantile_from_counts",
    "registry",
]
