"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError`, so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class TopologyError(ReproError):
    """Raised when a topology is malformed or violates a model invariant.

    Examples: a path referencing an unknown link, a path traversing the same
    link twice (the model forbids loops), or an empty path.
    """


class ScenarioError(ReproError):
    """Raised when a congestion scenario cannot be constructed.

    Example: the No-Independence scenario requires correlated link clusters,
    but the topology has no AS-level links sharing router-level links.
    """


class DatasetError(ReproError):
    """Raised when a real-topology dataset cannot be located or parsed.

    Examples: a malformed Topology Zoo GML file, a CAIDA AS-relationship
    line with the wrong number of fields, or a registered dataset whose
    bundled file is missing from the datasets directory.
    """


class EstimationError(ReproError):
    """Raised when a probability-computation algorithm cannot proceed.

    Example: no usable equations (every observed path was congested in every
    interval, so every all-good frequency is zero).
    """


class InferenceError(ReproError):
    """Raised when a Boolean-inference algorithm is misused.

    Example: running the probabilistic-inference step of a Bayesian algorithm
    before its probability-computation step has been fitted.
    """


class MitigationError(ReproError):
    """Raised when a mitigation plan is malformed or cannot be applied.

    Examples: a route change whose new route does not connect the old
    route's endpoints, two route changes targeting one path, or an unknown
    mitigation policy name.
    """


class IdentifiabilityError(ReproError):
    """Raised when a requested probability is provably unidentifiable.

    The Correlation-complete algorithm reports, per correlation subset,
    whether the subset's probability is identifiable from the available path
    sets; querying a strict (raise-on-unidentifiable) model for such a subset
    raises this error.
    """
