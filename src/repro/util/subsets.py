"""Bounded subset enumeration.

Algorithm 1 of the paper iterates over subsets of a path set
(``Paths(E) \\ Paths(complement(E))``); naive enumeration is exponential.
The paper controls this blow-up via its complexity parameter ``n2`` and by
computing a *configurable* subset of the computable probabilities (Section 4).
We expose the same control through :func:`bounded_subsets`, which yields
subsets in increasing size up to configurable size and count caps.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Iterable, Iterator, Sequence, Tuple, TypeVar

T = TypeVar("T")


def powerset(items: Iterable[T]) -> Iterator[Tuple[T, ...]]:
    """Yield every subset of ``items`` (including the empty set) by size."""
    seq = list(items)
    return chain.from_iterable(combinations(seq, k) for k in range(len(seq) + 1))


def nonempty_subsets(items: Iterable[T], max_size: int | None = None) -> Iterator[Tuple[T, ...]]:
    """Yield every non-empty subset of ``items`` of size at most ``max_size``."""
    seq = list(items)
    top = len(seq) if max_size is None else min(max_size, len(seq))
    return chain.from_iterable(combinations(seq, k) for k in range(1, top + 1))


def bounded_subsets(
    items: Sequence[T],
    max_size: int | None = None,
    max_count: int | None = None,
    include_full: bool = True,
) -> Iterator[Tuple[T, ...]]:
    """Yield non-empty subsets of ``items`` in increasing size, bounded.

    Parameters
    ----------
    items:
        Ground set (order defines enumeration order, so pass a sorted
        sequence for determinism).
    max_size:
        Largest subset size enumerated exhaustively. ``None`` means no limit.
    max_count:
        Hard cap on the number of subsets yielded. ``None`` means no limit.
    include_full:
        If true and the full set was not already yielded, yield it last
        (subject to ``max_count``). Algorithm 1's initial path sets are full
        sets of the form ``Paths(E) \\ Paths(complement(E))``, so the full set
        frequently carries rank.
    """
    seq = list(items)
    yielded = 0
    full_emitted = False
    for subset in nonempty_subsets(seq, max_size):
        if max_count is not None and yielded >= max_count:
            return
        if len(subset) == len(seq):
            full_emitted = True
        yield subset
        yielded += 1
    if include_full and seq and not full_emitted:
        if max_count is None or yielded < max_count:
            yield tuple(seq)
