"""Small shared utilities: seeded RNG helpers, subset enumeration, timers."""

from repro.util.rng import RandomState, derive_rng, spawn_seeds
from repro.util.subsets import bounded_subsets, nonempty_subsets, powerset
from repro.obs.timer import Timer

__all__ = [
    "RandomState",
    "derive_rng",
    "spawn_seeds",
    "bounded_subsets",
    "nonempty_subsets",
    "powerset",
    "Timer",
]
