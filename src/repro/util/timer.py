"""Compatibility shim: ``Timer`` now lives in :mod:`repro.obs.timer`."""

from repro.obs.timer import Timer

__all__ = ["Timer"]
