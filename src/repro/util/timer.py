"""Minimal wall-clock timer used by the experiment harness and benchmarks."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     sum(range(1000))
    500500
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start: float = 0.0
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self.start
