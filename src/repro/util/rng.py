"""Deterministic random-number management.

Every stochastic component in the library (topology generation, congestion
sampling, packet probing, heuristic tie-breaking) takes an explicit
``numpy.random.Generator``. These helpers create and derive such generators
from integer seeds so that whole experiments are reproducible from a single
seed while sub-components remain statistically independent.
"""

from __future__ import annotations

from typing import List, Optional, Union

import zlib

import numpy as np

#: Anything acceptable as a source of randomness in the public API.
RandomState = Union[int, np.random.Generator, None]


def as_generator(random_state: RandomState) -> np.random.Generator:
    """Coerce ``random_state`` into a :class:`numpy.random.Generator`.

    ``None`` produces a nondeterministically-seeded generator; an ``int`` is
    used as a seed; an existing generator is returned unchanged.
    """
    if isinstance(random_state, np.random.Generator):
        return random_state
    return np.random.default_rng(random_state)


def derive_rng(parent: RandomState, stream: int) -> np.random.Generator:
    """Derive an independent generator for sub-stream ``stream``.

    Deriving (rather than sharing) generators keeps components independent:
    e.g. changing the number of packets drawn by the prober does not perturb
    the congestion sample sequence.
    """
    if isinstance(parent, np.random.Generator):
        seed = int(parent.integers(0, 2**63 - 1))
    elif parent is None:
        seed = int(np.random.default_rng().integers(0, 2**63 - 1))
    else:
        seed = int(parent)
    return np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(stream,)))


def stable_hash(label: object) -> int:
    """Process-stable 31-bit hash of a label (or tuple of labels).

    ``hash()`` on strings is randomized per interpreter process
    (PYTHONHASHSEED), which silently made experiment sub-streams — and
    therefore every figure — vary from run to run. CRC32 of the repr is
    stable everywhere.
    """
    return zlib.crc32(repr(label).encode()) & 0x7FFFFFFF


def spawn_seeds(seed: Optional[int], count: int) -> List[int]:
    """Produce ``count`` independent integer seeds derived from ``seed``."""
    sequence = np.random.SeedSequence(seed)
    return [int(s.generate_state(1)[0]) for s in sequence.spawn(count)]
