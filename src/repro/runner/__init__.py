"""Parallel campaign execution: sharded sweeps with a deterministic merge.

The paper's sweeps are embarrassingly parallel over
(topology, scenario, estimator, seed); this package decomposes them into
independent :class:`TrialSpec` cells, shards the cells across a process
or thread pool (``executor="process"|"thread"|"auto"``), and merges
worker results in canonical order so parallel runs are bit-identical to
serial ones. See :mod:`repro.runner.pool` for the execution model and
:mod:`repro.runner.campaign` for named campaigns, JSON sweep specs, and
on-disk results.
"""

from repro.runner.pool import (
    EXECUTORS,
    ProgressFn,
    ShardReport,
    TrialFn,
    partition_specs,
    resolve_executor,
    resolve_workers,
    run_trials,
)
from repro.runner.spec import TrialError, TrialResult, TrialSpec

__all__ = [
    "EXECUTORS",
    "ProgressFn",
    "ShardReport",
    "TrialError",
    "TrialFn",
    "TrialResult",
    "TrialSpec",
    "partition_specs",
    "resolve_executor",
    "resolve_workers",
    "run_trials",
]
