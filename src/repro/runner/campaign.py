"""Named campaigns: declarative sweeps over the paper's experiments.

A *campaign* bundles a sweep builder (trial function + specs), a merge, a
text renderer, and a machine-readable summary, keyed by name
(``figure3`` / ``figure4`` / ``scaling`` / ``ablation``). Campaigns run
from the CLI (``repro-tomography campaign <name-or-spec.json>``) or
programmatically via :func:`run_campaign`, optionally replicated across
derived seeds — every replicate's trials share one process pool, so a
multi-seed sweep parallelises across seeds as well as cells.

A JSON campaign spec mirrors :class:`CampaignSpec`::

    {"campaign": "figure4", "scale": "small", "seed": 2,
     "workers": 4, "replicates": 3, "output": "results"}
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.experiments import ablation as _ablation
from repro.experiments import figure3 as _figure3
from repro.experiments import figure4 as _figure4
from repro.experiments import mitigation as _mitigation
from repro.experiments import realworld as _realworld
from repro.experiments import scaling as _scaling
from repro.experiments import scaling_topology as _scaling_topology
from repro.experiments.config import ExperimentScale, scale_by_name
from repro.obs import flush, global_registry, metrics_enabled, render_json, span
from repro.runner.pool import EXECUTORS, ProgressFn, ShardReport, run_trials
from repro.runner.spec import TrialResult, TrialSpec
from repro.util.rng import spawn_seeds


@dataclass
class CampaignDefinition:
    """How to build, merge, and present one named sweep.

    ``build`` receives the resolved :class:`CampaignSpec` (so campaigns
    that accept dataset/scenario/estimator filters can honour them), the
    experiment scale, and the replicate's seed. ``accepts_filters`` marks
    campaigns that honour ``--dataset`` / ``--scenario`` /
    ``--estimator``; specs carrying filters for any other campaign are
    rejected at validation time.
    """

    name: str
    description: str
    default_seed: int
    trial_fn: Callable[[TrialSpec, Dict[Any, Any]], Any]
    build: Callable[["CampaignSpec", ExperimentScale, int], List[TrialSpec]]
    merge: Callable[[Sequence[TrialResult]], Any]
    render: Callable[[Any], str]
    summarize: Callable[[Any], Dict[str, Any]]
    accepts_filters: bool = False
    #: Whether the campaign honours ``--policy`` (mitigation-policy filter).
    accepts_policies: bool = False


def _render_figure3(result: _figure3.Figure3Result) -> str:
    return (
        "Figure 3(a) — detection rate\n"
        + result.to_table("detection")
        + "\n\nFigure 3(b) — false-positive rate\n"
        + result.to_table("fp")
    )


def _summarize_figure3(result: _figure3.Figure3Result) -> Dict[str, Any]:
    return {
        "detection_rate": {
            f"{scenario} | {algorithm}": metrics.detection_rate
            for (scenario, algorithm), metrics in sorted(result.rows.items())
        },
        "false_positive_rate": {
            f"{scenario} | {algorithm}": metrics.false_positive_rate
            for (scenario, algorithm), metrics in sorted(result.rows.items())
        },
    }


def _render_figure4(result: _figure4.Figure4Result) -> str:
    lines = [
        "Figure 4(a) — mean absolute error, Brite",
        result.to_table("brite"),
        "",
        "Figure 4(b) — mean absolute error, Sparse",
        result.to_table("sparse"),
        "",
        "Figure 4(d) — Correlation-complete, links vs correlation subsets",
        result.to_subset_table(),
    ]
    return "\n".join(lines)


def _summarize_figure4(result: _figure4.Figure4Result) -> Dict[str, Any]:
    return {
        "mean_absolute_error": {
            f"{topology} | {scenario} | {estimator}": (metrics.mean_absolute_error)
            for (topology, scenario, estimator), metrics in sorted(result.rows.items())
        },
        "subset_rows": {
            topology: list(errors)
            for topology, errors in sorted(result.subset_rows.items())
        },
    }


def _render_scaling(result: _scaling.ScalingResult) -> str:
    return (
        "Algorithm 1 scaling (equations formed vs naive 2^|P*| bound)\n"
        + result.to_table()
    )


def _summarize_scaling(result: _scaling.ScalingResult) -> Dict[str, Any]:
    return {
        "rows": [
            {
                "requested_subset_size": row.requested_subset_size,
                "num_unknowns": row.num_unknowns,
                "num_equations": row.num_equations,
                "rank": row.rank,
                "num_identifiable": row.num_identifiable,
                "seconds": row.seconds,
            }
            for row in result.rows
        ],
        "num_paths": result.num_paths,
    }


def _render_scaling_topology(
    result: _scaling_topology.ScalingTopologyResult,
) -> str:
    ratios = ", ".join(
        f"{size}: {ratio:.1f}x"
        for size, ratio in sorted(result.memory_ratios().items())
    )
    return (
        "Sparse vs dense internet-scale estimation path\n"
        + result.to_table()
        + f"\n\nbit-identical across modes: {result.bit_identical()}"
        + (f"\ndense/sparse structure-memory ratio: {ratios}" if ratios else "")
    )


def _summarize_scaling_topology(
    result: _scaling_topology.ScalingTopologyResult,
) -> Dict[str, Any]:
    return {
        "rows": [
            {
                "num_nodes": row.num_nodes,
                "mode": row.mode,
                "num_links": row.num_links,
                "num_paths": row.num_paths,
                "num_unknowns": row.num_unknowns,
                "num_equations": row.num_equations,
                "build_seconds": row.build_seconds,
                "fit_seconds": row.fit_seconds,
                "construction_bytes": row.construction_bytes,
                "equation_storage_bytes": row.equation_storage_bytes,
                "structure_bytes": row.structure_bytes,
                "peak_traced_bytes": row.peak_traced_bytes,
                "rss_bytes": row.rss_bytes,
                "route_digest": row.route_digest,
                "estimate_digest": row.estimate_digest,
            }
            for row in result.rows
        ],
        "bit_identical": result.bit_identical(),
        "memory_ratios": {
            str(size): ratio
            for size, ratio in sorted(result.memory_ratios().items())
        },
    }


def _render_ablation(result: _ablation.AblationResult) -> str:
    return (
        "Correlation-complete solve ablation (mean abs link error, "
        "No-Independence scenario)\n" + result.to_table()
    )


def _render_realworld(result: _realworld.RealWorldResult) -> str:
    lines = []
    for dataset in result.datasets():
        stats = result.dataset_stats.get(dataset, {})
        lines.append(
            f"{dataset} — mean absolute error "
            f"({stats.get('num_links', 0):.0f} links, "
            f"{stats.get('num_paths', 0):.0f} paths)"
        )
        lines.append(result.to_table(dataset))
        lines.append("")
    return "\n".join(lines).rstrip()


def _summarize_realworld(result: _realworld.RealWorldResult) -> Dict[str, Any]:
    return {
        "mean_absolute_error": {
            f"{dataset} | {scenario} | {estimator}": (metrics.mean_absolute_error)
            for (dataset, scenario, estimator), metrics in sorted(result.rows.items())
        },
        "dataset_stats": {
            dataset: stats
            for dataset, stats in sorted(result.dataset_stats.items())
        },
    }


def _split_filter(value: Optional[str]) -> Optional[List[str]]:
    """Parse a comma-separated CLI/spec filter into a name list."""
    if value is None:
        return None
    names = [name.strip() for name in value.split(",") if name.strip()]
    return names or None


def _render_mitigation(result: _mitigation.MitigationResult) -> str:
    lines = []
    for topology in result.topologies():
        for scenario in result.scenarios():
            if not any(
                key[0] == topology and key[1] == scenario for key in result.rows
            ):
                continue
            lines.append(
                f"{topology} / {scenario} — residual path-congestion rate "
                "(reduction vs pre)"
            )
            lines.append(result.to_table(topology, scenario))
            lines.append("")
    return "\n".join(lines).rstrip()


def _summarize_mitigation(result: _mitigation.MitigationResult) -> Dict[str, Any]:
    return {
        "cells": {
            f"{topology} | {scenario} | {policy} | {estimator}": report
            for (topology, scenario, policy, estimator), report in sorted(
                result.rows.items()
            )
        }
    }


def _summarize_ablation(result: _ablation.AblationResult) -> Dict[str, Any]:
    return {
        "mean_absolute_error": {
            f"{variant} | {topology}": error
            for (variant, topology), error in sorted(result.errors.items())
        }
    }


#: Registered campaigns by name.
CAMPAIGNS: Dict[str, CampaignDefinition] = {
    "figure3": CampaignDefinition(
        name="figure3",
        description="Boolean-inference accuracy across the five scenarios",
        default_seed=1,
        trial_fn=_figure3.figure3_trial,
        build=lambda spec, scale, seed: _figure3.figure3_specs(
            scale, seed, spec.oracle
        ),
        merge=_figure3.merge_figure3,
        render=_render_figure3,
        summarize=_summarize_figure3,
    ),
    "figure4": CampaignDefinition(
        name="figure4",
        description="Probability Computation accuracy (all four panels)",
        default_seed=2,
        trial_fn=_figure4.figure4_trial,
        build=lambda spec, scale, seed: _figure4.figure4_specs(
            scale, seed, spec.oracle
        ),
        merge=_figure4.merge_figure4,
        render=_render_figure4,
        summarize=_summarize_figure4,
    ),
    "scaling": CampaignDefinition(
        name="scaling",
        description="Algorithm 1 equation-count / runtime scaling sweep",
        default_seed=3,
        trial_fn=_scaling.scaling_trial,
        build=lambda spec,
        scale,
        seed: _scaling.scaling_specs(scale, seed),
        merge=_scaling.merge_scaling,
        render=_render_scaling,
        summarize=_summarize_scaling,
    ),
    "scaling-topology": CampaignDefinition(
        name="scaling-topology",
        description=(
            "Sparse vs dense internet-scale path: memory, runtime, and "
            "bit-identity across 1k-10k-node power-law topologies"
        ),
        default_seed=17,
        trial_fn=_scaling_topology.scaling_topology_trial,
        build=lambda spec, scale, seed: (
            _scaling_topology.scaling_topology_specs(scale, seed)
        ),
        merge=_scaling_topology.merge_scaling_topology,
        render=_render_scaling_topology,
        summarize=_summarize_scaling_topology,
    ),
    "ablation": CampaignDefinition(
        name="ablation",
        description="Correlation-complete solve refinement ablation",
        default_seed=5,
        trial_fn=_ablation.ablation_trial,
        build=lambda spec,
        scale,
        seed: _ablation.ablation_specs(scale, seed),
        merge=_ablation.merge_ablation,
        render=_render_ablation,
        summarize=_summarize_ablation,
    ),
    "realworld": CampaignDefinition(
        name="realworld",
        description=("Registered datasets x scenario library x estimators sweep"),
        default_seed=7,
        trial_fn=_realworld.realworld_trial,
        build=lambda spec, scale, seed: _realworld.realworld_specs(
            scale,
            seed,
            spec.oracle,
            datasets=_split_filter(spec.dataset),
            scenarios=_split_filter(spec.scenario),
            estimators=_split_filter(spec.estimator),
        ),
        merge=_realworld.merge_realworld,
        render=_render_realworld,
        summarize=_summarize_realworld,
        accepts_filters=True,
    ),
    "mitigation": CampaignDefinition(
        name="mitigation",
        description=(
            "Closed-loop mitigation sweep: estimate, act, re-simulate, "
            "re-estimate (policy x estimator x scenario)"
        ),
        default_seed=13,
        trial_fn=_mitigation.mitigation_trial,
        build=lambda spec, scale, seed: _mitigation.mitigation_specs(
            scale,
            seed,
            spec.oracle,
            datasets=_split_filter(spec.dataset),
            scenarios=_split_filter(spec.scenario),
            estimators=_split_filter(spec.estimator),
            policies=_split_filter(spec.policy),
        ),
        merge=_mitigation.merge_mitigation,
        render=_render_mitigation,
        summarize=_summarize_mitigation,
        accepts_filters=True,
        accepts_policies=True,
    ),
}


@dataclass
class CampaignSpec:
    """A declarative sweep request (CLI flags or a JSON file).

    ``replicates > 1`` reruns the sweep at that many seeds spawned
    deterministically from ``seed``; all replicates' trials are sharded
    through a single pool. ``executor`` picks how shards run
    (``"auto"`` — the default — threads when the active frequency kernel
    is GIL-free, else processes; or an explicit ``"thread"`` /
    ``"process"``). ``dataset`` / ``scenario`` / ``estimator``
    restrict a filter-accepting campaign (``realworld``, ``mitigation``)
    to comma-separated registered names (estimator aliases are accepted —
    see :mod:`repro.probability.registry`); ``policy`` restricts a
    policy-accepting campaign (``mitigation``) to registered mitigation
    policies. ``serve_port`` exposes live telemetry over HTTP for the
    duration of the run (``/metrics`` and friends — see
    :mod:`repro.obs.serve`), promoting ``REPRO_OBS=off`` to ``metrics``
    so the scrape is never empty.
    """

    campaign: str
    scale: str = "small"
    seed: Optional[int] = None
    oracle: bool = False
    workers: Optional[int] = 1
    replicates: int = 1
    output: Optional[str] = None
    dataset: Optional[str] = None
    scenario: Optional[str] = None
    estimator: Optional[str] = None
    policy: Optional[str] = None
    executor: Optional[str] = "auto"
    serve_port: Optional[int] = None

    def __post_init__(self) -> None:
        if self.campaign not in CAMPAIGNS:
            raise ValueError(
                f"unknown campaign {self.campaign!r}; "
                f"known campaigns: {sorted(CAMPAIGNS)}"
            )
        if self.replicates < 1:
            raise ValueError("replicates must be >= 1")
        if self.serve_port is not None and not 0 < self.serve_port < 65536:
            raise ValueError(
                f"serve_port must be in [1, 65535], got {self.serve_port}"
            )
        if self.workers is not None and self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = all local CPUs) or null")
        if self.executor is not None and self.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}; "
                f"expected one of {list(EXECUTORS)}"
            )
        definition = CAMPAIGNS[self.campaign]
        if (
            self.dataset or self.scenario or self.estimator
        ) and not definition.accepts_filters:
            raise ValueError(
                f"campaign {self.campaign!r} does not accept "
                "dataset/scenario/estimator filters"
            )
        if self.policy and not definition.accepts_policies:
            raise ValueError(
                f"campaign {self.campaign!r} does not accept a policy filter"
            )
        if self.policy:
            from repro.exceptions import MitigationError
            from repro.mitigation.policies import get_policy

            for name in _split_filter(self.policy) or []:
                try:
                    get_policy(name)
                except MitigationError as exc:
                    raise ValueError(str(exc)) from None
        if self.estimator:
            from repro.exceptions import EstimationError
            from repro.probability.registry import get_estimator

            for name in _split_filter(self.estimator) or []:
                try:
                    get_estimator(name)
                except EstimationError as exc:
                    raise ValueError(str(exc)) from None
        if self.dataset:
            from repro.datasets.registry import get_dataset
            from repro.exceptions import DatasetError

            for name in _split_filter(self.dataset) or []:
                try:
                    get_dataset(name)
                except DatasetError as exc:
                    raise ValueError(str(exc)) from None
        if self.scenario:
            from repro.exceptions import ScenarioError
            from repro.simulation.library import get_scenario

            for name in _split_filter(self.scenario) or []:
                try:
                    get_scenario(name)
                except ScenarioError as exc:
                    raise ValueError(str(exc)) from None


def load_campaign_spec(path: Union[str, Path]) -> CampaignSpec:
    """Parse a JSON campaign spec file into a :class:`CampaignSpec`."""
    raw = json.loads(Path(path).read_text())
    if not isinstance(raw, dict):
        raise ValueError(f"campaign spec {path} must be a JSON object")
    known = {f for f in CampaignSpec.__dataclass_fields__}
    unknown = set(raw) - known
    if unknown:
        raise ValueError(
            f"campaign spec {path} has unknown keys {sorted(unknown)}; "
            f"expected a subset of {sorted(known)}"
        )
    if "campaign" not in raw:
        raise ValueError(f"campaign spec {path} is missing 'campaign'")
    return CampaignSpec(**raw)


@dataclass
class ReplicateResult:
    """One replicate's merged result plus its presentations."""

    seed: int
    result: Any
    rendered: str
    summary: Dict[str, Any]


@dataclass
class CampaignOutcome:
    """Everything a campaign run produced, ready to print or persist."""

    spec: CampaignSpec
    seeds: List[int]
    elapsed: float
    num_trials: int
    #: High-water-mark RSS of the parent process over the run (bytes;
    #: report-only — absolute values are noisy on shared 1-core runners).
    peak_rss_bytes: float = 0.0
    shards: List[ShardReport] = field(default_factory=list)
    replicates: List[ReplicateResult] = field(default_factory=list)

    def to_json_dict(self) -> Dict[str, Any]:
        """The on-disk form of the outcome (results + per-shard timing)."""
        return {
            "campaign": self.spec.campaign,
            "scale": self.spec.scale,
            "oracle": self.spec.oracle,
            "workers": self.spec.workers,
            "executor": self.spec.executor,
            "dataset": self.spec.dataset,
            "scenario": self.spec.scenario,
            "estimator": self.spec.estimator,
            "policy": self.spec.policy,
            "seeds": self.seeds,
            "num_trials": self.num_trials,
            "elapsed_s": round(self.elapsed, 4),
            "peak_rss_bytes": int(self.peak_rss_bytes),
            "shards": [
                {
                    "shard": report.shard,
                    "elapsed_s": round(report.elapsed, 4),
                    "queue_wait_s": round(report.queue_wait, 4),
                    "worker_pid": report.worker_pid,
                    "trials": [
                        {"trial": name, "elapsed_s": round(elapsed, 4)}
                        for name, elapsed in report.trials
                    ],
                }
                for report in self.shards
            ],
            "replicates": [
                {
                    "seed": replicate.seed,
                    "summary": replicate.summary,
                    "rendered": replicate.rendered,
                }
                for replicate in self.replicates
            ],
        }


def run_campaign(
    spec: CampaignSpec, progress: Optional[ProgressFn] = None
) -> CampaignOutcome:
    """Run a named sweep, possibly replicated, through one shared pool."""
    definition = CAMPAIGNS[spec.campaign]
    scale = scale_by_name(spec.scale)
    master = definition.default_seed if spec.seed is None else spec.seed
    if spec.replicates == 1:
        seeds = [master]
    else:
        seeds = [int(s) for s in spawn_seeds(master, spec.replicates)]
    specs: List[TrialSpec] = []
    replicate_slices: List[int] = []
    for seed in seeds:
        batch = definition.build(spec, scale, seed)
        offset = len(specs)
        specs.extend(replace(trial, index=offset + i) for i, trial in enumerate(batch))
        replicate_slices.append(len(batch))
    shards: List[ShardReport] = []

    def record(report: ShardReport) -> None:
        shards.append(report)
        if progress is not None:
            progress(report)

    server = None
    if spec.serve_port is not None:
        from repro.obs.serve import TelemetryServer, ensure_metrics_mode

        ensure_metrics_mode()
        server = TelemetryServer(port=spec.serve_port).start()
    try:
        start = perf_counter()
        with span(
            "campaign",
            campaign=spec.campaign,
            scale=spec.scale,
            replicates=spec.replicates,
            trials=len(specs),
        ):
            results = run_trials(
                definition.trial_fn,
                specs,
                workers=spec.workers,
                progress=record,
                executor=spec.executor,
            )
        elapsed = perf_counter() - start
    finally:
        if server is not None:
            server.stop()
    from repro.obs.serve import read_peak_rss_bytes

    outcome = CampaignOutcome(
        spec=spec,
        seeds=seeds,
        elapsed=elapsed,
        num_trials=len(specs),
        peak_rss_bytes=read_peak_rss_bytes(),
        shards=sorted(shards, key=lambda report: report.shard),
    )
    offset = 0
    for seed, size in zip(seeds, replicate_slices):
        merged = definition.merge(results[offset : offset + size])
        outcome.replicates.append(
            ReplicateResult(
                seed=seed,
                result=merged,
                rendered=definition.render(merged),
                summary=definition.summarize(merged),
            )
        )
        offset += size
    return outcome


def validate_output_dir(output_dir: Union[str, Path]) -> Path:
    """Ensure the output directory exists (creating it) and is writable.

    Called *before* a campaign starts computing, so a bad ``--output``
    fails in milliseconds with a clear message instead of a traceback
    after minutes of compute.

    Raises
    ------
    ValueError
        When the path exists but is not a directory, cannot be created,
        or is not writable.
    """
    import os

    directory = Path(output_dir)
    if directory.exists() and not directory.is_dir():
        raise ValueError(
            f"output path {directory} exists and is not a directory"
        )
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise ValueError(
            f"cannot create output directory {directory}: {exc}"
        ) from None
    if not os.access(directory, os.W_OK):
        raise ValueError(f"output directory {directory} is not writable")
    return directory


def write_outcome(outcome: CampaignOutcome, output_dir: Union[str, Path]) -> Path:
    """Persist a campaign outcome as JSON; returns the written path.

    When telemetry is on, a metrics snapshot lands next to the result
    file (``<result>_metrics.json``) and the span sink is flushed so a
    ``telemetry.jsonl`` routed into the output directory is complete the
    moment the results are.
    """
    directory = validate_output_dir(output_dir)
    seed_tag = "-".join(str(seed) for seed in outcome.seeds[:3])
    if len(outcome.seeds) > 3:
        seed_tag += f"-and-{len(outcome.seeds) - 3}-more"
    path = directory / (
        f"{outcome.spec.campaign}_{outcome.spec.scale}_seed{seed_tag}.json"
    )
    path.write_text(json.dumps(outcome.to_json_dict(), indent=2) + "\n")
    if metrics_enabled():
        snapshot_path = path.with_name(path.stem + "_metrics.json")
        snapshot_path.write_text(
            render_json(global_registry().snapshot()) + "\n"
        )
        flush()
    return path
