"""Trial specifications: the unit of work of a parallel campaign.

A *campaign* (one of the paper's sweeps — Fig. 3, Fig. 4, the Algorithm 1
scaling study, the ablation) decomposes into independent *trials*: one
(topology, scenario, estimator, seed) cell of the sweep. Each trial derives
every random stream it needs from the seeds recorded on its spec via the
process-stable :func:`repro.util.rng.spawn_seeds` / ``stable_hash``
machinery, so a trial's result is a pure function of its spec — the
property that makes process-sharded execution bit-identical to the serial
run (see :mod:`repro.runner.pool`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Tuple


@dataclass(frozen=True)
class TrialSpec:
    """One independent cell of an experiment sweep.

    Attributes
    ----------
    campaign:
        Name of the sweep this trial belongs to (``"figure4"``, ...).
    topology:
        Topology label (``"brite"`` / ``"sparse"``), or ``""`` when the
        campaign has a single implicit topology.
    scenario:
        Scenario label in the paper's wording (``"No Independence"``, ...).
    estimator:
        Estimator / algorithm / variant label, or ``""`` for whole-scenario
        trials.
    seeds:
        The campaign's spawned master seeds; the trial derives its private
        streams from these plus its own labels, never from shared stateful
        generators.
    index:
        Position of the trial in the sweep's canonical (serial) order; the
        merge step reassembles results in this order regardless of which
        worker finished first.
    group:
        Trials sharing a group reuse expensive intermediates (the simulated
        experiment) through the shard-local cache, so the scheduler keeps a
        group on one shard when it can.
    cost:
        Relative cost hint used to balance shards (arbitrary units; only
        ratios matter).
    params:
        Campaign-specific payload (the experiment scale, oracle flag,
        pre-simulated packed observations, ...). Must be picklable.
    """

    campaign: str
    topology: str = ""
    scenario: str = ""
    estimator: str = ""
    seeds: Tuple[int, ...] = ()
    index: int = 0
    group: Tuple[Any, ...] = ()
    cost: float = 1.0
    params: Mapping[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """Human-readable cell label, used in progress and error messages."""
        parts = [self.campaign]
        for part in (self.topology, self.scenario, self.estimator):
            if part:
                parts.append(str(part))
        return " / ".join(parts)


@dataclass
class TrialResult:
    """One trial's payload plus execution metadata.

    ``payload`` is whatever the campaign's trial function returned (metrics,
    rows, packed words); ``elapsed`` and ``worker_pid`` record where and how
    long the trial actually ran — purely informational, never merged into
    scientific results.
    """

    spec: TrialSpec
    payload: Any
    elapsed: float = 0.0
    worker_pid: int = 0


class TrialError(RuntimeError):
    """A trial failed (or its worker process died).

    Carries the failing :class:`TrialSpec` so sweeps abort with the exact
    sweep cell that broke instead of a bare pool traceback — or, when a
    worker process died without a Python traceback, the candidate specs of
    the shard it was running.
    """

    def __init__(
        self,
        message: str,
        spec: Optional[TrialSpec] = None,
        traceback_text: str = "",
    ) -> None:
        super().__init__(message)
        self.spec = spec
        self.traceback_text = traceback_text
