"""Sharded trial execution (processes or threads) with a deterministic merge.

The executor takes a list of :class:`~repro.runner.spec.TrialSpec` and a
top-level *trial function* ``fn(spec, cache) -> payload`` and runs every
trial, either inline (``workers=1`` — the serial path is the degenerate
single-shard case of the same code) or sharded across a
``concurrent.futures`` pool. Two shard executors share one partition,
merge, and fault model:

* ``executor="process"`` — a ``ProcessPoolExecutor``: true parallelism
  whatever kernel is active, at the cost of pickling specs (with their
  embedded experiments/packed words) into workers and pool start-up.
* ``executor="thread"`` — a ``ThreadPoolExecutor``: shards run in the
  parent interpreter and share its packed observation words and
  group-level fit workspaces **zero-copy** (nothing is pickled, no
  processes fork). Real speedup requires the hot kernel loops to release
  the GIL — i.e. the compiled numba kernel
  (:mod:`repro.model.kernels`); under the pure-numpy kernel thread
  shards mostly serialise on the GIL.
* ``executor="auto"`` — thread when the active kernel releases the GIL,
  process otherwise.

Three properties the experiment drivers rely on:

* **Determinism** — trials derive all randomness from their spec, shards
  are formed by a deterministic longest-processing-time partition, and the
  merge reassembles results in spec-index order, so the merged output is
  bit-identical whatever ``workers`` is and whichever shard finishes first.
* **Locality** — trials sharing ``spec.group`` are kept on one shard and
  handed a shard-local ``cache`` dict, so expensive intermediates (a
  simulated experiment reused by three estimators) are built once per
  shard; packed observation matrices cross process boundaries only in
  their uint64 word form (:class:`repro.model.packed.PackedBackend`
  pickles as its word array).
* **Fault surfacing** — a trial that raises aborts the sweep with a
  :class:`~repro.runner.spec.TrialError` naming the failing sweep cell and
  carrying the worker traceback; a worker process that dies outright
  (segfault, ``os._exit``) is mapped to the shard it was running instead
  of hanging the pool.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import (
    apply_runtime_config,
    capture_metrics,
    counter,
    current_span_id,
    event,
    gauge,
    histogram,
    merge_snapshot,
    metrics_enabled,
    parent_scope,
    runtime_config,
    span,
)
from repro.runner.spec import TrialError, TrialResult, TrialSpec

# Runner telemetry (REPRO_OBS=metrics|trace). Shards record into
# capture-local registries that the parent merges in shard-index order, so
# the merged totals are identical under the serial, thread, and process
# executors.
_TRIALS_TOTAL = counter(
    "repro_runner_trials_total",
    "Trials completed by shard workers.",
)
_SHARD_SECONDS = histogram(
    "repro_runner_shard_seconds",
    "Wall time per completed shard.",
)
_QUEUE_WAIT_SECONDS = histogram(
    "repro_runner_queue_wait_seconds",
    "Delay between shard submission and a worker picking it up.",
)
_MERGE_SECONDS = histogram(
    "repro_runner_merge_seconds",
    "Time reassembling shard results into canonical sweep order.",
)
_SHARD_UTILIZATION = gauge(
    "repro_runner_shard_utilization",
    "Fraction of a shard's wall time spent inside trials.",
    ["shard"],
)

#: Signature of a campaign's trial function. ``cache`` is shard-local and
#: may be used to share intermediates between same-group trials.
TrialFn = Callable[[TrialSpec, Dict[Any, Any]], Any]

#: Signature of the optional progress callback.
ProgressFn = Callable[["ShardReport"], None]


@dataclass
class ShardReport:
    """Progress/timing record emitted once per completed shard."""

    shard: int
    num_shards: int
    elapsed: float
    worker_pid: int
    trials: List[Tuple[str, float]] = field(default_factory=list)
    #: Seconds between shard submission and its worker starting (0 on the
    #: serial path, which never queues).
    queue_wait: float = 0.0

    def describe(self) -> str:
        """One progress line: shard position, size, and wall time."""
        return (
            f"shard {self.shard + 1}/{self.num_shards}: "
            f"{len(self.trials)} trial(s) in {self.elapsed:.2f}s "
            f"(pid {self.worker_pid})"
        )


#: Recognised shard-executor modes.
EXECUTORS = ("auto", "thread", "process")


def resolve_executor(executor: Optional[str]) -> str:
    """Normalise an ``executor`` request to ``"thread"`` or ``"process"``.

    ``"auto"`` (or ``None``) picks threads exactly when the active
    frequency kernel runs its hot loops without the GIL (the compiled
    numba kernel), because only then do thread shards actually overlap;
    otherwise it picks processes. Either resolution is bit-identical —
    the choice is purely a wall-clock/memory trade.
    """
    if executor is None or executor == "auto":
        from repro.model.kernels import active_kernel

        return "thread" if active_kernel().releases_gil else "process"
    if executor not in ("thread", "process"):
        raise ValueError(
            f"unknown executor {executor!r}; expected one of {list(EXECUTORS)}"
        )
    return executor


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers`` request (``None``/``0`` = all local CPUs)."""
    if workers is None or workers == 0:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except (AttributeError, OSError):
            return max(1, os.cpu_count() or 1)
    if workers < 0:
        raise ValueError(f"workers must be >= 1 or None, got {workers}")
    return workers


def partition_specs(specs: Sequence[TrialSpec], shards: int) -> List[List[TrialSpec]]:
    """Deterministically partition trials into at most ``shards`` shards.

    Trials sharing a ``group`` stay together (they share cached
    intermediates); groups are balanced across shards greedily by summed
    ``cost`` in longest-processing-time order, ties broken by first spec
    index so the partition never depends on dict order or timing.
    """
    groups: Dict[Any, List[TrialSpec]] = {}
    for spec in specs:
        key = spec.group if spec.group else ("__solo__", spec.index)
        groups.setdefault(key, []).append(spec)
    ordered = sorted(
        groups.values(),
        key=lambda members: (
            -sum(spec.cost for spec in members),
            min(spec.index for spec in members),
        ),
    )
    shards = max(1, min(shards, len(ordered)))
    loads = [0.0] * shards
    assignment: List[List[TrialSpec]] = [[] for _ in range(shards)]
    for members in ordered:
        target = min(range(shards), key=lambda i: (loads[i], i))
        assignment[target].extend(members)
        loads[target] += sum(spec.cost for spec in members)
    for shard in assignment:
        shard.sort(key=lambda spec: spec.index)
    return [shard for shard in assignment if shard]


@dataclass
class _ShardOutcome:
    """What a shard sends back: per-trial rows, or the first failure hit.

    ``results`` rows are ``(spec index, payload, elapsed)`` — the specs
    themselves are *not* echoed back (the parent already holds them, and
    they can carry multi-MB pre-simulated experiments in ``params``), so
    the return trip ships only the payloads.
    """

    shard: int
    worker_pid: int
    elapsed: float
    results: List[Tuple[int, Any, float]] = field(default_factory=list)
    failed_index: Optional[int] = None
    failure_traceback: str = ""
    #: Seconds the shard sat queued before its worker started.
    queue_wait: float = 0.0
    #: Shard-local metrics snapshot (None when telemetry is off).
    metrics: Optional[dict] = None


def _run_shard(
    trial_fn: TrialFn,
    shard: int,
    specs: List[TrialSpec],
    submitted_at: Optional[float] = None,
    parent_span: Optional[str] = None,
    obs_settings: Optional[dict] = None,
) -> _ShardOutcome:
    """Run one shard's trials in spec order with a shard-local cache.

    Top-level (picklable) so it can be shipped to pool workers; also the
    exact code path of the serial run. The last three parameters carry
    telemetry context across the executor boundary: the submission
    timestamp (``perf_counter`` is CLOCK_MONOTONIC on Linux, comparable
    across the fork), the parent span id (worker threads and processes
    both start with fresh span contexts), and the parent's
    :func:`repro.obs.runtime_config` (spawned workers re-read their own
    environment otherwise). Metric updates land in a capture-local
    registry shipped back on the outcome — never directly in a worker's
    global registry, which is also what keeps the thread executor from
    double-counting into the parent's.
    """
    if obs_settings is not None:
        apply_runtime_config(obs_settings)
    queue_wait = (
        max(0.0, perf_counter() - submitted_at) if submitted_at is not None else 0.0
    )
    outcome = _ShardOutcome(
        shard=shard, worker_pid=os.getpid(), elapsed=0.0, queue_wait=queue_wait
    )
    cache: Dict[Any, Any] = {}
    with parent_scope(parent_span), capture_metrics() as captured:
        event("runner.worker.start", shard=shard, pid=os.getpid())
        with span("runner.shard", shard=shard, trials=len(specs)) as shard_span:
            if metrics_enabled():
                _QUEUE_WAIT_SECONDS.observe(queue_wait)
            busy = 0.0
            for spec in specs:
                try:
                    with span("runner.trial", index=spec.index) as trial_span:
                        payload = trial_fn(spec, cache)
                except Exception:
                    outcome.failed_index = spec.index
                    outcome.failure_traceback = traceback.format_exc()
                    break
                outcome.results.append((spec.index, payload, trial_span.elapsed))
                busy += trial_span.elapsed
                _TRIALS_TOTAL.inc()
        outcome.elapsed = shard_span.elapsed
        if metrics_enabled():
            _SHARD_SECONDS.observe(shard_span.elapsed)
            _SHARD_UTILIZATION.set(
                busy / shard_span.elapsed if shard_span.elapsed > 0 else 0.0,
                shard=str(shard),
            )
            outcome.metrics = captured.snapshot()
        event("runner.worker.stop", shard=shard, pid=os.getpid())
    return outcome


def _abort_pool(pool) -> None:
    """Shut the pool down and kill its in-flight worker processes.

    ``shutdown(cancel_futures=True)`` only cancels *unstarted* shards; a
    shard already running — possibly the hung trial that triggered the
    abort — would otherwise keep its non-daemon worker alive (and the
    interpreter waiting on it at exit) until the trial finished on its
    own. There is no public API for terminating workers, so snapshot the
    executor's process table *before* shutdown clears it, then SIGTERM
    the survivors. Thread pools have no process table (and threads cannot
    be killed): for them this only cancels unstarted shards — an
    in-flight thread shard runs to completion in the background.
    """
    processes = dict(getattr(pool, "_processes", None) or {})
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes.values():
        try:
            process.terminate()
        except (OSError, ValueError):
            pass  # already dead or being reaped


def _pool_context():
    """Multiprocessing context for the shard pool.

    ``fork`` (where available) keeps worker start-up cheap — the parent has
    already paid numpy/scipy import costs — while the default context keeps
    the runner working on spawn-only platforms.
    """
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_trials(
    trial_fn: TrialFn,
    specs: Sequence[TrialSpec],
    workers: Optional[int] = 1,
    progress: Optional[ProgressFn] = None,
    timeout: Optional[float] = None,
    executor: Optional[str] = "process",
) -> List[TrialResult]:
    """Execute every trial and merge results in canonical sweep order.

    Parameters
    ----------
    trial_fn:
        Top-level function ``(spec, cache) -> payload``; must be
        importable by name (picklable) when ``workers > 1`` on the
        process executor. Thread shards call it directly.
    specs:
        The sweep's trials; ``spec.index`` values must be distinct.
    workers:
        Shard count: ``1`` runs inline (serial), ``None``/``0`` uses all
        local CPUs, ``N`` uses at most N workers.
    progress:
        Called with a :class:`ShardReport` as each shard completes.
    timeout:
        Overall wall-clock bound in seconds; on expiry the pool is torn
        down and a :class:`TrialError` lists the unfinished shards.
        Process shards are SIGTERMed; a hung *thread* shard cannot be
        killed and runs to completion in the background after the error
        is raised.
    executor:
        ``"process"`` (default) shards across a process pool,
        ``"thread"`` across threads in this interpreter — zero-copy: no
        spec/observation pickling, no fork start-up — and ``"auto"``
        picks threads exactly when the active frequency kernel releases
        the GIL (see :func:`resolve_executor`).

    Returns
    -------
    list of :class:`TrialResult`, sorted by ``spec.index`` — the same list
    whatever the shard layout or executor, because trials are pure
    functions of their specs.
    """
    specs = list(specs)
    if not specs:
        return []
    by_index = {spec.index: spec for spec in specs}
    if len(by_index) != len(specs):
        raise ValueError("trial spec indices must be distinct")
    mode = resolve_executor(executor)
    shards = partition_specs(specs, resolve_workers(workers))
    if len(shards) == 1 or resolve_workers(workers) == 1:
        outcomes = []
        for shard_index, shard in enumerate(shards):
            outcome = _run_shard(trial_fn, shard_index, shard)
            _check_outcome(outcome, by_index)
            _report(progress, outcome, len(shards), by_index)
            outcomes.append(outcome)
        return _finish(outcomes, specs, by_index)

    outcomes = []
    parent_span = current_span_id()
    obs_settings = runtime_config()
    if mode == "thread":
        pool = ThreadPoolExecutor(max_workers=len(shards))
    else:
        pool = ProcessPoolExecutor(
            max_workers=len(shards), mp_context=_pool_context()
        )
    # Not a ``with`` block: ``Executor.__exit__`` joins workers, and a
    # thread shard cannot be killed — a hung trial would block the abort
    # path's TrialError behind its own join. Errors shut down without
    # waiting (abandoned thread shards finish in the background); the
    # success path still waits so no worker outlives its sweep.
    try:
        futures = {
            pool.submit(
                _run_shard,
                trial_fn,
                shard_index,
                shard,
                perf_counter(),
                parent_span,
                obs_settings,
            ): (
                shard_index,
                shard,
            )
            for shard_index, shard in enumerate(shards)
        }
        try:
            for future in as_completed(futures, timeout=timeout):
                shard_index, shard = futures[future]
                try:
                    outcome = future.result()
                except BrokenProcessPool as exc:
                    _abort_pool(pool)
                    # Pool breakage poisons every unfinished future, so the
                    # first broken future seen is not necessarily the shard
                    # whose worker died: name every shard that did not
                    # finish cleanly as a candidate.
                    finished = {
                        other
                        for other in futures
                        if other.done()
                        and not other.cancelled()
                        and other.exception() is None
                    }
                    candidates = "; ".join(
                        spec.describe()
                        for other, (_, other_shard) in futures.items()
                        if other not in finished
                        for spec in other_shard
                    )
                    raise TrialError(
                        "a worker process died while running shard "
                        f"{shard_index + 1}/{len(shards)} "
                        f"(candidate trials: {candidates})",
                        spec=shard[0],
                    ) from exc
                if outcome.failed_index is not None:
                    _abort_pool(pool)
                    _check_outcome(outcome, by_index)
                _report(progress, outcome, len(shards), by_index)
                outcomes.append(outcome)
        except FutureTimeout:
            _abort_pool(pool)
            stuck = sorted(
                spec.describe()
                for future, (_, shard) in futures.items()
                if not future.done()
                for spec in shard
            )
            raise TrialError(
                f"sweep timed out after {timeout}s; unfinished trials: "
                + "; ".join(stuck)
            ) from None
    except BaseException:
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=True)
    return _finish(outcomes, specs, by_index)


def _finish(
    outcomes: List[_ShardOutcome],
    specs: Sequence[TrialSpec],
    by_index: Dict[int, TrialSpec],
) -> List[TrialResult]:
    """Fold shard telemetry into this process's registry, then merge.

    Metrics snapshots merge in shard-index order — not completion order —
    so the parent registry ends up identical whichever executor ran the
    shards and however their finishes interleaved.
    """
    for outcome in sorted(outcomes, key=lambda o: o.shard):
        if outcome.metrics is not None:
            merge_snapshot(outcome.metrics)
    with span("runner.merge", shards=len(outcomes)) as merge_span:
        results = _merge(outcomes, specs, by_index)
    if metrics_enabled():
        _MERGE_SECONDS.observe(merge_span.elapsed)
    return results


def _check_outcome(outcome: _ShardOutcome, by_index: Dict[int, TrialSpec]) -> None:
    """Raise the shard's recorded trial failure, if any."""
    if outcome.failed_index is not None:
        spec = by_index[outcome.failed_index]
        raise TrialError(
            f"trial '{spec.describe()}' (index {spec.index}) failed:\n"
            f"{outcome.failure_traceback}",
            spec=spec,
            traceback_text=outcome.failure_traceback,
        )


def _report(
    progress: Optional[ProgressFn],
    outcome: _ShardOutcome,
    num_shards: int,
    by_index: Dict[int, TrialSpec],
) -> None:
    if progress is None:
        return
    progress(
        ShardReport(
            shard=outcome.shard,
            num_shards=num_shards,
            elapsed=outcome.elapsed,
            worker_pid=outcome.worker_pid,
            trials=[
                (by_index[index].describe(), elapsed)
                for index, _, elapsed in outcome.results
            ],
            queue_wait=outcome.queue_wait,
        )
    )


def _merge(
    outcomes: Sequence[_ShardOutcome],
    specs: Sequence[TrialSpec],
    by_index: Dict[int, TrialSpec],
) -> List[TrialResult]:
    """Reassemble shard results in canonical sweep order.

    Payloads are rebound to the parent-held spec objects — workers never
    echo specs back.
    """
    rows = {
        index: (payload, elapsed, outcome.worker_pid)
        for outcome in outcomes
        for index, payload, elapsed in outcome.results
    }
    missing = [spec for spec in specs if spec.index not in rows]
    if missing:
        raise TrialError(
            "sweep finished without results for: "
            + "; ".join(spec.describe() for spec in missing),
            spec=missing[0],
        )
    ordered = sorted(specs, key=lambda spec: spec.index)
    return [
        TrialResult(
            spec=spec,
            payload=rows[spec.index][0],
            elapsed=rows[spec.index][1],
            worker_pid=rows[spec.index][2],
        )
        for spec in ordered
    ]
