"""repro — reproduction of *Shifting Network Tomography Toward A Practical
Goal* (Ghita, Karakus, Argyraki, Thiran; ACM CoNEXT 2011).

The library implements:

* the network model of Section 2 (links, paths, correlation sets per AS);
* synthetic topology substrates: a BRITE-like dense generator and a
  traceroute-campaign simulator producing sparse operator views;
* the congestion simulator of Section 3.2 (driver-based correlated
  congestion, the loss model of [12], packet-level E2E probing);
* three Boolean Inference algorithms: Sparsity (Tomo), Bayesian-Independence
  (CLINK), and Bayesian-Correlation;
* three Probability Computation algorithms: Independence, the
  Correlation-heuristic of [9], and the paper's **Correlation-complete**
  (Algorithm 1 with the incremental null-space update of Algorithm 2);
* metrics and experiment drivers regenerating every figure and table.

Quickstart
----------
>>> from repro import fig1_topology, CorrelationCompleteEstimator
>>> network = fig1_topology(case=1)

See ``examples/quickstart.py`` for a full walk-through.
"""

from repro.exceptions import (
    EstimationError,
    IdentifiabilityError,
    InferenceError,
    ReproError,
    ScenarioError,
    TopologyError,
)
from repro.topology import (
    BriteConfig,
    Link,
    Network,
    Path,
    TracerouteConfig,
    fig1_topology,
    generate_brite_network,
    generate_sparse_network,
    network_from_paths,
)
from repro.probability import (
    CongestionProbabilityModel,
    CorrelationCompleteEstimator,
    CorrelationHeuristicEstimator,
    EstimatorConfig,
    IndependenceEstimator,
)
from repro.inference import (
    BayesianCorrelationInference,
    BayesianIndependenceInference,
    SparsityInference,
)
from repro.datasets import (
    DatasetSpec,
    dataset_names,
    load_dataset,
)
from repro.simulation.library import (
    ScenarioGenerator,
    build_named_scenario,
    scenario_names,
)
from repro.streaming import (
    Alert,
    AlertManager,
    AlertPolicy,
    PackedRingBuffer,
    StreamingEstimator,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "TopologyError",
    "ScenarioError",
    "EstimationError",
    "InferenceError",
    "IdentifiabilityError",
    "Link",
    "Path",
    "Network",
    "fig1_topology",
    "network_from_paths",
    "BriteConfig",
    "generate_brite_network",
    "TracerouteConfig",
    "generate_sparse_network",
    "EstimatorConfig",
    "CongestionProbabilityModel",
    "CorrelationCompleteEstimator",
    "CorrelationHeuristicEstimator",
    "IndependenceEstimator",
    "SparsityInference",
    "BayesianIndependenceInference",
    "BayesianCorrelationInference",
    "Alert",
    "AlertManager",
    "AlertPolicy",
    "PackedRingBuffer",
    "StreamingEstimator",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "ScenarioGenerator",
    "build_named_scenario",
    "scenario_names",
    "__version__",
]
