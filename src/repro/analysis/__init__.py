"""Operator-facing analysis on top of fitted probability models.

Turns a :class:`~repro.probability.query.CongestionProbabilityModel` into
the reports the paper's source ISP actually wants: per-peer congestion
summaries, correlated-failure groups, and rendered monitoring reports.
"""

from repro.analysis.peers import (
    CorrelatedGroup,
    PeerReport,
    PeerSummary,
    build_peer_report,
)

__all__ = [
    "CorrelatedGroup",
    "PeerReport",
    "PeerSummary",
    "build_peer_report",
]
