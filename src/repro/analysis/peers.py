"""Per-peer congestion reports — the paper's Section 1 deliverable.

"For each peer, the source ISP wants to understand: when the peer is
responsible for connectivity/performance problems ...; how frequently the
peer is congested ...". This module aggregates a fitted probability model
into per-AS summaries and correlated-failure groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

import numpy as np

from repro.metrics.reporting import format_table
from repro.probability.query import CongestionProbabilityModel
from repro.topology.graph import Network


@dataclass
class PeerSummary:
    """Congestion summary for one peer AS.

    Attributes
    ----------
    asn:
        The peer's AS number.
    num_links:
        Monitored links inside the peer.
    worst_link, worst_probability:
        The most congestion-prone monitored link and its probability.
    mean_probability:
        Mean congestion probability over the peer's monitored links.
    any_link_congestion:
        Probability that at least one of the peer's monitored links is
        congested (1 - P(all good)) — the "peer is congested" event.
    identifiable_fraction:
        Fraction of the peer's links whose probabilities the data pins
        down uniquely; low values mean the view of this peer is too sparse
        to trust in detail.
    """

    asn: int
    num_links: int
    worst_link: int
    worst_probability: float
    mean_probability: float
    any_link_congestion: float
    identifiable_fraction: float


@dataclass
class CorrelatedGroup:
    """Links inside one peer that congest together."""

    asn: int
    links: FrozenSet[int]
    joint_probability: float
    identifiable: bool


@dataclass
class PeerReport:
    """All peer summaries plus intra-peer correlated groups."""

    summaries: List[PeerSummary] = field(default_factory=list)
    correlated_groups: List[CorrelatedGroup] = field(default_factory=list)

    def ranked(self) -> List[PeerSummary]:
        """Summaries ordered worst peer first."""
        return sorted(self.summaries, key=lambda s: -s.any_link_congestion)

    def summary_for(self, asn: int) -> Optional[PeerSummary]:
        """The summary of peer ``asn`` (None if not monitored)."""
        for summary in self.summaries:
            if summary.asn == asn:
                return summary
        return None

    def to_table(self, top: int = 10) -> str:
        """Render the worst ``top`` peers as text."""
        rows = []
        for summary in self.ranked()[:top]:
            rows.append(
                [
                    f"AS{summary.asn}",
                    summary.num_links,
                    f"e{summary.worst_link}",
                    summary.worst_probability,
                    summary.mean_probability,
                    summary.any_link_congestion,
                    summary.identifiable_fraction,
                ]
            )
        return format_table(
            [
                "peer",
                "links",
                "worst link",
                "P(worst)",
                "mean P",
                "P(any congested)",
                "identifiable",
            ],
            rows,
        )


def build_peer_report(
    network: Network,
    model: CongestionProbabilityModel,
    min_joint_probability: float = 0.02,
    max_group_size: int = 3,
) -> PeerReport:
    """Aggregate a fitted model into per-peer summaries.

    Parameters
    ----------
    network:
        The monitored topology (supplies the link -> AS mapping).
    model:
        A fitted probability model (any estimator).
    min_joint_probability:
        Correlated groups with a smaller joint congestion probability are
        omitted from the report.
    max_group_size:
        Largest correlated-group size reported.
    """
    report = PeerReport()
    by_asn: Dict[int, List[int]] = {}
    for link in network.links:
        by_asn.setdefault(link.asn, []).append(link.index)
    for asn, members in sorted(by_asn.items()):
        probabilities = {e: model.link_congestion_probability(e) for e in members}
        worst_link = max(members, key=lambda e: probabilities[e])
        identifiable = sum(1 for e in members if model.is_identifiable([e]))
        report.summaries.append(
            PeerSummary(
                asn=asn,
                num_links=len(members),
                worst_link=worst_link,
                worst_probability=probabilities[worst_link],
                mean_probability=float(np.mean(list(probabilities.values()))),
                any_link_congestion=1.0 - model.prob_all_good(members),
                identifiable_fraction=identifiable / len(members),
            )
        )
    for subset in model.subsets:
        if not 2 <= len(subset) <= max_group_size:
            continue
        joint = model.prob_all_congested(subset)
        if joint < min_joint_probability:
            continue
        asn = network.links[next(iter(subset))].asn
        report.correlated_groups.append(
            CorrelatedGroup(
                asn=asn,
                links=subset,
                joint_probability=joint,
                identifiable=model.is_identifiable(subset),
            )
        )
    report.correlated_groups.sort(key=lambda g: -g.joint_probability)
    return report
