"""Growing least-squares equation system with identifiability reporting.

Taking logarithms of Eq. 1 turns every "all paths in P good" observation into
a *linear* equation over the unknown log-probabilities of correlation
subsets. This module hosts those equations: rows are appended as Algorithm 1
selects path sets, the system is solved by (min-norm) least squares, and each
unknown is classified *identifiable* iff its coordinate is constant across
the solution affine subspace — i.e. iff the corresponding row of the final
null-space basis vanishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy.optimize import lsq_linear

from repro.exceptions import EstimationError
from repro.linalg.nullspace import DEFAULT_TOL, null_space


@dataclass
class Solution:
    """Solved unknowns with identifiability flags.

    Attributes
    ----------
    values:
        Estimated unknowns (here: log "all-good" probabilities), length n.
        Unidentifiable coordinates carry the min-norm solution value and
        must be interpreted through ``identifiable``.
    identifiable:
        Boolean mask, length n; true where the system pins the unknown down
        uniquely.
    rank:
        Rank of the solved system.
    residual:
        Root-mean-square equation residual (diagnostic; large residuals mean
        the model assumptions are violated or T is too small).
    """

    values: np.ndarray
    identifiable: np.ndarray
    rank: int
    residual: float


class EquationSystem:
    """A growing linear system ``A x = b`` over ``num_unknowns`` unknowns.

    Equations may carry *weights* (generalised least squares): an equation
    whose right-hand side is a noisy estimate with standard deviation
    ``sigma`` should be weighted ``1/sigma`` so that precise equations
    dominate the solve. Weights scale rows and right-hand sides together, so
    the row space — and therefore identifiability — is unchanged.
    """

    def __init__(self, num_unknowns: int) -> None:
        if num_unknowns < 0:
            raise EstimationError("num_unknowns must be non-negative")
        self.num_unknowns = num_unknowns
        self._rows: List[np.ndarray] = []
        self._rhs: List[float] = []
        self._weights: List[float] = []
        self._is_prior: List[bool] = []

    def __len__(self) -> int:
        return len(self._rows)

    def add(
        self, row: np.ndarray, rhs: float, weight: float = 1.0, prior: bool = False
    ) -> None:
        """Append one equation ``row . x = rhs`` with precision ``weight``.

        Equations flagged ``prior`` are regularisers, not measurements: they
        participate in the least-squares solve (pulling underdetermined
        directions toward the prior) but are excluded from rank and
        identifiability accounting — an unknown only counts as identifiable
        when the *data* pins it down.
        """
        row = np.asarray(row, dtype=float).reshape(-1)
        if row.shape[0] != self.num_unknowns:
            raise EstimationError(
                f"row has {row.shape[0]} coefficients, expected {self.num_unknowns}"
            )
        if weight <= 0.0:
            raise EstimationError("equation weight must be positive")
        self._rows.append(row)
        self._rhs.append(float(rhs))
        self._weights.append(float(weight))
        self._is_prior.append(bool(prior))

    @property
    def matrix(self) -> np.ndarray:
        """The system matrix A, shape (num_equations, num_unknowns)."""
        if not self._rows:
            return np.zeros((0, self.num_unknowns))
        return np.vstack(self._rows)

    @property
    def rhs(self) -> np.ndarray:
        """The right-hand side b, shape (num_equations,)."""
        return np.asarray(self._rhs, dtype=float)

    def solve(
        self, tol: float = DEFAULT_TOL, upper_bound: Optional[float] = None
    ) -> Solution:
        """Solve by (optionally bounded) least squares and classify
        identifiability.

        Parameters
        ----------
        upper_bound:
            When given, solve subject to ``x_i <= upper_bound`` for every
            unknown. The log-domain probability systems use 0 (probabilities
            cannot exceed 1); without the bound, noise can push one
            unknown's log-probability positive and dump the compensating
            mass on another, badly misattributing congestion.

        Raises
        ------
        EstimationError
            If the system has no equations but unknowns exist.
        """
        if self.num_unknowns == 0:
            return Solution(
                values=np.zeros(0),
                identifiable=np.zeros(0, dtype=bool),
                rank=0,
                residual=0.0,
            )
        if not self._rows:
            raise EstimationError("cannot solve an empty equation system")
        matrix = self.matrix
        rhs = self.rhs
        weights = np.asarray(self._weights, dtype=float)
        weighted_matrix = matrix * weights[:, None]
        weighted_rhs = rhs * weights
        if upper_bound is None:
            values, _, _, _ = np.linalg.lstsq(
                weighted_matrix, weighted_rhs, rcond=None
            )
        else:
            outcome = lsq_linear(
                weighted_matrix,
                weighted_rhs,
                bounds=(-np.inf, upper_bound),
                method="bvls" if weighted_matrix.shape[0] >= weighted_matrix.shape[1] else "trf",
            )
            values = outcome.x
        data_mask = ~np.asarray(self._is_prior, dtype=bool)
        data_matrix = matrix[data_mask]
        data_rhs = rhs[data_mask]
        if data_matrix.shape[0] == 0:
            raise EstimationError("cannot solve a system with only prior equations")
        basis = null_space(data_matrix, tol)
        if basis.shape[1] == 0:
            identifiable = np.ones(self.num_unknowns, dtype=bool)
        else:
            # Unknown i is pinned down iff every null vector has a zero
            # i-th coordinate.
            identifiable = np.abs(basis).max(axis=1) <= 1e-7
        fitted = data_matrix @ values
        residual = (
            float(np.sqrt(np.mean((fitted - data_rhs) ** 2)))
            if len(data_rhs)
            else 0.0
        )
        return Solution(
            values=values,
            identifiable=identifiable,
            rank=int(np.linalg.matrix_rank(data_matrix)),
            residual=residual,
        )
