"""Growing least-squares equation system with identifiability reporting.

Taking logarithms of Eq. 1 turns every "all paths in P good" observation into
a *linear* equation over the unknown log-probabilities of correlation
subsets. This module hosts those equations: rows are appended as Algorithm 1
selects path sets — individually or as whole batches, which is how the
batched estimation stack feeds vectorized frequency/weight arrays in — the
system is solved by (min-norm) least squares, and each unknown is classified
*identifiable* iff its coordinate is constant across the solution affine
subspace — i.e. iff the corresponding row of the final null-space basis
vanishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np
from scipy.optimize import lsq_linear, nnls

from repro.exceptions import EstimationError
from repro.linalg.nullspace import DEFAULT_TOL


def _group_duplicate_rows(matrix: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """Group identical rows by hashing their raw bytes.

    Returns ``(first_of_group, inverse)``: the index of each group's first
    occurrence (in first-seen order) and, per original row, its group id.
    Linear in the matrix size — far cheaper than a lexicographic
    ``np.unique(axis=0)`` on wide float rows.
    """
    matrix = np.ascontiguousarray(matrix)
    groups: dict = {}
    first_of_group: List[int] = []
    inverse = np.empty(matrix.shape[0], dtype=np.intp)
    for i, row in enumerate(matrix):
        key = row.tobytes()
        group = groups.get(key)
        if group is None:
            group = len(groups)
            groups[key] = group
            first_of_group.append(i)
        inverse[i] = group
    return np.asarray(first_of_group, dtype=np.intp), inverse


class SystemWorkspace:
    """Reusable growth arenas for :class:`EquationSystem` blocks.

    A sweep trial that fits several estimators against one observation set
    churns through several short-lived equation systems; the workspace
    lets them append into one capacity-doubling arena instead of
    reallocating block lists per fit. The estimation pipeline threads one
    workspace per trial through its
    :class:`~repro.probability.pipeline.FitContext`.

    Only one system may grow in the workspace at a time: beginning a new
    system recycles the arena, invalidating the previous system's matrix
    views. Sweep trials fit sequentially, so this is the natural lifetime.

    The arena has two storage modes, chosen per :meth:`begin`: *dense*
    (the historical row matrix) and *sparse* (each row as a run of
    ``(column, value)`` entries in flat capacity-doubling arrays, plus a
    per-row entry count). The scalar arenas — rhs, weights, prior flags —
    are shared between modes.
    """

    #: Initial row capacity of a fresh arena.
    INITIAL_CAPACITY = 256
    #: Initial flat (column, value) entry capacity of the sparse arena.
    INITIAL_ENTRIES = 1024

    def __init__(self) -> None:
        self._rows: Optional[np.ndarray] = None
        self._rhs: Optional[np.ndarray] = None
        self._weights: Optional[np.ndarray] = None
        self._prior: Optional[np.ndarray] = None
        # Sparse-mode arenas: per-row entry counts plus flat entry arrays.
        self._row_lengths: Optional[np.ndarray] = None
        self._flat_columns: Optional[np.ndarray] = None
        self._flat_values: Optional[np.ndarray] = None
        self._entry_count = 0
        self._sparse = False
        self._width = -1
        self._count = 0
        # Bumped on every begin(); systems remember the generation they
        # were issued so a stale system can never read a recycled arena.
        self._generation = 0

    def begin(self, num_unknowns: int, sparse: bool = False) -> int:
        """Recycle the arena for a new system; returns its generation."""
        if self._rhs is None:
            self._rhs = np.empty(self.INITIAL_CAPACITY)
            self._weights = np.empty(self.INITIAL_CAPACITY)
            self._prior = np.empty(self.INITIAL_CAPACITY, dtype=bool)
        self._sparse = sparse
        if sparse:
            if self._row_lengths is None:
                self._row_lengths = np.empty(self._rhs.shape[0], dtype=np.int64)
            if self._flat_columns is None:
                self._flat_columns = np.empty(self.INITIAL_ENTRIES, dtype=np.int64)
                self._flat_values = np.empty(self.INITIAL_ENTRIES)
        elif self._rows is None or self._width != num_unknowns:
            self._rows = np.empty((self._rhs.shape[0], num_unknowns))
        self._width = num_unknowns
        self._count = 0
        self._entry_count = 0
        self._generation += 1
        return self._generation

    @property
    def generation(self) -> int:
        """Identity of the arena's current (live) system."""
        return self._generation

    def _ensure(self, needed: int) -> None:
        """Grow the per-row arenas of the current mode to ``needed`` rows."""
        names = ["_rhs", "_weights", "_prior"]
        names.append("_row_lengths" if self._sparse else "_rows")
        for name in names:
            old = getattr(self, name)
            if needed <= old.shape[0]:
                continue
            capacity = max(needed, 2 * old.shape[0])
            shape = (capacity, self._width) if old.ndim == 2 else (capacity,)
            grown = np.empty(shape, dtype=old.dtype)
            grown[: self._count] = old[: self._count]
            setattr(self, name, grown)

    def _ensure_entries(self, needed: int) -> None:
        """Grow the flat sparse-entry arenas to ``needed`` entries."""
        for name in ("_flat_columns", "_flat_values"):
            old = getattr(self, name)
            if needed <= old.shape[0]:
                continue
            grown = np.empty(max(needed, 2 * old.shape[0]), dtype=old.dtype)
            grown[: self._entry_count] = old[: self._entry_count]
            setattr(self, name, grown)

    def append(
        self,
        rows: np.ndarray,
        rhs: np.ndarray,
        weights: np.ndarray,
        prior: bool,
    ) -> None:
        """Copy one validated dense equation block into the arena."""
        count = rows.shape[0]
        self._ensure(self._count + count)
        stop = self._count + count
        self._rows[self._count : stop] = rows
        self._rhs[self._count : stop] = rhs
        self._weights[self._count : stop] = weights
        self._prior[self._count : stop] = prior
        self._count = stop

    def append_sparse(
        self,
        columns: np.ndarray,
        values: np.ndarray,
        row_lengths: np.ndarray,
        rhs: np.ndarray,
        weights: np.ndarray,
        prior: bool,
    ) -> None:
        """Copy one validated sparse equation block into the arena."""
        count = row_lengths.shape[0]
        self._ensure(self._count + count)
        self._ensure_entries(self._entry_count + columns.shape[0])
        stop = self._count + count
        self._row_lengths[self._count : stop] = row_lengths
        self._rhs[self._count : stop] = rhs
        self._weights[self._count : stop] = weights
        self._prior[self._count : stop] = prior
        entry_stop = self._entry_count + columns.shape[0]
        self._flat_columns[self._entry_count : entry_stop] = columns
        self._flat_values[self._entry_count : entry_stop] = values
        self._count = stop
        self._entry_count = entry_stop

    @property
    def num_equations(self) -> int:
        """Rows appended since the last :meth:`begin`."""
        return self._count

    def matrix_view(self) -> np.ndarray:
        """The live system's coefficient rows (a view into the arena)."""
        return self._rows[: self._count]

    def rhs_view(self) -> np.ndarray:
        """The live system's right-hand sides (a view into the arena)."""
        return self._rhs[: self._count]

    def weights_view(self) -> np.ndarray:
        """The live system's equation weights (a view into the arena)."""
        return self._weights[: self._count]

    def prior_view(self) -> np.ndarray:
        """The live system's prior-row mask (a view into the arena)."""
        return self._prior[: self._count]

    def sparse_views(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """The live sparse system's ``(columns, values, row_lengths)``."""
        return (
            self._flat_columns[: self._entry_count],
            self._flat_values[: self._entry_count],
            self._row_lengths[: self._count],
        )


@dataclass
class Solution:
    """Solved unknowns with identifiability flags.

    Attributes
    ----------
    values:
        Estimated unknowns (here: log "all-good" probabilities), length n.
        Unidentifiable coordinates carry the min-norm solution value and
        must be interpreted through ``identifiable``.
    identifiable:
        Boolean mask, length n; true where the system pins the unknown down
        uniquely.
    rank:
        Rank of the solved system.
    residual:
        Root-mean-square equation residual (diagnostic; large residuals mean
        the model assumptions are violated or T is too small).
    """

    values: np.ndarray
    identifiable: np.ndarray
    rank: int
    residual: float


class EquationSystem:
    """A growing linear system ``A x = b`` over ``num_unknowns`` unknowns.

    Equations may carry *weights* (generalised least squares): an equation
    whose right-hand side is a noisy estimate with standard deviation
    ``sigma`` should be weighted ``1/sigma`` so that precise equations
    dominate the solve. Weights scale rows and right-hand sides together, so
    the row space — and therefore identifiability — is unchanged.

    Equations are stored as blocks: :meth:`add` appends a 1-row block,
    :meth:`add_batch` appends a whole matrix at once (no per-row Python
    overhead), which is the entry point the batched estimators use. With a
    :class:`SystemWorkspace`, blocks land in the workspace's reusable
    arena instead (one live system per workspace at a time — beginning a
    newer system there invalidates this one's matrix views).

    With ``sparse=True`` rows are stored as ``(column, value)`` entry runs
    (:meth:`add_sparse_batch`) instead of width-``num_unknowns`` vectors:
    the storage cost is the number of nonzeros, not rows x unknowns. The
    solve deduplicates on the sparse keys, densifies *only* the unique
    rows, and then runs the identical QR/NNLS path — solutions are
    bit-identical to the dense storage mode for the same equations.
    """

    def __init__(
        self,
        num_unknowns: int,
        workspace: Optional[SystemWorkspace] = None,
        sparse: bool = False,
    ) -> None:
        if num_unknowns < 0:
            raise EstimationError("num_unknowns must be non-negative")
        self.num_unknowns = num_unknowns
        self.sparse = sparse
        self._workspace = workspace
        self._generation = workspace.begin(num_unknowns, sparse) if workspace else 0
        self._blocks: List[np.ndarray] = []
        self._rhs_blocks: List[np.ndarray] = []
        self._weight_blocks: List[np.ndarray] = []
        self._prior_blocks: List[np.ndarray] = []
        # Sparse-mode blocks (workspace-less systems only).
        self._column_blocks: List[np.ndarray] = []
        self._value_blocks: List[np.ndarray] = []
        self._length_blocks: List[np.ndarray] = []
        self._num_equations = 0

    def __len__(self) -> int:
        return self._num_equations

    def add(
        self, row: np.ndarray, rhs: float, weight: float = 1.0, prior: bool = False
    ) -> None:
        """Append one equation ``row . x = rhs`` with precision ``weight``.

        Equations flagged ``prior`` are regularisers, not measurements: they
        participate in the least-squares solve (pulling underdetermined
        directions toward the prior) but are excluded from rank and
        identifiability accounting — an unknown only counts as identifiable
        when the *data* pins it down.
        """
        row = np.asarray(row, dtype=float).reshape(-1)
        self.add_batch(
            row[None, :],
            np.array([float(rhs)]),
            np.array([float(weight)]),
            prior=prior,
        )

    def add_batch(
        self,
        rows: np.ndarray,
        rhs: np.ndarray,
        weights: Optional[np.ndarray] = None,
        prior: bool = False,
    ) -> None:
        """Append a block of equations in one call.

        Parameters
        ----------
        rows:
            Coefficient matrix, shape (k, num_unknowns).
        rhs:
            Right-hand sides, shape (k,).
        weights:
            Per-equation precisions, shape (k,); defaults to 1.
        prior:
            Marks the whole block as regulariser rows (see :meth:`add`).
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        rhs = np.asarray(rhs, dtype=float).reshape(-1)
        if rows.shape[1] != self.num_unknowns:
            raise EstimationError(
                f"row has {rows.shape[1]} coefficients, expected {self.num_unknowns}"
            )
        if rows.shape[0] != rhs.shape[0]:
            raise EstimationError("rows and rhs lengths differ")
        if rows.shape[0] == 0:
            return
        if weights is None:
            weights = np.ones(rows.shape[0])
        else:
            weights = np.asarray(weights, dtype=float).reshape(-1)
            if weights.shape[0] != rows.shape[0]:
                raise EstimationError("rows and weights lengths differ")
        if np.any(weights <= 0.0):
            raise EstimationError("equation weight must be positive")
        if self.sparse:
            # Dense rows entering a sparse system (e.g. the prior rows the
            # estimators build positionally) are converted to entry runs;
            # np.nonzero walks row-major, so columns come out ascending
            # per row — already canonical for duplicate grouping.
            row_ids, columns = np.nonzero(rows)
            self._append_sparse(
                columns.astype(np.int64),
                rows[row_ids, columns],
                np.bincount(row_ids, minlength=rows.shape[0]).astype(np.int64),
                rhs,
                weights,
                prior,
            )
            return
        if self._workspace is not None:
            self._arena().append(rows, rhs, weights, bool(prior))
        else:
            self._blocks.append(rows)
            self._rhs_blocks.append(rhs)
            self._weight_blocks.append(weights)
            self._prior_blocks.append(np.full(rows.shape[0], bool(prior)))
        self._num_equations += rows.shape[0]

    def add_sparse_batch(
        self,
        columns: np.ndarray,
        row_lengths: np.ndarray,
        rhs: np.ndarray,
        weights: Optional[np.ndarray] = None,
        values: Optional[np.ndarray] = None,
        prior: bool = False,
    ) -> None:
        """Append a block of sparse equations in one call.

        Parameters
        ----------
        columns:
            Flat array concatenating each row's unknown indices. Indices
            must be distinct within a row (any order; rows are
            canonicalised to ascending column order internally so that
            duplicate detection matches the dense storage mode exactly).
        row_lengths:
            Entries per row, shape (k,); ``sum(row_lengths) == len(columns)``.
        rhs:
            Right-hand sides, shape (k,).
        weights:
            Per-equation precisions, shape (k,); defaults to 1.
        values:
            Per-entry coefficients aligned with ``columns``; defaults to 1
            (the 0/1 Eq. 1 rows).
        prior:
            Marks the whole block as regulariser rows (see :meth:`add`).
        """
        if not self.sparse:
            raise EstimationError("add_sparse_batch requires a sparse system")
        columns = np.asarray(columns, dtype=np.int64).reshape(-1)
        row_lengths = np.asarray(row_lengths, dtype=np.int64).reshape(-1)
        rhs = np.asarray(rhs, dtype=float).reshape(-1)
        if row_lengths.shape[0] != rhs.shape[0]:
            raise EstimationError("row_lengths and rhs lengths differ")
        if int(row_lengths.sum()) != columns.shape[0]:
            raise EstimationError("row_lengths do not sum to len(columns)")
        if row_lengths.shape[0] == 0:
            return
        if columns.size and (
            columns.min() < 0 or columns.max() >= self.num_unknowns
        ):
            raise EstimationError("sparse column index out of range")
        if values is None:
            values = np.ones(columns.shape[0])
        else:
            values = np.asarray(values, dtype=float).reshape(-1)
            if values.shape[0] != columns.shape[0]:
                raise EstimationError("columns and values lengths differ")
        if weights is None:
            weights = np.ones(row_lengths.shape[0])
        else:
            weights = np.asarray(weights, dtype=float).reshape(-1)
            if weights.shape[0] != row_lengths.shape[0]:
                raise EstimationError("rows and weights lengths differ")
        if np.any(weights <= 0.0):
            raise EstimationError("equation weight must be positive")
        if columns.size:
            # Canonical ascending-column order per row: makes the sparse
            # duplicate keys agree with dense byte-level row equality.
            row_ids = np.repeat(np.arange(row_lengths.shape[0]), row_lengths)
            order = np.lexsort((columns, row_ids))
            columns = columns[order]
            values = values[order]
        self._append_sparse(columns, values, row_lengths, rhs, weights, prior)

    def _append_sparse(
        self,
        columns: np.ndarray,
        values: np.ndarray,
        row_lengths: np.ndarray,
        rhs: np.ndarray,
        weights: np.ndarray,
        prior: bool,
    ) -> None:
        if self._workspace is not None:
            self._arena().append_sparse(
                columns, values, row_lengths, rhs, weights, bool(prior)
            )
        else:
            self._column_blocks.append(columns)
            self._value_blocks.append(values)
            self._length_blocks.append(row_lengths)
            self._rhs_blocks.append(rhs)
            self._weight_blocks.append(weights)
            self._prior_blocks.append(np.full(row_lengths.shape[0], bool(prior)))
        self._num_equations += row_lengths.shape[0]

    def _sparse_data(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """The sparse system's ``(columns, values, row_lengths)`` arrays."""
        if self._workspace is not None:
            return self._arena().sparse_views()
        if not self._length_blocks:
            empty = np.zeros(0, dtype=np.int64)
            return empty, np.zeros(0), empty
        return (
            np.concatenate(self._column_blocks),
            np.concatenate(self._value_blocks),
            np.concatenate(self._length_blocks),
        )

    def _arena(self) -> SystemWorkspace:
        """The backing workspace, after checking this system still owns it."""
        if self._workspace.generation != self._generation:
            raise EstimationError(
                "workspace was recycled by a newer EquationSystem; "
                "this system's equations are gone"
            )
        return self._workspace

    @property
    def matrix(self) -> np.ndarray:
        """The system matrix A, shape (num_equations, num_unknowns).

        In sparse storage mode this *materialises* the full dense matrix
        (diagnostics/tests only — the solve never does this).
        """
        if self.sparse:
            columns, values, row_lengths = self._sparse_data()
            matrix = np.zeros((row_lengths.shape[0], self.num_unknowns))
            if columns.size:
                row_ids = np.repeat(np.arange(row_lengths.shape[0]), row_lengths)
                matrix[row_ids, columns] = values
            return matrix
        if self._workspace is not None:
            return self._arena().matrix_view()
        if not self._blocks:
            return np.zeros((0, self.num_unknowns))
        return np.concatenate(self._blocks, axis=0)

    @property
    def storage_nbytes(self) -> int:
        """Logical bytes of the stored equations (matrix + rhs/weights/prior).

        Dense storage pays ``num_equations x num_unknowns`` float64 cells
        regardless of sparsity; sparse storage pays one ``(column, value)``
        pair per nonzero plus a per-row length. Solve-time transients are
        deliberately excluded: the solver densifies *unique* rows in both
        modes, so transient peaks are shared while storage is where the
        sparse path wins — the ``scaling-topology`` study gates on this.
        """
        per_row = self._num_equations * (8 + 8 + 1)  # rhs, weight, prior
        if self.sparse:
            if self._workspace is not None:
                columns, _, _ = self._arena().sparse_views()
                entries = int(columns.shape[0])
            else:
                entries = sum(int(b.shape[0]) for b in self._column_blocks)
            return entries * (8 + 8) + self._num_equations * 8 + per_row
        return self._num_equations * self.num_unknowns * 8 + per_row

    @property
    def rhs(self) -> np.ndarray:
        """The right-hand side b, shape (num_equations,)."""
        if self._workspace is not None:
            return self._arena().rhs_view()
        if not self._rhs_blocks:
            return np.zeros(0)
        return np.concatenate(self._rhs_blocks)

    @property
    def weights(self) -> np.ndarray:
        """Per-equation precisions, shape (num_equations,)."""
        if self._workspace is not None:
            return self._arena().weights_view()
        if not self._weight_blocks:
            return np.zeros(0)
        return np.concatenate(self._weight_blocks)

    @property
    def prior_mask(self) -> np.ndarray:
        """Boolean mask of regulariser rows, shape (num_equations,)."""
        if self._workspace is not None:
            return self._arena().prior_view()
        if not self._prior_blocks:
            return np.zeros(0, dtype=bool)
        return np.concatenate(self._prior_blocks)

    @staticmethod
    def _solve_bounded(
        matrix: np.ndarray, rhs: np.ndarray, upper_bound: float
    ) -> np.ndarray:
        """Least squares subject to ``x_i <= upper_bound`` for all i.

        Substituting ``x = upper_bound + d`` with ``d <= 0`` turns the
        problem into non-negative least squares on ``-d``, which scipy
        solves with the compiled Lawson–Hanson active-set method — far
        faster than the generic bounded solvers on these systems. Falls
        back to ``lsq_linear`` if NNLS hits its iteration limit.
        """
        shifted_rhs = rhs - upper_bound * matrix.sum(axis=1)
        try:
            negated, _ = nnls(-matrix, shifted_rhs)
            return upper_bound - negated
        except RuntimeError:
            outcome = lsq_linear(
                matrix,
                rhs,
                bounds=(-np.inf, upper_bound),
                method="bvls" if matrix.shape[0] >= matrix.shape[1] else "trf",
            )
            return outcome.x

    def solve(
        self, tol: float = DEFAULT_TOL, upper_bound: Optional[float] = None
    ) -> Solution:
        """Solve by (optionally bounded) least squares and classify
        identifiability.

        Parameters
        ----------
        upper_bound:
            When given, solve subject to ``x_i <= upper_bound`` for every
            unknown. The log-domain probability systems use 0 (probabilities
            cannot exceed 1); without the bound, noise can push one
            unknown's log-probability positive and dump the compensating
            mass on another, badly misattributing congestion.

        Raises
        ------
        EstimationError
            If the system has no equations but unknowns exist.
        """
        if self.num_unknowns == 0:
            return Solution(
                values=np.zeros(0),
                identifiable=np.zeros(0, dtype=bool),
                rank=0,
                residual=0.0,
            )
        if self._num_equations == 0:
            raise EstimationError("cannot solve an empty equation system")
        if self.sparse:
            return self._solve_sparse(tol, upper_bound)
        matrix = self.matrix
        rhs = self.rhs
        weights = self.weights
        # Equations from different path sets frequently share a coefficient
        # row; a duplicate group {(r, b_i, w_i)} contributes
        # ``sum w_i^2 (r.x - b_i)^2 = W^2 (r.x - b_bar)^2 + const`` with
        # ``W^2 = sum w_i^2`` and ``b_bar`` the precision-weighted mean, so
        # merging duplicates leaves the minimiser set exactly unchanged
        # while shrinking the factorizations below.
        first_of_group, inverse = _group_duplicate_rows(matrix)
        unique_rows = matrix[first_of_group]
        if unique_rows.shape[0] < matrix.shape[0]:
            precision = weights * weights
            group_precision = np.bincount(inverse, weights=precision)
            group_rhs = (
                np.bincount(inverse, weights=precision * rhs) / group_precision
            )
            group_weight = np.sqrt(group_precision)
            weighted_matrix = unique_rows * group_weight[:, None]
            weighted_rhs = group_rhs * group_weight
        else:
            weighted_matrix = matrix * weights[:, None]
            weighted_rhs = rhs * weights
        # Compress the least-squares problem through a thin QR: with
        # A = Q R, ``||A x - b|| = ||R x - Q' b||`` up to a constant, so
        # every solver below works on the (n, n) triangle instead of the
        # (num_equations, n) stack. Minimiser sets are identical.
        q_factor, r_factor = np.linalg.qr(weighted_matrix)
        compressed_rhs = q_factor.T @ weighted_rhs
        if upper_bound is None:
            values, _, _, _ = np.linalg.lstsq(r_factor, compressed_rhs, rcond=None)
        else:
            # NNLS solves the bounded problem exactly whether or not the
            # bound binds, so no unconstrained pre-solve is needed (on the
            # log-probability systems the bound almost always binds).
            values = self._solve_bounded(r_factor, compressed_rhs, upper_bound)
        data_mask = ~self.prior_mask
        data_matrix = matrix[data_mask]
        data_rhs = rhs[data_mask]
        if data_matrix.shape[0] == 0:
            raise EstimationError("cannot solve a system with only prior equations")
        # Rank and null space of the data rows, via SVD of their QR
        # triangle: A'A = R'R, so singular values and right singular
        # vectors coincide while the decomposition runs on (n, n).
        # Duplicate rows don't change the row space, so only one
        # representative per group enters the factorization — the groups
        # come from the pass above restricted to data rows (rows within a
        # group are identical, so any representative works).
        data_groups = np.unique(inverse[data_mask])
        data_unique = matrix[first_of_group[data_groups]]
        data_triangle = np.linalg.qr(data_unique, mode="r")
        _, singular_values, vt = np.linalg.svd(data_triangle, full_matrices=True)
        if singular_values.size and singular_values.max() > 0:
            cutoff = tol * max(data_unique.shape) * singular_values.max()
            rank = int((singular_values > cutoff).sum())
        else:
            rank = 0
        basis = vt[rank:].T
        if basis.shape[1] == 0:
            identifiable = np.ones(self.num_unknowns, dtype=bool)
        else:
            # Unknown i is pinned down iff every null vector has a zero
            # i-th coordinate.
            identifiable = np.abs(basis).max(axis=1) <= 1e-7
        fitted = data_matrix @ values
        residual = (
            float(np.sqrt(np.mean((fitted - data_rhs) ** 2)))
            if len(data_rhs)
            else 0.0
        )
        return Solution(
            values=values,
            identifiable=identifiable,
            rank=rank,
            residual=residual,
        )

    def _solve_sparse(
        self, tol: float, upper_bound: Optional[float]
    ) -> Solution:
        """The sparse-storage solve: dedup on entry runs, densify uniques.

        Mirrors the dense :meth:`solve` step for step — same duplicate
        grouping (canonical entry runs make the sparse keys agree with
        dense byte equality), same grouped-precision merge, same QR/NNLS
        and identifiability factorizations on the same float inputs — so
        solutions are bit-identical while only the *unique* rows ever
        densify to ``num_unknowns`` width.
        """
        columns, entry_values, row_lengths = self._sparse_data()
        rhs = self.rhs
        weights = self.weights
        num_rows = row_lengths.shape[0]
        indptr = np.zeros(num_rows + 1, dtype=np.int64)
        np.cumsum(row_lengths, out=indptr[1:])
        groups: dict = {}
        first_of_group_list: List[int] = []
        inverse = np.empty(num_rows, dtype=np.intp)
        for i in range(num_rows):
            start, stop = indptr[i], indptr[i + 1]
            key = (
                columns[start:stop].tobytes(),
                entry_values[start:stop].tobytes(),
            )
            group = groups.get(key)
            if group is None:
                group = len(groups)
                groups[key] = group
                first_of_group_list.append(i)
            inverse[i] = group
        first_of_group = np.asarray(first_of_group_list, dtype=np.intp)
        num_groups = first_of_group.shape[0]
        unique_rows = np.zeros((num_groups, self.num_unknowns))
        for group, i in enumerate(first_of_group):
            start, stop = indptr[i], indptr[i + 1]
            unique_rows[group, columns[start:stop]] = entry_values[start:stop]
        if num_groups < num_rows:
            precision = weights * weights
            group_precision = np.bincount(inverse, weights=precision)
            group_rhs = (
                np.bincount(inverse, weights=precision * rhs) / group_precision
            )
            group_weight = np.sqrt(group_precision)
            weighted_matrix = unique_rows * group_weight[:, None]
            weighted_rhs = group_rhs * group_weight
        else:
            weighted_matrix = unique_rows * weights[:, None]
            weighted_rhs = rhs * weights
        q_factor, r_factor = np.linalg.qr(weighted_matrix)
        compressed_rhs = q_factor.T @ weighted_rhs
        if upper_bound is None:
            values, _, _, _ = np.linalg.lstsq(r_factor, compressed_rhs, rcond=None)
        else:
            values = self._solve_bounded(r_factor, compressed_rhs, upper_bound)
        data_mask = ~self.prior_mask
        data_rhs = rhs[data_mask]
        if data_rhs.shape[0] == 0:
            raise EstimationError("cannot solve a system with only prior equations")
        data_groups = np.unique(inverse[data_mask])
        data_unique = unique_rows[data_groups]
        data_triangle = np.linalg.qr(data_unique, mode="r")
        _, singular_values, vt = np.linalg.svd(data_triangle, full_matrices=True)
        if singular_values.size and singular_values.max() > 0:
            cutoff = tol * max(data_unique.shape) * singular_values.max()
            rank = int((singular_values > cutoff).sum())
        else:
            rank = 0
        basis = vt[rank:].T
        if basis.shape[1] == 0:
            identifiable = np.ones(self.num_unknowns, dtype=bool)
        else:
            identifiable = np.abs(basis).max(axis=1) <= 1e-7
        # One matvec over the unique data rows; every duplicate row's
        # fitted value equals its representative's (identical row bytes),
        # so scattering through the group ids reproduces the dense
        # per-row residual exactly.
        fitted_unique = data_unique @ values
        fitted = fitted_unique[np.searchsorted(data_groups, inverse[data_mask])]
        residual = float(np.sqrt(np.mean((fitted - data_rhs) ** 2)))
        return Solution(
            values=values,
            identifiable=identifiable,
            rank=rank,
            residual=residual,
        )
