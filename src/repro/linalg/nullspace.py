"""Null spaces and the incremental update of Algorithm 2.

Algorithm 1 maintains a matrix ``N`` whose columns span the null space of the
growing system matrix ``R``. Each time a row ``r`` with ``||r N|| > 0`` is
appended to ``R``, Algorithm 2 shrinks the null space by one dimension:

    N' = (I_n - (N_p r) / (r N_p)) N_rest

where ``N_p`` is a pivot column of ``N`` with ``r N_p != 0`` (the paper uses
the first column; we pivot on the largest ``|r N_j|`` for numerical
stability — the spanned subspace is identical) and ``N_rest`` the remaining
columns. Every new column ``n'_k = n_k - N_p (r n_k) / (r N_p)`` satisfies
``r n'_k = 0`` while remaining in the old null space, so the update is exact.
"""

from __future__ import annotations


import numpy as np

#: Default numerical tolerance for rank decisions.
DEFAULT_TOL = 1e-9


def null_space(matrix: np.ndarray, tol: float = DEFAULT_TOL) -> np.ndarray:
    """Return an orthonormal basis of the null space of ``matrix``.

    The result has shape (num_columns, nullity); an empty second dimension
    means the matrix has full column rank.
    """
    matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
    if matrix.size == 0 or matrix.shape[0] == 0:
        return np.eye(matrix.shape[1])
    _, singular_values, vt = np.linalg.svd(matrix, full_matrices=True)
    cutoff = tol * max(matrix.shape)
    num_nonzero = int((singular_values > cutoff * singular_values.max()).sum()) if (
        singular_values.size and singular_values.max() > 0
    ) else 0
    return vt[num_nonzero:].T.copy()


def rank(matrix: np.ndarray, tol: float = DEFAULT_TOL) -> int:
    """Numerical rank of ``matrix`` (0 for empty matrices)."""
    matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
    if matrix.size == 0:
        return 0
    return int(np.linalg.matrix_rank(matrix, tol=None))


def rank_increases(
    null_basis: np.ndarray, row: np.ndarray, tol: float = DEFAULT_TOL
) -> bool:
    """Whether appending ``row`` to the system increases its rank.

    Equivalent to the paper's test ``||r x N|| > 0`` (Algorithm 1 line 13):
    ``row`` adds rank iff it is not orthogonal to the current null space.
    """
    if null_basis.shape[1] == 0:
        return False
    projection = np.asarray(row, dtype=float) @ null_basis
    return bool(np.linalg.norm(projection) > tol)


def null_space_update(
    null_basis: np.ndarray, row: np.ndarray, tol: float = DEFAULT_TOL
) -> np.ndarray:
    """Algorithm 2: shrink ``null_basis`` by the constraint ``row``.

    Parameters
    ----------
    null_basis:
        Matrix N of shape (n, p) whose columns span the current null space.
    row:
        The newly-added equation row ``r`` (length n). If ``r`` is
        orthogonal to the null space (adds no rank), N is returned
        unchanged — this mirrors Algorithm 1, which only calls the update
        after the ``||r N|| > 0`` test succeeds (the ``r = 0`` no-op case).

    Returns
    -------
    numpy.ndarray
        A (n, p-1) matrix whose columns span the null space of the system
        extended with ``row``. Columns are re-orthonormalised to keep
        repeated updates numerically stable.
    """
    row = np.asarray(row, dtype=float).reshape(-1)
    if null_basis.shape[1] == 0:
        return null_basis
    projection = row @ null_basis
    pivot = int(np.argmax(np.abs(projection)))
    if abs(projection[pivot]) <= tol:
        return null_basis
    pivot_column = null_basis[:, pivot : pivot + 1]
    rest = np.delete(null_basis, pivot, axis=1)
    if rest.shape[1] == 0:
        return rest
    updated = rest - pivot_column @ ((row @ rest)[None, :] / projection[pivot])
    # Re-orthonormalise: repeated rank-one updates degrade conditioning.
    q, r_factor = np.linalg.qr(updated)
    keep = np.abs(np.diag(r_factor)) > tol
    return q[:, keep]
