"""Linear-algebra substrate for the probability-computation algorithms.

``nullspace`` implements null-space computation (SVD) and the paper's
Algorithm 2 — the *incremental* null-space update that makes Algorithm 1
practical ("computing the null space of a matrix with thousands of rows ...
at every iteration would render the algorithm practically useless").

``system`` provides the growing equation-system container used by the
estimators: log-domain Eq. 1 equations, least-squares solving, and
per-unknown identifiability classification.
"""

from repro.linalg.nullspace import (
    null_space,
    null_space_update,
    rank,
    rank_increases,
)
from repro.linalg.system import EquationSystem, Solution

__all__ = [
    "null_space",
    "null_space_update",
    "rank",
    "rank_increases",
    "EquationSystem",
    "Solution",
]
