"""Word-aligned ring storage for live probe rounds.

The streaming monitor's observation store: probe rounds are appended as
boolean ``(rounds, paths)`` blocks and packed straight into the same
``uint64`` word layout the batch estimation stack runs on
(:mod:`repro.model.packed`), so a windowed refit over the ring is exactly as
fast as one over an offline campaign — and *bit-identical* to it.

Design points:

* **Amortised O(words) append** — an incoming block is packed once (with a
  bit-offset merge into the partially-filled tail word) and written in
  place; no re-pack of the retained horizon ever happens.
* **Bounded retention** — the buffer keeps at most ``retention`` intervals
  (rounded up to whole words) addressable; older rounds are evicted in
  whole-word steps. Evicted-but-not-yet-reclaimed words linger until the
  physical store fills, at which point the retained columns are compacted
  into a *fresh* allocation — so window views handed out earlier keep
  referencing the old, now-immutable storage instead of being silently
  rewritten.
* **Zero-copy windows** — a word-aligned window (both ends multiples of 64
  intervals) is served as a column *view* of the word store wrapped in a
  :class:`~repro.model.packed.PackedBackend`; unaligned windows pay a copy
  of their own span only, via the same slicing rules as
  :meth:`ObservationMatrix.slice_intervals`. Either way the result is an
  immutable snapshot — a window never shares the partially-filled tail
  word the writer is still filling.

Interval indices are **absolute** (round 0 is the first round ever
ingested); the buffer tracks which suffix of the stream it still retains.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import EstimationError
from repro.model.packed import WORD_BITS, PackedBackend, pack_bool_matrix
from repro.model.status import ObservationMatrix


class PackedRingBuffer:
    """Append-only packed observation ring with bounded retention.

    Parameters
    ----------
    num_paths:
        Width of every appended block (monitored paths).
    retention:
        Maximum number of trailing intervals kept addressable. Rounded up
        to a whole number of 64-interval words; eviction advances the
        retained window in whole words, so ``first_interval`` is always a
        multiple of 64.
    """

    def __init__(self, num_paths: int, retention: int = 1 << 16) -> None:
        if num_paths < 1:
            raise EstimationError("PackedRingBuffer needs at least one path")
        if retention < 1:
            raise EstimationError("retention must be >= 1")
        self._num_paths = int(num_paths)
        self._retention_words = -(-int(retention) // WORD_BITS)
        # Physical store twice the retention (plus slack words for rounding
        # and a partially-filled tail) so compaction runs at most once per
        # retention's worth of appended words — amortised O(1) per word.
        self._phys_words = 2 * self._retention_words + 2
        self._words = np.zeros((self._num_paths, self._phys_words), dtype=np.uint64)
        #: Absolute interval of bit 0 of physical word column 0 (mult. of 64).
        self._origin = 0
        #: Oldest retained (addressable) absolute interval (mult. of 64).
        self._first = 0
        #: Absolute index of the next interval to be written.
        self._end = 0
        #: Total compactions performed (diagnostic).
        self.compactions = 0

    # ------------------------------------------------------------------
    @property
    def num_paths(self) -> int:
        return self._num_paths

    @property
    def retention(self) -> int:
        """Retention bound in intervals (word-rounded)."""
        return self._retention_words * WORD_BITS

    @property
    def first_interval(self) -> int:
        """Oldest retained absolute interval index."""
        return self._first

    @property
    def end_interval(self) -> int:
        """One past the newest ingested absolute interval index."""
        return self._end

    @property
    def num_retained(self) -> int:
        """Currently addressable intervals."""
        return self._end - self._first

    def __len__(self) -> int:
        return self.num_retained

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def append(self, chunk: np.ndarray) -> None:
        """Append one boolean ``(rounds, num_paths)`` block of probe rounds."""
        chunk = np.asarray(chunk, dtype=bool)
        if chunk.ndim != 2 or chunk.shape[1] != self._num_paths:
            raise EstimationError(
                f"append expects a (rounds, {self._num_paths}) boolean block"
            )
        # Blocks larger than one retention's worth are split so a single
        # append can never outgrow the physical store.
        max_block = self.retention
        for start in range(0, chunk.shape[0], max_block):
            self._append_block(chunk[start : start + max_block])

    def _append_block(self, chunk: np.ndarray) -> None:
        rounds = chunk.shape[0]
        if rounds == 0:
            return
        words_after = -(-(self._end + rounds - self._origin) // WORD_BITS)
        if words_after > self._phys_words:
            self._compact(incoming=rounds)
        head = self._end - self._origin
        word_index, bit_offset = divmod(head, WORD_BITS)
        # Pack the block shifted by the tail word's fill level, then merge:
        # OR into the partial tail word, plain writes for the rest. The
        # (bit_offset + rounds, paths) staging matrix is the only dense
        # intermediate and its size is independent of the horizon; the
        # packing itself is the kernel layout's own pack_bool_matrix.
        staged = np.zeros((bit_offset + rounds, self._num_paths), dtype=bool)
        staged[bit_offset:] = chunk
        new_words = pack_bool_matrix(staged)
        num_new_words = new_words.shape[1]
        self._words[:, word_index] |= new_words[:, 0]
        if num_new_words > 1:
            self._words[
                :, word_index + 1 : word_index + num_new_words
            ] = new_words[:, 1:]
        self._end += rounds
        # Retention bookkeeping only — data moves exclusively in _compact.
        overflow = self.num_retained - self.retention
        if overflow > 0:
            self._first += (-(-overflow // WORD_BITS)) * WORD_BITS

    def _compact(self, incoming: int) -> None:
        """Move retained words into a fresh allocation, dropping evicted ones.

        A fresh array (rather than an in-place shift) keeps previously
        handed-out zero-copy window views valid: they alias the old
        storage, which is never written again.
        """
        # Evict prospectively so the incoming block fits under retention;
        # round *down* to a word so nothing un-ingested is ever dropped.
        target = self._end + incoming - self.retention
        new_first = max(self._first, (target // WORD_BITS) * WORD_BITS)
        drop_words = (new_first - self._origin) // WORD_BITS
        used_words = -(-(self._end - self._origin) // WORD_BITS)
        fresh = np.zeros_like(self._words)
        fresh[:, : used_words - drop_words] = self._words[:, drop_words:used_words]
        self._words = fresh
        self._origin = new_first
        self._first = new_first
        self.compactions += 1

    # ------------------------------------------------------------------
    # Window views
    # ------------------------------------------------------------------
    def window(self, start: int, stop: int) -> ObservationMatrix:
        """The absolute interval window ``[start, stop)`` as observations.

        Every window is an **immutable snapshot**: fully word-aligned
        windows are zero-copy views of the ring's word store (compaction
        allocates fresh storage, so they stay valid forever), and windows
        with a partially-filled boundary word copy their own span only —
        never sharing the live tail word the writer still ORs bits into,
        which would silently corrupt the backend's zero-padding invariant
        on the next append.

        Raises
        ------
        EstimationError
            When ``start`` has been evicted or ``stop`` not yet ingested.
        """
        if start < self._first:
            raise EstimationError(
                f"window start {start} evicted (oldest retained: {self._first})"
            )
        if not start <= stop <= self._end:
            raise EstimationError(
                f"window [{start}, {stop}) outside ingested range "
                f"[{self._first}, {self._end})"
            )
        rel_start = start - self._origin
        rel_stop = stop - self._origin
        used_words = -(-(self._end - self._origin) // WORD_BITS)
        if rel_start % WORD_BITS == 0 and rel_stop % WORD_BITS == 0:
            first = rel_start // WORD_BITS
            last = rel_stop // WORD_BITS
            backend = PackedBackend(self._words[:, first:last], stop - start)
            return ObservationMatrix.from_backend(backend)
        whole = PackedBackend(self._words[:, :used_words], self._end - self._origin)
        return ObservationMatrix.from_backend(
            whole.slice_intervals(rel_start, rel_stop)
        )

    def view(self) -> ObservationMatrix:
        """The full retained horizon as observations (zero-copy)."""
        return self.window(self._first, self._end)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> Tuple[np.ndarray, int, int]:
        """Copy of the retained words plus ``(first_interval, end_interval)``.

        The words are trimmed to the retained span and detached from the
        live store, ready for serialization.
        """
        keep_lo = (self._first - self._origin) // WORD_BITS
        used_words = -(-(self._end - self._origin) // WORD_BITS)
        return self._words[:, keep_lo:used_words].copy(), self._first, self._end

    @classmethod
    def restore(
        cls,
        words: np.ndarray,
        first_interval: int,
        end_interval: int,
        retention: int,
    ) -> "PackedRingBuffer":
        """Rebuild a ring from a :meth:`snapshot`."""
        words = np.asarray(words, dtype=np.uint64)
        if words.ndim != 2:
            raise EstimationError("snapshot words must be 2-D (paths, words)")
        if first_interval % WORD_BITS != 0:
            raise EstimationError("snapshot first_interval must be word-aligned")
        retained = end_interval - first_interval
        if retained < 0 or -(-retained // WORD_BITS) > words.shape[1]:
            raise EstimationError("snapshot words shorter than claimed span")
        ring = cls(num_paths=words.shape[0], retention=retention)
        span_words = -(-retained // WORD_BITS)
        if span_words > ring._phys_words:
            raise EstimationError("snapshot exceeds the ring's physical store")
        ring._words[:, :span_words] = words[:, :span_words]
        ring._origin = int(first_interval)
        ring._first = int(first_interval)
        ring._end = int(end_interval)
        overflow = ring.num_retained - ring.retention
        if overflow > 0:
            ring._first += (-(-overflow // WORD_BITS)) * WORD_BITS
        return ring
