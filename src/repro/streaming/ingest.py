"""Pluggable observation sources feeding the streaming engine.

Every source yields boolean ``(rounds, num_paths)`` blocks — the exact
shape :meth:`StreamingEstimator.ingest` consumes — so live probing,
recorded campaigns, and in-memory replays are interchangeable:

* :class:`ProberSource` — live measurement: drives a
  :class:`~repro.simulation.probing.StreamingProber` (ground truth +
  optional packet-level prober) round by round;
* :class:`MatrixSource` — replay of an in-memory horizon (an
  :class:`~repro.model.status.ObservationMatrix` or dense boolean matrix)
  in fixed-size chunks, the bridge from offline campaigns to the engine;
* :class:`NDJSONTraceSource` — replay of a recorded campaign from
  newline-delimited JSON, the on-disk interchange format written by
  :func:`write_ndjson_trace`.

The NDJSON schema is one header line followed by one line per probe round,
congested paths as sparse index lists (path statuses are overwhelmingly
good in the paper's scenarios, so sparse rounds are compact)::

    {"type": "header", "num_paths": 900}
    {"type": "round", "congested": [12, 407]}
    {"type": "round", "congested": []}
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

import numpy as np

from repro.exceptions import ScenarioError
from repro.model.status import ObservationMatrix
from repro.simulation.probing import StreamingProber
from repro.util.rng import RandomState


class ObservationSource(ABC):
    """A stream of probe-round blocks with a fixed path width."""

    @property
    @abstractmethod
    def num_paths(self) -> int:
        """Width of every yielded block."""

    @abstractmethod
    def chunks(self) -> Iterator[np.ndarray]:
        """Yield boolean ``(rounds, num_paths)`` blocks until exhausted."""


class ProberSource(ObservationSource):
    """Live measurement source wrapping a :class:`StreamingProber`.

    Parameters
    ----------
    prober:
        The configured streaming prober (network, ground truth, monitor).
    num_intervals:
        Stop after this many rounds; ``None`` streams forever.
    random_state:
        Seed/generator for ground-truth sampling and packet probing.
    """

    def __init__(
        self,
        prober: StreamingProber,
        num_intervals: Optional[int] = None,
        random_state: RandomState = None,
    ) -> None:
        self.prober = prober
        self.num_intervals = num_intervals
        self.random_state = random_state

    @property
    def num_paths(self) -> int:
        return self.prober.network.num_paths

    def chunks(self) -> Iterator[np.ndarray]:
        return self.prober.rounds(self.num_intervals, self.random_state)


class MatrixSource(ObservationSource):
    """Replay an in-memory horizon in fixed-size chunks.

    A packed :class:`ObservationMatrix` is replayed chunk by chunk through
    its own interval slicing — the dense boolean horizon is never
    materialised in one piece, so long packed campaigns replay in bounded
    memory.
    """

    def __init__(
        self,
        observations: Union[ObservationMatrix, np.ndarray],
        chunk_intervals: int = 64,
    ) -> None:
        if chunk_intervals < 1:
            raise ScenarioError("chunk_intervals must be >= 1")
        if not isinstance(observations, ObservationMatrix):
            matrix = np.asarray(observations, dtype=bool)
            if matrix.ndim != 2:
                raise ScenarioError("MatrixSource expects a (T, paths) matrix")
            observations = ObservationMatrix(matrix)
        self._observations = observations
        self.chunk_intervals = chunk_intervals

    @property
    def num_paths(self) -> int:
        return self._observations.num_paths

    def chunks(self) -> Iterator[np.ndarray]:
        total = self._observations.num_intervals
        for start in range(0, total, self.chunk_intervals):
            stop = min(start + self.chunk_intervals, total)
            yield self._observations.slice_intervals(start, stop).matrix


def write_ndjson_trace(
    path: Union[str, Path],
    observations: Union[ObservationMatrix, np.ndarray, Iterable[np.ndarray]],
    num_paths: Optional[int] = None,
) -> int:
    """Record a campaign as an NDJSON trace; returns rounds written.

    Accepts a finished horizon (``ObservationMatrix`` / dense matrix) or an
    iterable of ``(rounds, paths)`` chunks (e.g. a live
    :class:`ObservationSource`'s ``chunks()``), so campaigns can be recorded
    while they stream.
    """
    if isinstance(observations, ObservationMatrix):
        # Chunked replay through the backend's own slicing: a long packed
        # campaign is written without materialising the dense horizon.
        num_paths = observations.num_paths
        blocks: Iterable[np.ndarray] = MatrixSource(
            observations, chunk_intervals=4096
        ).chunks()
    elif isinstance(observations, np.ndarray):
        matrix = np.asarray(observations, dtype=bool)
        if matrix.ndim != 2:
            raise ScenarioError("write_ndjson_trace expects a (T, paths) matrix")
        blocks = (matrix,)
        num_paths = matrix.shape[1]
    else:
        blocks = observations
        if num_paths is None:
            raise ScenarioError(
                "num_paths is required when writing from a chunk iterable"
            )
    written = 0
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            json.dumps({"type": "header", "num_paths": int(num_paths)}) + "\n"
        )
        for block in blocks:
            block = np.asarray(block, dtype=bool)
            if block.ndim != 2 or block.shape[1] != num_paths:
                raise ScenarioError(
                    f"trace chunk must be (rounds, {num_paths}) boolean"
                )
            for row in block:
                congested = np.flatnonzero(row).tolist()
                handle.write(
                    json.dumps({"type": "round", "congested": congested}) + "\n"
                )
                written += 1
    return written


class NDJSONTraceSource(ObservationSource):
    """Replay a recorded NDJSON campaign in fixed-size chunks.

    The file is read lazily line by line, so arbitrarily long recorded
    campaigns replay in bounded memory.
    """

    def __init__(self, path: Union[str, Path], chunk_intervals: int = 64) -> None:
        if chunk_intervals < 1:
            raise ScenarioError("chunk_intervals must be >= 1")
        self.path = Path(path)
        self.chunk_intervals = chunk_intervals
        with open(self.path, "r", encoding="utf-8") as handle:
            header = json.loads(handle.readline())
        if header.get("type") != "header" or "num_paths" not in header:
            raise ScenarioError(
                f"{self.path}: first NDJSON line must be the trace header"
            )
        self._num_paths = int(header["num_paths"])

    @property
    def num_paths(self) -> int:
        return self._num_paths

    def chunks(self) -> Iterator[np.ndarray]:
        buffer = np.zeros((self.chunk_intervals, self._num_paths), dtype=bool)
        filled = 0
        with open(self.path, "r", encoding="utf-8") as handle:
            handle.readline()  # header, validated in __init__
            for line_number, line in enumerate(handle, start=2):
                if not line.strip():
                    continue
                record = json.loads(line)
                if record.get("type") != "round":
                    raise ScenarioError(
                        f"{self.path}:{line_number}: expected a round record"
                    )
                congested = record.get("congested", [])
                if congested and (
                    min(congested) < 0 or max(congested) >= self._num_paths
                ):
                    raise ScenarioError(
                        f"{self.path}:{line_number}: path index out of range"
                    )
                buffer[filled] = False
                buffer[filled, congested] = True
                filled += 1
                if filled == self.chunk_intervals:
                    yield buffer[:filled].copy()
                    filled = 0
        if filled:
            yield buffer[:filled].copy()
