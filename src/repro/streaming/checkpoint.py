"""Serialize and restore streaming-engine state across restarts.

A monitoring daemon must survive restarts without losing its place in the
probe stream: the retained ring contents, the refit cursor, the warm
frequency workload, the alert detectors' hysteresis state, and the
diagnostic counters. This module snapshots exactly that into a single JSON
document (ring words as base64 of the canonical packed byte stream, so
checkpoints are portable across hosts of any word endianness) and rebuilds
a live engine from it.

Fitted models are *not* serialized: window estimates are derived data the
engine re-emits as new windows complete, and a restored monitor continues
the stream rather than re-reporting history. The restored engine's
timeline therefore starts empty while its cursor, counters, and window
numbering carry on from the checkpoint.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.exceptions import EstimationError
from repro.probability.base import ProbabilityEstimator
from repro.streaming.alerts import AlertManager, LevelShiftDetector, ThresholdDetector
from repro.streaming.buffer import PackedRingBuffer
from repro.streaming.engine import StreamingEstimator
from repro.topology.graph import Network

#: Schema version of the checkpoint document.
CHECKPOINT_VERSION = 1


def _alert_state(manager: AlertManager) -> dict:
    def thresholds(detectors):
        return {
            str(target): {"active": d.active, "high": d.high, "low": d.low}
            for target, d in detectors.items()
        }

    def shifts(detectors):
        return {
            str(target): {
                "level": d._level,
                "armed": d._armed,
                "threshold": d.threshold,
                "rearm": d.rearm,
            }
            for target, d in detectors.items()
        }

    return {
        "peer_threshold": thresholds(manager._peer_threshold),
        "peer_shift": shifts(manager._peer_shift),
        "link_threshold": thresholds(manager._link_threshold),
        "link_shift": shifts(manager._link_shift),
    }


def _restore_alert_state(manager: AlertManager, state: dict) -> None:
    """Re-seed detector *state* (hysteresis, levels) under the manager's
    own policy.

    Thresholds are configuration, not state: detectors are rebuilt from
    the supplied manager's :class:`AlertPolicy` — so an operator who
    changes a threshold and restarts sees the new value apply to every
    target, while active/armed/level hysteresis survives the restart.
    Families the new policy disables are simply not restored.
    """
    policy = manager.policy
    for name, high, low in (
        ("peer_threshold", policy.peer_high, policy.peer_low),
        ("link_threshold", policy.link_high, policy.link_low),
    ):
        if high is None:
            continue
        detectors = getattr(manager, f"_{name}")
        for target, fields in state.get(name, {}).items():
            detector = ThresholdDetector(high, low)
            detector.active = bool(fields["active"])
            detectors[int(target)] = detector
    for name, threshold in (
        ("peer_shift", policy.peer_shift),
        ("link_shift", policy.link_shift),
    ):
        if threshold is None:
            continue
        detectors = getattr(manager, f"_{name}")
        for target, fields in state.get(name, {}).items():
            detector = LevelShiftDetector(threshold, policy.rearm)
            detector._level = fields["level"]
            detector._armed = bool(fields["armed"])
            detectors[int(target)] = detector


def checkpoint_state(engine: StreamingEstimator) -> dict:
    """The engine's persistent state as a JSON-serializable document."""
    words, first, end = engine.buffer.snapshot()
    state = {
        "version": CHECKPOINT_VERSION,
        "window": engine.window,
        "stride": engine.stride,
        "retention": engine.retention,
        "workload_limit": engine.workload_limit,
        "max_windows": engine.max_windows,
        "max_alerts": engine.max_alerts,
        "kernel": engine.kernel,
        "num_paths": engine.buffer.num_paths,
        "num_links": engine.network.num_links,
        "estimator": engine.estimator.name,
        "ring": {
            "first_interval": first,
            "end_interval": end,
            "num_words": words.shape[1],
            # The packed layout is byte-semantic (packbits byte order, see
            # pack_bool_matrix), so the wire format is the raw byte stream
            # — identical on every host, unlike the uint64 *values*, which
            # differ with word endianness.
            "words": base64.b64encode(
                np.ascontiguousarray(words).view(np.uint8).tobytes()
            ).decode("ascii"),
        },
        "next_window_start": engine.next_window_start,
        # The *global* emit counter (not len(timeline.windows)): it carries
        # windows trimmed by max_windows and windows emitted before any
        # earlier restore, so window numbering survives repeated
        # checkpoint/restore generations.
        "emitted_windows": engine.windows_emitted,
        "workload": [sorted(path_set) for path_set in engine._workload],
        "counters": {
            "refits": engine.refits,
            "skipped_windows": engine.skipped_windows,
            "cache_hits": engine.cache_hits,
            "cache_misses": engine.cache_misses,
        },
        "alerts": (
            _alert_state(engine.alert_manager)
            if engine.alert_manager is not None
            else None
        ),
    }
    return state


def save_checkpoint(engine: StreamingEstimator, path: Union[str, Path]) -> Path:
    """Write the engine's state to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(checkpoint_state(engine)), encoding="utf-8")
    return path


def restore_engine(
    source: Union[str, Path, dict],
    network: Network,
    estimator: Optional[ProbabilityEstimator] = None,
    alert_manager: Optional[AlertManager] = None,
) -> StreamingEstimator:
    """Rebuild a live engine from a checkpoint file or document.

    ``network`` and ``estimator`` are supplied by the caller (topology and
    algorithm are code/config, not state); the checkpoint's structural
    echo (path/link counts, window geometry) is validated against them.
    The restored engine resumes ingestion at the exact round the
    checkpointed one stopped, with the same warm workload, alert
    hysteresis state, and window numbering.
    """
    if isinstance(source, (str, Path)):
        state = json.loads(Path(source).read_text(encoding="utf-8"))
    else:
        state = source
    if state.get("version") != CHECKPOINT_VERSION:
        raise EstimationError(
            f"unsupported checkpoint version {state.get('version')!r}"
        )
    if state["num_paths"] != network.num_paths:
        raise EstimationError(
            f"checkpoint monitored {state['num_paths']} paths, "
            f"network has {network.num_paths}"
        )
    if state["num_links"] != network.num_links:
        raise EstimationError(
            f"checkpoint monitored {state['num_links']} links, "
            f"network has {network.num_links}"
        )
    ring_state = state["ring"]
    raw = base64.b64decode(ring_state["words"])
    num_words = int(ring_state["num_words"])
    # Inverse of the byte-semantic serialization above: reinterpret the
    # canonical packed bytes as this host's native uint64 words, exactly
    # as pack_bool_matrix does when packing fresh observations.
    words = (
        np.frombuffer(raw, dtype=np.uint8)
        .reshape(int(state["num_paths"]), num_words * 8)
        .copy()
        .view(np.uint64)
    )
    ring = PackedRingBuffer.restore(
        words,
        int(ring_state["first_interval"]),
        int(ring_state["end_interval"]),
        int(state["retention"]),
    )
    max_windows = state.get("max_windows")
    max_alerts = state.get("max_alerts")
    engine = StreamingEstimator(
        network,
        estimator=estimator,
        window=int(state["window"]),
        stride=int(state["stride"]),
        retention=int(state["retention"]),
        alert_manager=alert_manager,
        workload_limit=int(state.get("workload_limit", 8192)),
        max_windows=None if max_windows is None else int(max_windows),
        max_alerts=None if max_alerts is None else int(max_alerts),
        ring=ring,
        kernel=state.get("kernel"),
    )
    if engine.estimator.name != state.get("estimator"):
        raise EstimationError(
            f"checkpoint was taken with estimator "
            f"{state.get('estimator')!r}, restore supplied "
            f"{engine.estimator.name!r}"
        )
    engine._next_start = int(state["next_window_start"])
    engine._workload = [frozenset(s) for s in state.get("workload", [])]
    # Window numbering continues from the checkpoint: the restored engine's
    # first emitted window picks up the global index where the
    # checkpointed monitor stopped.
    engine.windows_emitted = int(state.get("emitted_windows", 0))
    counters = state.get("counters", {})
    engine.refits = int(counters.get("refits", 0))
    engine.skipped_windows = int(counters.get("skipped_windows", 0))
    engine.cache_hits = int(counters.get("cache_hits", 0))
    engine.cache_misses = int(counters.get("cache_misses", 0))
    if alert_manager is not None and state.get("alerts"):
        _restore_alert_state(alert_manager, state["alerts"])
    return engine
