"""Incremental windowed estimation over a live probe stream.

:class:`StreamingEstimator` is the long-lived counterpart of
:class:`~repro.probability.windowed.WindowedEstimator`: instead of
consuming a complete horizon and fitting every window in one pass, it
ingests probe rounds as they arrive, refits exactly when a stride boundary
completes a window over the ring buffer, and emits the resulting
:class:`~repro.probability.windowed.WindowEstimate` into a live
:class:`~repro.probability.windowed.CongestionTimeline` (and through the
attached :class:`~repro.streaming.alerts.AlertManager`).

The key invariant: fed the same horizon, the emitted timeline is
**bit-identical** to the offline ``WindowedEstimator.fit`` output. Windows
are served from the packed ring as the very slices the offline path would
take, and the only cross-window state — the warm frequency workload — is a
*prefetch*, not a value reuse: each window's frequencies are computed by
the same batched kernel on the same window content, merely all at once
up front instead of query by query during the fit. Overlapping refits are
therefore amortised (one big kernel call plus cache hits) without ever
recomputing over the full horizon, the way a warm memoised store keeps
congestion state current across control decisions in streaming
traffic-engineering controllers.

The warm cache reaches the fit through the estimation pipeline's
:class:`~repro.probability.pipeline.SharedFitWorkspace` — per-window
immutable injection via the fit's context, so the estimator object itself
carries no engine state and stays freely shareable.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

from repro.exceptions import EstimationError
from repro.linalg.system import SystemWorkspace
from repro.model.kernels import get_kernel, use_kernel
from repro.model.packed import WORD_BITS
from repro.obs import counter, gauge, histogram, metrics_enabled, span
from repro.probability.base import ProbabilityEstimator
from repro.probability.pipeline import SharedFitWorkspace
from repro.probability.registry import resolve_estimator
from repro.probability.windowed import CongestionTimeline, WindowEstimate
from repro.streaming.alerts import Alert, AlertManager
from repro.streaming.buffer import PackedRingBuffer
from repro.topology.graph import Network

# Streaming-engine telemetry (REPRO_OBS=metrics|trace). Refit latency is
# the histogram behind the ROADMAP's p99-refit-latency goal; ingest and
# occupancy expose the ring's live state.
_INTERVALS_TOTAL = counter(
    "repro_streaming_intervals_total",
    "Probe rounds ingested into streaming rings.",
)
_RING_OCCUPANCY = gauge(
    "repro_streaming_ring_occupancy",
    "Intervals currently retained in the ring buffer.",
)
_REFITS_TOTAL = counter(
    "repro_streaming_refits_total",
    "Windows refitted and emitted by streaming engines.",
)
_SKIPPED_TOTAL = counter(
    "repro_streaming_skipped_windows_total",
    "Windows skipped because their fit raised EstimationError.",
)
_REFIT_SECONDS = histogram(
    "repro_streaming_refit_seconds",
    "Wall time per streaming window refit (including skipped fits).",
)


class StreamingEstimator:
    """Windowed probability estimation as an online service.

    Parameters
    ----------
    network:
        The monitored topology (fixes the path width of the ring).
    estimator:
        Any :class:`ProbabilityEstimator`, or a registered estimator name
        (see :mod:`repro.probability.registry`); defaults to
        Correlation-complete.
    window:
        Window length in intervals (matches ``WindowedEstimator``).
    stride:
        Step between window starts; defaults to ``window`` (tumbling).
    retention:
        Ring retention in intervals. Automatically floored at
        ``window + stride`` plus word-rounding slack so the next due
        window can never be evicted before it is fitted.
    alert_manager:
        Online alerting sink; ``None`` disables alert evaluation.
    workload_limit:
        Cap on the carried-over frequency workload (path sets prefetched
        into the next window's cache).
    max_windows:
        Bound on retained :attr:`timeline` windows (oldest dropped first);
        ``None`` keeps every emitted window. A long-lived monitor should
        set this — the ring bounds raw observations, this bounds the
        derived per-window models. Alert window indices stay global
        (:attr:`windows_emitted` counts trimmed windows too).
    max_alerts:
        Bound on the retained :attr:`alerts` backlog; ``None`` keeps all.
    ring:
        A pre-built :class:`PackedRingBuffer` to adopt instead of
        allocating a fresh one — the checkpoint-restore path hands the
        restored ring in directly so the store is allocated once. Its
        path width and retention must match.
    kernel:
        Pin every refit's frequency kernel to this registered name
        (see :mod:`repro.model.kernels`); ``None`` follows the process's
        active selection. Pinning is scoped to the refit — the engine
        never mutates the global selection outside :meth:`_fit_window`.
    """

    def __init__(
        self,
        network: Network,
        estimator: Union[ProbabilityEstimator, str, None] = None,
        window: int = 200,
        stride: Optional[int] = None,
        retention: Optional[int] = None,
        alert_manager: Optional[AlertManager] = None,
        workload_limit: int = 8192,
        max_windows: Optional[int] = None,
        max_alerts: Optional[int] = None,
        ring: Optional[PackedRingBuffer] = None,
        kernel: Optional[str] = None,
    ) -> None:
        if window < 2:
            raise EstimationError("window must cover at least 2 intervals")
        if kernel is not None:
            get_kernel(kernel)  # fail fast on unknown names
        self.kernel = kernel
        self.network = network
        self.estimator = resolve_estimator(estimator)
        self.window = window
        self.stride = stride if stride is not None else window
        if self.stride < 1:
            raise EstimationError("stride must be >= 1")
        if workload_limit < 0:
            raise EstimationError("workload_limit must be >= 0")
        if max_windows is not None and max_windows < 1:
            raise EstimationError("max_windows must be >= 1")
        if max_alerts is not None and max_alerts < 0:
            raise EstimationError("max_alerts must be >= 0")
        # The ring must always retain [next_start, end): the un-refitted
        # suffix never exceeds window + ingest-piece size, and pieces are
        # capped at retention - window - 2 words of rounding slack below.
        floor = self.window + self.stride + 2 * WORD_BITS
        self.retention = max(retention or 0, floor)
        if ring is not None:
            if ring.num_paths != network.num_paths:
                raise EstimationError(
                    "supplied ring's path width does not match the network"
                )
            if ring.retention < self.retention:
                raise EstimationError(
                    "supplied ring's retention is below the engine's floor"
                )
            self._ring = ring
        else:
            self._ring = PackedRingBuffer(network.num_paths, self.retention)
        self._max_piece = self._ring.retention - self.window - WORD_BITS
        self.alert_manager = alert_manager
        self.workload_limit = workload_limit
        self.max_windows = max_windows
        self.max_alerts = max_alerts
        self.timeline = CongestionTimeline(network=network)
        self.alerts: List[Alert] = []
        self._next_start = 0
        self._workload: List[frozenset] = []
        # Equation-arena carried across windows: each refit's fit context
        # checks it out through its SharedFitWorkspace, so consecutive
        # windows reuse one growth buffer instead of reallocating.
        self._system_workspace = SystemWorkspace()
        #: Global count of windows ever emitted — includes windows trimmed
        #: by ``max_windows`` and, after a checkpoint restore, windows
        #: emitted before the restart. Alert window indices come from it,
        #: so numbering is stable across trimming and restarts.
        self.windows_emitted = 0
        # Diagnostics of the amortisation story.
        self.refits = 0
        self.skipped_windows = 0
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    @property
    def intervals_ingested(self) -> int:
        """Total probe rounds ever ingested (absolute stream length)."""
        return self._ring.end_interval

    @property
    def next_window_start(self) -> int:
        """Absolute start of the next window awaiting completion."""
        return self._next_start

    @property
    def buffer(self) -> PackedRingBuffer:
        """The underlying packed ring (read access for checkpointing)."""
        return self._ring

    def telemetry_status(self) -> dict:
        """Live engine counters as a JSON-able dict.

        The ``/healthz`` payload of a served monitor run
        (``repro-tomography monitor --serve-port``) — a scraper's
        one-request answer to "is the engine making progress".
        """
        return {
            "estimator": self.estimator.name,
            "window": self.window,
            "stride": self.stride,
            "intervals_ingested": int(self.intervals_ingested),
            "ring_occupancy": int(self._ring.num_retained),
            "refits": self.refits,
            "skipped_windows": self.skipped_windows,
            "windows_emitted": self.windows_emitted,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "alerts": len(self.alerts),
        }

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, chunk: np.ndarray) -> List[WindowEstimate]:
        """Feed one boolean ``(rounds, num_paths)`` block of probe rounds.

        Appends to the ring, then refits every window completed by the new
        rounds (zero or more, depending on the stride). Returns the newly
        emitted estimates; alerts raised along the way are appended to
        :attr:`alerts`.
        """
        chunk = np.asarray(chunk, dtype=bool)
        if chunk.ndim != 2:
            raise EstimationError("ingest expects a (rounds, paths) block")
        emitted: List[WindowEstimate] = []
        # Pieces are bounded so ring eviction can never outrun the refit
        # cursor, even for a giant backfill chunk.
        for start in range(0, chunk.shape[0], self._max_piece):
            self._ring.append(chunk[start : start + self._max_piece])
            emitted.extend(self._refit_due())
        if metrics_enabled() and chunk.shape[0]:
            _INTERVALS_TOTAL.inc(float(chunk.shape[0]))
            _RING_OCCUPANCY.set(float(self._ring.num_retained))
        return emitted

    def run(
        self,
        chunks: Iterable[np.ndarray],
        max_intervals: Optional[int] = None,
    ) -> CongestionTimeline:
        """Drive the engine from a chunk iterator (e.g. a prober or trace).

        Stops when the source is exhausted or ``max_intervals`` rounds have
        been ingested; returns the live timeline.
        """
        for chunk in chunks:
            if max_intervals is not None:
                budget = max_intervals - self.intervals_ingested
                if budget <= 0:
                    break
                chunk = np.asarray(chunk, dtype=bool)[:budget]
            self.ingest(chunk)
            if (max_intervals is not None and self.intervals_ingested >= max_intervals):
                break
        return self.timeline

    # ------------------------------------------------------------------
    # Refitting
    # ------------------------------------------------------------------
    def _refit_due(self) -> List[WindowEstimate]:
        emitted: List[WindowEstimate] = []
        while self._next_start + self.window <= self._ring.end_interval:
            estimate = self._fit_window(
                self._next_start, self._next_start + self.window
            )
            self._next_start += self.stride
            if estimate is None:
                self.skipped_windows += 1
                _SKIPPED_TOTAL.inc()
                continue
            self.refits += 1
            _REFITS_TOTAL.inc()
            self.timeline.windows.append(estimate)
            emitted.append(estimate)
            window_index = self.windows_emitted
            self.windows_emitted += 1
            if self.alert_manager is not None:
                self.alerts.extend(self.alert_manager.observe(window_index, estimate))
            # Bound derived state for long-lived monitors: the ring bounds
            # raw observations, these bound per-window models and alerts.
            if (
                self.max_windows is not None
                and len(self.timeline.windows) > self.max_windows
            ):
                del self.timeline.windows[
                    : len(self.timeline.windows) - self.max_windows
                ]
            if (self.max_alerts is not None and len(self.alerts) > self.max_alerts):
                del self.alerts[: len(self.alerts) - self.max_alerts]
        return emitted

    def _fit_window(self, start: int, stop: int) -> Optional[WindowEstimate]:
        # The refit span (and its latency histogram sample) covers the
        # whole attempt — prefetch, fit, workload harvest — skipped
        # windows included: a degenerate window that burns fit time must
        # show up in the p99.
        with span("streaming.refit", start=start, stop=stop) as refit_span:
            estimate = self._fit_window_inner(start, stop)
        _REFIT_SECONDS.observe(refit_span.elapsed)
        return estimate

    def _fit_window_inner(self, start: int, stop: int) -> Optional[WindowEstimate]:
        observations = self._ring.window(start, stop)
        workspace = SharedFitWorkspace(
            observations, system=self._system_workspace
        )
        cache = workspace.frequency
        with use_kernel(self.kernel):
            if self._workload:
                # One batched kernel call evaluates the previous window's
                # whole frequency workload against the new window. The
                # subsequent fit then runs almost entirely on cache hits —
                # the incremental refit never re-derives its query set from
                # scratch, and never touches intervals outside
                # [start, stop).
                cache.prefetch(self._workload)
            cache.reset_touched()
            try:
                model = self.estimator.fit(
                    self.network, observations, workspace=workspace
                )
            except EstimationError:
                # Skipped window: keep the last good window's workload —
                # one degenerate window must not cold-start the refits
                # after it.
                return None
            finally:
                self.cache_hits += cache.hits
                self.cache_misses += cache.misses
        # Carry forward only the queries this (successful) fit actually
        # made — path sets the estimator stopped needing fall out of the
        # workload instead of being prefetched forever.
        if self.workload_limit:
            self._workload = cache.touched_keys()[-self.workload_limit :]
        else:
            self._workload = []
        return WindowEstimate(start=start, stop=stop, model=model)
