"""Online congestion alerting over streaming window estimates.

The paper's operational pitch is that a source ISP watches "how frequently
the peer is congested and how its congestion level changes over the course
of day or week" and reacts to "exceptional situations like BGP failures,
flash crowds, or distributed denial-of-service attacks". Offline, the
repo answers this with :meth:`CongestionTimeline.change_points` — a batch
scan over a finished series. This module is the *streaming* generalisation:
detectors hold per-target state, consume one window estimate at a time as
the engine emits it, and raise structured :class:`Alert` events the moment
a condition fires.

Two detector families, each applicable per link and per peer:

* :class:`ThresholdDetector` — absolute level with hysteresis (raise above
  ``high``, clear below ``low``), the classic pager condition;
* :class:`LevelShiftDetector` — jump detection between consecutive window
  estimates. With ``rearm=None`` it fires on exactly the window indices
  :meth:`CongestionTimeline.change_points` reports offline; a ``rearm``
  margin adds hysteresis so an oscillating series alerts once per episode
  instead of every window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs import counter, event, metrics_enabled
from repro.probability.query import CongestionProbabilityModel
from repro.probability.windowed import WindowEstimate, peer_link_members
from repro.topology.graph import Network

_ALERTS_TOTAL = counter(
    "repro_streaming_alerts_total",
    "Alert transitions raised by streaming detectors.",
    ["kind", "scope"],
)


def peer_congestion_levels(
    model: CongestionProbabilityModel,
    peer_members: Dict[int, List[int]],
) -> Dict[int, float]:
    """Worst-link congestion probability per peer AS for one fitted model.

    The per-peer health signal every monitoring surface derives (alert
    routing, the CLI's rolling display, peer rankings), computed in one
    pass over the link table grouping.
    """
    return {
        asn: max(model.link_congestion_probability(link) for link in members)
        for asn, members in peer_members.items()
    }


@dataclass(frozen=True)
class Alert:
    """One detector firing.

    Attributes
    ----------
    kind:
        ``"threshold_raise"``, ``"threshold_clear"``, or ``"level_shift"``.
    scope:
        ``"link"`` or ``"peer"``.
    target:
        Link index (scope ``"link"``) or peer ASN (scope ``"peer"``).
    window_index:
        Index of the emitted window that triggered the alert.
    start, stop:
        Absolute interval span ``[start, stop)`` of that window.
    value:
        The window's congestion probability for the target.
    baseline:
        The level the value is compared against (threshold, or the
        pre-shift level for ``level_shift``).
    message:
        Human-readable one-liner for logs/console.
    """

    kind: str
    scope: str
    target: int
    window_index: int
    start: int
    stop: int
    value: float
    baseline: float
    message: str


class ThresholdDetector:
    """Absolute-level alarm with hysteresis.

    Raises when the series crosses above ``high`` while inactive; clears
    when it falls to ``low`` or below while active. ``low`` defaults to
    ``high`` (no hysteresis band).
    """

    def __init__(self, high: float, low: Optional[float] = None) -> None:
        if not 0.0 <= high <= 1.0:
            raise ValueError("threshold high must be in [0, 1]")
        self.high = high
        self.low = high if low is None else low
        if not 0.0 <= self.low <= self.high:
            raise ValueError("threshold low must be in [0, high]")
        self.active = False

    def update(self, value: float) -> Optional[str]:
        """Feed one value; returns ``"raise"``, ``"clear"``, or ``None``."""
        if not self.active and value > self.high:
            self.active = True
            return "raise"
        if self.active and value <= self.low:
            self.active = False
            return "clear"
        return None


class LevelShiftDetector:
    """Jump detection between consecutive window estimates.

    While armed, tracks the previous value as the baseline and fires when
    the next value jumps by more than ``threshold`` — on a finished series
    this flags exactly the indices
    :meth:`CongestionTimeline.change_points` reports. With ``rearm`` set,
    a firing disarms the detector until the series settles (consecutive
    window estimates within ``rearm`` of each other), so one congestion
    episode produces one alert instead of a window-by-window flap — and a
    series that keeps moving after the episode re-arms as soon as it
    stabilises at *any* level, never staying dead.
    """

    def __init__(self, threshold: float, rearm: Optional[float] = None) -> None:
        if threshold <= 0.0:
            raise ValueError("level-shift threshold must be positive")
        self.threshold = threshold
        self.rearm = rearm
        self._level: Optional[float] = None
        self._armed = True

    def update(self, value: float) -> Optional[float]:
        """Feed one value; returns the pre-shift baseline when firing."""
        if self._level is None:
            self._level = value
            return None
        if self._armed:
            if abs(value - self._level) > self.threshold:
                baseline = self._level
                self._level = value
                if self.rearm is not None:
                    self._armed = False
                return baseline
            self._level = value
            return None
        # Disarmed: keep tracking the series; re-arm once two consecutive
        # window estimates agree to within `rearm` (the episode settled —
        # wherever it settled, so a spike can never kill the detector).
        if abs(value - self._level) <= self.rearm:
            self._armed = True
        self._level = value
        return None


@dataclass
class AlertPolicy:
    """Which detectors the :class:`AlertManager` runs, and their knobs.

    ``None`` disables the corresponding detector family. Defaults follow
    the monitoring story: peers page on absolute level with a hysteresis
    band, links flag level shifts (the change-point signal).
    """

    peer_high: Optional[float] = 0.5
    peer_low: Optional[float] = 0.4
    peer_shift: Optional[float] = None
    link_high: Optional[float] = None
    link_low: Optional[float] = None
    link_shift: Optional[float] = 0.25
    rearm: Optional[float] = None


class AlertManager:
    """Fan one window estimate out to per-link and per-peer detectors.

    Parameters
    ----------
    network:
        Supplies the link → AS grouping (peer membership is computed once).
    policy:
        Detector configuration; see :class:`AlertPolicy`.
    """

    def __init__(self, network: Network, policy: Optional[AlertPolicy] = None) -> None:
        self.network = network
        self.policy = policy or AlertPolicy()
        self._peer_members = peer_link_members(network)
        self._peer_threshold: Dict[int, ThresholdDetector] = {}
        self._peer_shift: Dict[int, LevelShiftDetector] = {}
        self._link_threshold: Dict[int, ThresholdDetector] = {}
        self._link_shift: Dict[int, LevelShiftDetector] = {}

    # ------------------------------------------------------------------
    def _threshold_alerts(
        self,
        scope: str,
        target: int,
        value: float,
        detectors: Dict[int, ThresholdDetector],
        high: float,
        low: Optional[float],
        window_index: int,
        estimate: WindowEstimate,
    ) -> List[Alert]:
        detector = detectors.get(target)
        if detector is None:
            detector = detectors[target] = ThresholdDetector(high, low)
        event = detector.update(value)
        if event is None:
            return []
        label = f"AS{target}" if scope == "peer" else f"e{target}"
        verb = "exceeded" if event == "raise" else "cleared"
        return [
            Alert(
                kind=f"threshold_{event}",
                scope=scope,
                target=target,
                window_index=window_index,
                start=estimate.start,
                stop=estimate.stop,
                value=value,
                baseline=detector.high if event == "raise" else detector.low,
                message=(
                    f"{label} congestion {value:.2f} {verb} threshold "
                    f"in window [{estimate.start}, {estimate.stop})"
                ),
            )
        ]

    def _shift_alerts(
        self,
        scope: str,
        target: int,
        value: float,
        detectors: Dict[int, LevelShiftDetector],
        threshold: float,
        window_index: int,
        estimate: WindowEstimate,
    ) -> List[Alert]:
        detector = detectors.get(target)
        if detector is None:
            detector = detectors[target] = LevelShiftDetector(
                threshold, self.policy.rearm
            )
        baseline = detector.update(value)
        if baseline is None:
            return []
        label = f"AS{target}" if scope == "peer" else f"e{target}"
        return [
            Alert(
                kind="level_shift",
                scope=scope,
                target=target,
                window_index=window_index,
                start=estimate.start,
                stop=estimate.stop,
                value=value,
                baseline=baseline,
                message=(
                    f"{label} congestion level shifted "
                    f"{baseline:.2f} -> {value:.2f} in window "
                    f"[{estimate.start}, {estimate.stop})"
                ),
            )
        ]

    # ------------------------------------------------------------------
    def observe(self, window_index: int, estimate: WindowEstimate) -> List[Alert]:
        """Feed one emitted window estimate; returns newly-raised alerts."""
        policy = self.policy
        model = estimate.model
        alerts: List[Alert] = []
        needs_links = policy.link_high is not None or policy.link_shift is not None
        link_values: Dict[int, float] = {}
        if needs_links or policy.peer_high is not None or policy.peer_shift is not None:
            for members in self._peer_members.values():
                for link in members:
                    link_values[link] = model.link_congestion_probability(link)
        for link, value in link_values.items() if needs_links else ():
            if policy.link_high is not None:
                alerts.extend(
                    self._threshold_alerts(
                        "link",
                        link,
                        value,
                        self._link_threshold,
                        policy.link_high,
                        policy.link_low,
                        window_index,
                        estimate,
                    )
                )
            if policy.link_shift is not None:
                alerts.extend(
                    self._shift_alerts(
                        "link",
                        link,
                        value,
                        self._link_shift,
                        policy.link_shift,
                        window_index,
                        estimate,
                    )
                )
        if policy.peer_high is not None or policy.peer_shift is not None:
            for asn, members in self._peer_members.items():
                value = max(link_values[link] for link in members)
                if policy.peer_high is not None:
                    alerts.extend(
                        self._threshold_alerts(
                            "peer",
                            asn,
                            value,
                            self._peer_threshold,
                            policy.peer_high,
                            policy.peer_low,
                            window_index,
                            estimate,
                        )
                    )
                if policy.peer_shift is not None:
                    alerts.extend(
                        self._shift_alerts(
                            "peer",
                            asn,
                            value,
                            self._peer_shift,
                            policy.peer_shift,
                            window_index,
                            estimate,
                        )
                    )
        if alerts and metrics_enabled():
            for alert in alerts:
                _ALERTS_TOTAL.inc(kind=alert.kind, scope=alert.scope)
                event(
                    "streaming.alert",
                    kind=alert.kind,
                    scope=alert.scope,
                    target=alert.target,
                    window=alert.window_index,
                    value=alert.value,
                )
        return alerts
