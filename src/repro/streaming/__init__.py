"""Streaming estimation engine: the paper's monitoring scenario, live.

The batch stack answers "what were the congestion probabilities over this
recorded horizon?"; this package turns it into a long-lived service that
answers "what are they *now*?" — the source ISP continuously watching how
frequently a peer is congested and how its level changes over a day or
week (Section 1), reacting to flash crowds and failures as they happen.

Layers, bottom up:

* :mod:`repro.streaming.buffer` — :class:`PackedRingBuffer`, word-aligned
  ``uint64`` ring storage with bounded retention and zero-copy window
  views onto the packed frequency kernel;
* :mod:`repro.streaming.ingest` — pluggable :class:`ObservationSource`\\ s
  (live prober, in-memory replay, NDJSON trace record/replay);
* :mod:`repro.streaming.engine` — :class:`StreamingEstimator`, incremental
  windowed refits on stride boundaries with a warm frequency workload,
  bit-identical to the offline
  :class:`~repro.probability.windowed.WindowedEstimator`;
* :mod:`repro.streaming.alerts` — online per-link/per-peer threshold and
  level-shift detection with hysteresis, emitting structured
  :class:`Alert` events;
* :mod:`repro.streaming.checkpoint` — serialize/restore engine state so a
  monitor survives restarts.
"""

from repro.streaming.alerts import (
    Alert,
    AlertManager,
    AlertPolicy,
    LevelShiftDetector,
    ThresholdDetector,
    peer_congestion_levels,
)
from repro.streaming.buffer import PackedRingBuffer
from repro.streaming.checkpoint import (
    checkpoint_state,
    restore_engine,
    save_checkpoint,
)
from repro.streaming.engine import StreamingEstimator
from repro.streaming.ingest import (
    MatrixSource,
    NDJSONTraceSource,
    ObservationSource,
    ProberSource,
    write_ndjson_trace,
)

__all__ = [
    "Alert",
    "AlertManager",
    "AlertPolicy",
    "LevelShiftDetector",
    "ThresholdDetector",
    "peer_congestion_levels",
    "PackedRingBuffer",
    "StreamingEstimator",
    "ObservationSource",
    "ProberSource",
    "MatrixSource",
    "NDJSONTraceSource",
    "write_ndjson_trace",
    "checkpoint_state",
    "save_checkpoint",
    "restore_engine",
]
