"""The paper's primary contribution, re-exported under ``repro.core``.

The contribution is the shift from Boolean Inference to Congestion
Probability Computation (Section 4) realised by the **Correlation-complete**
estimator — Algorithm 1 with the incremental null-space update of
Algorithm 2 — together with the queryable probability model it produces and
the building blocks named in Section 5 (correlation subsets, the
``Row``/``Matrix`` functions, and the null-space machinery).
"""

from repro.linalg.nullspace import null_space, null_space_update
from repro.probability.base import EstimatorConfig, FitReport
from repro.probability.correlation_complete import CorrelationCompleteEstimator
from repro.probability.query import CongestionProbabilityModel
from repro.probability.rows import build_matrix, build_row
from repro.probability.subsets import SubsetIndex, potentially_congested_links

__all__ = [
    "CorrelationCompleteEstimator",
    "CongestionProbabilityModel",
    "EstimatorConfig",
    "FitReport",
    "SubsetIndex",
    "potentially_congested_links",
    "build_matrix",
    "build_row",
    "null_space",
    "null_space_update",
]
