"""Model-level machinery: random-variable conventions, assumptions, conditions.

``status`` defines the boolean state conventions (``X_e``/``Y_p`` of
Section 2) shared by the simulator and the algorithms; ``assumptions``
implements the assumption/condition taxonomy of Table 2, including executable
checkers for Identifiability (Condition 1) and Identifiability++
(Condition 2).
"""

from repro.model.assumptions import (
    Assumption,
    Condition,
    TABLE2_MATRIX,
    check_identifiability,
    check_identifiability_pp,
    table2_rows,
)
from repro.model.status import GOOD, CONGESTED, IntervalRecord, ObservationMatrix

__all__ = [
    "Assumption",
    "Condition",
    "TABLE2_MATRIX",
    "check_identifiability",
    "check_identifiability_pp",
    "table2_rows",
    "GOOD",
    "CONGESTED",
    "IntervalRecord",
    "ObservationMatrix",
]
