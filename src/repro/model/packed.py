"""Bit-packed columnar observation storage and the batched frequency kernel.

Every Probability Computation algorithm in this package reduces to one hot
query — the empirical all-good frequency of a path set (the left-hand side
of the paper's Eq. 1). Evaluated against a dense boolean ``(T, paths)``
matrix, each query is an O(T * k) scan; evaluated against this backend it is
a handful of word operations: path statuses are stored as ``uint64`` words
(64 intervals per word, one row of words per path), a path set's congested
intervals are the bitwise OR of its rows, and the all-good count is
``T - popcount(OR)``.

The same layout yields the other frequency queries for free (per-path
congestion counts are per-row popcounts) and supports cheap interval
slicing for windowed estimation: a word-aligned window is a column slice of
the word matrix plus a tail mask, with no re-packing of the horizon.

Two interchangeable backends implement the storage contract:

* :class:`PackedBackend` — the ``uint64`` columnar store (default);
* :class:`DenseBackend` — the original boolean matrix, kept for tests,
  tiny inputs, and as the executable specification the packed kernels are
  property-tested against.

The packed backend's two hot loops — the batched gather/OR/popcount of
:meth:`PackedBackend.all_good_counts` and the row popcounts of
:meth:`PackedBackend.congestion_counts` — dispatch through the pluggable
kernel layer (:mod:`repro.model.kernels`): the canonical numpy kernel by
default, an optional compiled GIL-free numba kernel when selected via
``REPRO_KERNEL`` (bit-identical either way).
"""

from __future__ import annotations

import sys
from typing import List, Sequence

import numpy as np

from repro.model import kernels
from repro.obs import counter, histogram, metrics_enabled

# Kernel-dispatch telemetry (REPRO_OBS=metrics|trace). Batch-size buckets
# are set counts, not seconds: the gather kernel's cost profile is driven
# by how many path sets one invocation carries.
_KERNEL_CALLS = counter(
    "repro_kernel_calls_total",
    "Frequency-kernel invocations by kernel and operation.",
    ["kernel", "op"],
)
_KERNEL_WORDS = counter(
    "repro_kernel_words_total",
    "uint64 words gathered/scanned by the frequency kernels.",
    ["kernel", "op"],
)
_KERNEL_BATCH_SETS = histogram(
    "repro_kernel_batch_path_sets",
    "Path sets per batched union-popcount invocation.",
    ["kernel"],
    buckets=[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536],
)

#: Intervals per storage word.
WORD_BITS = 64

#: Bytes per storage word.
WORD_BYTES = 8


def pack_bool_matrix(congested: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(T, paths)`` matrix into ``uint64`` words.

    Returns an array of shape ``(paths, ceil(T / 64))``; bit ``j`` (MSB
    first within each byte, bytes in little-endian word order is *not*
    assumed anywhere — only popcounts and ORs are taken) of row ``p`` is the
    status of path ``p`` in interval ``64 * w + j``. Padding bits beyond
    ``T`` are zero (good), so they never contribute to congestion counts.
    """
    congested = np.asarray(congested, dtype=bool)
    if congested.ndim != 2:
        raise ValueError("pack_bool_matrix expects a 2-D (T, paths) matrix")
    num_intervals, num_paths = congested.shape
    num_words = max(1, -(-num_intervals // WORD_BITS))
    # Pack along time per path; pad the byte dimension out to whole words.
    packed_bytes = np.packbits(congested.T, axis=1)
    padded = np.zeros((num_paths, num_words * WORD_BYTES), dtype=np.uint8)
    padded[:, : packed_bytes.shape[1]] = packed_bytes
    return padded.view(np.uint64)


def unpack_words(words: np.ndarray, num_intervals: int) -> np.ndarray:
    """Inverse of :func:`pack_bool_matrix`: back to boolean ``(T, paths)``."""
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=1, count=num_intervals)
    return bits.T.astype(bool)


def _tail_mask(num_intervals: int, num_words: int) -> np.ndarray:
    """Per-word mask with ones on the first ``num_intervals`` bit slots."""
    total_bits = num_words * WORD_BITS
    bits = np.zeros(total_bits, dtype=np.uint8)
    bits[:num_intervals] = 1
    return np.packbits(bits).view(np.uint64)


class PackedBackend:
    """``uint64`` columnar path-status store with popcount kernels.

    Parameters
    ----------
    words:
        ``(num_paths, num_words)`` uint64 array; see
        :func:`pack_bool_matrix` for the bit layout. Padding bits must be 0.
    num_intervals:
        The observation horizon ``T`` (``<= num_words * 64``).
    """

    name = "packed"

    def __init__(self, words: np.ndarray, num_intervals: int) -> None:
        # `asarray` (not `ascontiguousarray`): a non-contiguous column view
        # of a larger word store — e.g. a window of the streaming ring
        # buffer — is accepted zero-copy. Every kernel below either works on
        # strided arrays directly or makes a bounded local copy of the
        # touched word range.
        words = np.asarray(words, dtype=np.uint64)
        if words.ndim != 2:
            raise ValueError("PackedBackend expects a 2-D (paths, words) array")
        if num_intervals > words.shape[1] * WORD_BITS:
            raise ValueError("num_intervals exceeds packed capacity")
        self.words = words
        self._num_intervals = int(num_intervals)
        # Kernel-owned caches tied to this word store (the numpy kernel
        # keeps its dummy-padded copy of `words` here). Lazily filled so
        # backends that never run a batch query — e.g. short-lived window
        # slices — pay nothing.
        self._kernel_scratch: dict = {}

    @classmethod
    def from_dense(cls, congested: np.ndarray) -> "PackedBackend":
        congested = np.asarray(congested, dtype=bool)
        return cls(pack_bool_matrix(congested), congested.shape[0])

    # -- pickling --------------------------------------------------------
    # Observations cross process boundaries (the parallel campaign runner
    # ships them to and from pool workers) in their uint64 word form: the
    # state is just the word matrix plus the horizon. The kernel scratch
    # is dropped — it holds caches, and strided window views are made
    # contiguous so the payload is exactly the touched words. Thread
    # shards (``executor="thread"``) never pickle at all: they share this
    # backend zero-copy.
    def __getstate__(self) -> dict:
        return {
            "words": np.ascontiguousarray(self.words),
            "num_intervals": self._num_intervals,
        }

    def __setstate__(self, state: dict) -> None:
        self.words = state["words"]
        self._num_intervals = state["num_intervals"]
        self._kernel_scratch = {}

    # -- storage contract ------------------------------------------------
    @property
    def num_intervals(self) -> int:
        return self._num_intervals

    @property
    def num_paths(self) -> int:
        return self.words.shape[0]

    def dense(self) -> np.ndarray:
        """Materialise the boolean ``(T, paths)`` matrix."""
        return unpack_words(self.words, self._num_intervals)

    def congested_in_interval(self, interval: int) -> np.ndarray:
        """Boolean vector over paths for one interval ``t``."""
        if not 0 <= interval < self._num_intervals:
            raise IndexError(f"interval {interval} outside horizon")
        word_index, bit_in_word = divmod(interval, WORD_BITS)
        byte_index, bit_index = divmod(bit_in_word, 8)
        # Extract the single queried bit by shift+mask on the (possibly
        # strided) word column — no 8-byte-per-path contiguous copy of the
        # whole word column just to read one byte of it. The shift maps
        # pack_bool_matrix's layout (MSB-first bits, bytes in increasing
        # memory order) onto the host's uint64 byte order.
        if sys.byteorder == "little":
            shift = np.uint64(8 * byte_index + (7 - bit_index))
        else:  # pragma: no cover - big-endian hosts
            shift = np.uint64(8 * (7 - byte_index) + (7 - bit_index))
        column = self.words[:, word_index]
        return (column >> shift) & np.uint64(1) > 0

    def congestion_counts(self) -> np.ndarray:
        """Per-path congested-interval counts, shape (num_paths,)."""
        kernel = kernels.active_kernel()
        if metrics_enabled():
            _KERNEL_CALLS.inc(kernel=kernel.name, op="congestion_counts")
            _KERNEL_WORDS.inc(float(self.words.size), kernel=kernel.name, op="congestion_counts")
        return kernel.congestion_counts(self.words)

    def all_good_counts(self, path_sets: Sequence[Sequence[int]]) -> np.ndarray:
        """Batched Eq. 1 numerator: all-good interval counts per path set.

        The kernel of the whole estimation stack: for each path set, OR the
        packed rows of its members and popcount the union. The whole batch
        runs through the active frequency kernel
        (:mod:`repro.model.kernels`) — no Python per-set work. The empty
        set counts every interval (an all-empty batch short-circuits; an
        empty set inside a wider batch unions nothing and popcounts to
        zero under either kernel). Returns an int64 array of
        len(path_sets).
        """
        num_sets = len(path_sets)
        total = self._num_intervals
        if num_sets == 0:
            return np.zeros(0, dtype=np.int64)
        members: List[List[int]] = [list(s) for s in path_sets]
        widest = max(len(m) for m in members)
        if widest == 0:
            return np.full(num_sets, total, dtype=np.int64)
        # Ragged sets become a rectangular index matrix padded with the
        # dummy row index ``num_paths`` (an implicit all-good row, a no-op
        # under OR) plus the true lengths; each kernel consumes whichever
        # of the two paddings suits its loop structure.
        dummy = self.num_paths
        indices = np.full((num_sets, widest), dummy, dtype=np.intp)
        lengths = np.empty(num_sets, dtype=np.int64)
        for i, m in enumerate(members):
            indices[i, : len(m)] = m
            lengths[i] = len(m)
        kernel = kernels.active_kernel()
        if metrics_enabled():
            _KERNEL_CALLS.inc(kernel=kernel.name, op="union_popcounts")
            # Words gathered: every member row contributes its word columns
            # to the union.
            _KERNEL_WORDS.inc(
                float(int(lengths.sum()) * self.words.shape[1]),
                kernel=kernel.name,
                op="union_popcounts",
            )
            _KERNEL_BATCH_SETS.observe(float(num_sets), kernel=kernel.name)
        counts = kernel.union_popcounts(
            self.words, indices, lengths, self._kernel_scratch
        )
        return total - counts

    def slice_intervals(self, start: int, stop: int) -> "PackedBackend":
        """The window ``[start, stop)`` as a new backend.

        Word-aligned starts reuse the existing words (a column slice plus a
        tail mask); unaligned starts shift bits across words — both avoid
        re-packing from a dense matrix.
        """
        if not 0 <= start <= stop <= self._num_intervals:
            raise IndexError(f"window [{start}, {stop}) outside horizon")
        length = stop - start
        if length == 0:
            return PackedBackend(np.zeros((self.num_paths, 1), dtype=np.uint64), 0)
        num_words = -(-length // WORD_BITS)
        first_word, offset = divmod(start, WORD_BITS)
        if offset == 0:
            window = self.words[:, first_word : first_word + num_words].copy()
            window &= _tail_mask(length, num_words)
        else:
            # Unaligned window: unpack only the touched word range, slice
            # at bit granularity, and repack — still no dense (T, paths)
            # matrix and no re-scan of the full horizon.
            last_word = -(-stop // WORD_BITS)
            touched = np.ascontiguousarray(self.words[:, first_word:last_word])
            byte_start = start // 8
            byte_stop = -(-stop // 8)
            word_byte0 = first_word * WORD_BYTES
            raw = touched.view(np.uint8)[
                :, byte_start - word_byte0 : byte_stop - word_byte0
            ]
            bits = np.unpackbits(np.ascontiguousarray(raw), axis=1)
            head = start - byte_start * 8
            packed = np.packbits(bits[:, head : head + length], axis=1)
            window_bytes = np.zeros(
                (self.num_paths, num_words * WORD_BYTES), dtype=np.uint8
            )
            window_bytes[:, : packed.shape[1]] = packed
            window = window_bytes.view(np.uint64)
        return PackedBackend(window, length)


class DenseBackend:
    """The original boolean ``(T, paths)`` store — reference semantics.

    Kept as the executable specification for the packed kernels (the
    equivalence suite checks every query agrees between backends) and for
    callers that want the plain matrix without the packing round-trip.
    """

    name = "dense"

    def __init__(self, congested: np.ndarray) -> None:
        congested = np.asarray(congested, dtype=bool)
        if congested.ndim != 2:
            raise ValueError("DenseBackend expects a 2-D (T, paths) matrix")
        self._congested = congested

    @classmethod
    def from_dense(cls, congested: np.ndarray) -> "DenseBackend":
        return cls(congested)

    @property
    def num_intervals(self) -> int:
        return self._congested.shape[0]

    @property
    def num_paths(self) -> int:
        return self._congested.shape[1]

    def dense(self) -> np.ndarray:
        return self._congested

    def congested_in_interval(self, interval: int) -> np.ndarray:
        if not 0 <= interval < self.num_intervals:
            raise IndexError(f"interval {interval} outside horizon")
        return self._congested[interval]

    def congestion_counts(self) -> np.ndarray:
        return self._congested.sum(axis=0, dtype=np.int64)

    def all_good_counts(self, path_sets: Sequence[Sequence[int]]) -> np.ndarray:
        counts = np.empty(len(path_sets), dtype=np.int64)
        total = self.num_intervals
        for i, path_set in enumerate(path_sets):
            indices = list(path_set)
            if not indices:
                counts[i] = total
                continue
            congested_any = self._congested[:, indices].any(axis=1)
            counts[i] = total - int(congested_any.sum())
        return counts

    def slice_intervals(self, start: int, stop: int) -> "DenseBackend":
        if not 0 <= start <= stop <= self.num_intervals:
            raise IndexError(f"window [{start}, {stop}) outside horizon")
        return DenseBackend(self._congested[start:stop])
