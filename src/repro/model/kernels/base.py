"""The frequency-kernel contract shared by every implementation.

A kernel is a stateless pair of word-level loops over packed uint64
observation words (see :mod:`repro.model.packed` for the bit layout).
Implementations must accept *strided* word matrices — ring-buffer window
views are non-contiguous column slices — and must be bit-identical to the
canonical numpy kernel on every input: kernels trade wall clock, never
results.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class FrequencyKernel:
    """Word-level popcount loops behind the packed observation backend.

    Attributes
    ----------
    name:
        Registry key (``"numpy"`` / ``"numba"``).
    releases_gil:
        True when :meth:`union_popcounts` runs without holding the GIL,
        which lets the campaign runner shard sweeps across threads
        (``executor="thread"``) instead of processes.
    description:
        One line for the ``kernels list`` CLI.
    """

    name: str = "abstract"
    releases_gil: bool = False
    description: str = ""

    def is_available(self) -> bool:
        """Whether this kernel can serve queries in this interpreter."""
        raise NotImplementedError

    def unavailable_reason(self) -> str:
        """Human-readable reason when :meth:`is_available` is false."""
        return ""

    def congestion_counts(self, words: np.ndarray) -> np.ndarray:
        """Per-row popcount sums: congested-interval counts per path.

        ``words`` is ``(num_paths, num_words)`` uint64, possibly strided.
        Returns int64 of shape ``(num_paths,)``.
        """
        raise NotImplementedError

    def union_popcounts(
        self,
        words: np.ndarray,
        indices: np.ndarray,
        lengths: np.ndarray,
        scratch: Dict[str, np.ndarray],
    ) -> np.ndarray:
        """Popcount of the OR-union of each path set's rows.

        Parameters
        ----------
        words:
            ``(num_paths, num_words)`` uint64 word store, possibly strided.
        indices:
            ``(num_sets, widest)`` intp member matrix; row ``i``'s first
            ``lengths[i]`` entries are real path rows, the rest are padded
            with the dummy value ``num_paths`` (an implicit all-good row).
        lengths:
            ``(num_sets,)`` int64 true member counts (``0`` for an empty
            set, whose union popcounts to zero).
        scratch:
            Backend-owned dict for kernel-managed caches tied to this word
            store (the numpy kernel keeps its dummy-padded copy of
            ``words`` here so repeated batches pay the copy once). Cleared
            by the backend whenever the store crosses a pickle boundary.

        Returns
        -------
        int64 array of shape ``(num_sets,)`` — congested-in-any interval
        counts; the caller derives all-good counts as ``T - result``.
        """
        raise NotImplementedError
