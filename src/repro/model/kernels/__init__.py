"""Pluggable frequency kernels: the packed backend's hot loops, swappable.

Every estimator in this package bottoms out in two word-level loops over
the bit-packed observation store (:mod:`repro.model.packed`):

* the **union popcount** — gather a path set's uint64 rows, OR them, and
  popcount the union (the batched Eq. 1 numerator,
  ``PackedBackend.all_good_counts``);
* the **row popcount** — per-path congested-interval counts
  (``PackedBackend.congestion_counts``).

This module puts those loops behind a small kernel interface with two
implementations:

* :class:`~repro.model.kernels.numpy_kernel.NumpyKernel` — the canonical
  vectorised kernel (chunked gather + ``np.bitwise_or.reduce`` +
  ``np.bitwise_count``). Always available; the golden-equivalence suite
  pins its results as the reference bits.
* :class:`~repro.model.kernels.numba_kernel.NumbaKernel` — optional
  compiled kernel: ``@njit(nogil=True, cache=True)`` fused word-level
  loops with no intermediate ``(chunk, widest, words)`` cube. Because it
  releases the GIL, the campaign runner can shard sweeps across
  *threads* (zero-copy, no pickling) instead of processes — see
  ``executor="thread"`` in :mod:`repro.runner.pool`.

Selection is environment-driven (``REPRO_KERNEL=auto|numpy|numba``) with a
programmatic override (:func:`set_kernel` / :func:`use_kernel`). ``auto``
(the default) picks the compiled kernel when numba imports and compiles,
and degrades silently to numpy otherwise; asking for ``numba`` explicitly
when it cannot run falls back to numpy with a single warning instead of
failing the run. Both kernels accept strided word matrices (ring-buffer
window views) and are bit-identical on every input — swapping kernels can
never change a result, only its wall clock.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.model.kernels.base import FrequencyKernel
from repro.model.kernels.numba_kernel import NumbaKernel
from repro.model.kernels.numpy_kernel import NumpyKernel

#: Environment variable naming the kernel to use (``auto``/``numpy``/``numba``).
KERNEL_ENV = "REPRO_KERNEL"

#: The auto-selection pseudo-name.
AUTO = "auto"

#: Registered kernels by name, in preference order for ``auto``
#: (first available wins, so the compiled kernel is preferred).
KERNELS: Dict[str, FrequencyKernel] = {
    kernel.name: kernel for kernel in (NumbaKernel(), NumpyKernel())
}

#: Programmatic override; takes precedence over the environment.
_override: Optional[str] = None

#: Memo of the last resolution: (requested name, resolved kernel).
_resolved: Optional[tuple] = None

#: Requested-but-unavailable kernel names already warned about.
_warned: set = set()


def kernel_names() -> List[str]:
    """Registered kernel names in ``auto``-preference order."""
    return list(KERNELS)


def get_kernel(name: str) -> FrequencyKernel:
    """The registered kernel called ``name`` (available or not)."""
    try:
        return KERNELS[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; expected one of "
            f"{[AUTO, *KERNELS]}"
        ) from None


def requested_kernel() -> str:
    """The current selection request: override, else ``$REPRO_KERNEL``, else auto."""
    if _override is not None:
        return _override
    return os.environ.get(KERNEL_ENV, AUTO) or AUTO


def _resolve(requested: str) -> FrequencyKernel:
    """Map a selection request onto an available kernel, warning on fallback."""
    if requested == AUTO:
        for kernel in KERNELS.values():
            if kernel.is_available():
                return kernel
        raise RuntimeError("no frequency kernel is available")  # pragma: no cover
    kernel = get_kernel(requested)
    if kernel.is_available():
        return kernel
    fallback = _resolve(AUTO)
    if requested not in _warned:
        _warned.add(requested)
        warnings.warn(
            f"frequency kernel {requested!r} is unavailable "
            f"({kernel.unavailable_reason()}); falling back to "
            f"{fallback.name!r}",
            RuntimeWarning,
            stacklevel=3,
        )
    return fallback


def active_kernel() -> FrequencyKernel:
    """The kernel every packed-backend query dispatches to right now.

    Resolution is memoised against the requested name, so the per-query
    cost is one ``os.environ`` read plus a tuple compare; changing
    ``$REPRO_KERNEL`` mid-process takes effect on the next query.
    """
    global _resolved
    requested = requested_kernel()
    if _resolved is None or _resolved[0] != requested:
        _resolved = (requested, _resolve(requested))
    return _resolved[1]


def set_kernel(name: Optional[str]) -> FrequencyKernel:
    """Programmatically pin the kernel (``None`` restores env/auto selection).

    Returns the kernel the next query will dispatch to. Unknown names
    raise; an unavailable-but-known name falls back like the environment
    path does (with its one-time warning).
    """
    global _override, _resolved
    if name is not None and name != AUTO:
        get_kernel(name)  # validate eagerly
    _override = name
    _resolved = None
    return active_kernel()


@contextmanager
def use_kernel(name: Optional[str]) -> Iterator[FrequencyKernel]:
    """Scope a kernel selection: restore the previous request on exit.

    ``None`` is a no-op scope (keeps the current selection), so call sites
    can thread an optional kernel name straight through.
    """
    if name is None:
        yield active_kernel()
        return
    previous = _override
    try:
        yield set_kernel(name)
    finally:
        set_kernel(previous)


def reset_kernel_selection() -> None:
    """Clear override, memoised resolution, and fallback-warning history.

    Test hook: kernels resolve freshly on the next query, and fallback
    warnings fire again.
    """
    global _override, _resolved
    _override = None
    _resolved = None
    _warned.clear()


def microbenchmark(
    kernel: FrequencyKernel,
    num_paths: int = 256,
    num_words: int = 32,
    num_sets: int = 512,
    widest: int = 8,
    repeats: int = 3,
    seed: int = 7,
) -> float:
    """Best-of-``repeats`` seconds for one batched union-popcount call.

    A synthetic workload shaped like a figure4-scale frequency batch:
    ``num_sets`` path sets of up to ``widest`` members over a
    ``(num_paths, num_words)`` word store. Compilation (for JIT kernels)
    is paid before timing starts.
    """
    from time import perf_counter

    rng = np.random.default_rng(seed)
    words = rng.integers(0, 2**63, size=(num_paths, num_words), dtype=np.uint64)
    lengths = rng.integers(1, widest + 1, size=num_sets).astype(np.int64)
    # Pad with the dummy all-good row index (num_paths), per the contract.
    indices = np.full((num_sets, widest), num_paths, dtype=np.intp)
    for i, length in enumerate(lengths):
        indices[i, :length] = rng.choice(num_paths, size=length, replace=False)
    scratch: dict = {}
    kernel.union_popcounts(words, indices, lengths, scratch)  # warm-up / JIT
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = perf_counter()
        kernel.union_popcounts(words, indices, lengths, scratch)
        best = min(best, perf_counter() - start)
    return best


__all__ = [
    "AUTO",
    "KERNEL_ENV",
    "KERNELS",
    "FrequencyKernel",
    "NumbaKernel",
    "NumpyKernel",
    "active_kernel",
    "get_kernel",
    "kernel_names",
    "microbenchmark",
    "requested_kernel",
    "reset_kernel_selection",
    "set_kernel",
    "use_kernel",
]
