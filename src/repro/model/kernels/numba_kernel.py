"""Optional compiled frequency kernel: fused GIL-free word loops.

When numba is importable, the union-popcount loop compiles to native code
with ``@njit(nogil=True, cache=True)``: per path set, member rows are
OR-merged word by word into one reused ``(num_words,)`` union buffer and
popcounted with a SWAR reduction — no dummy-padded copy of the word store
and no intermediate ``(chunk, widest, words)`` gather cube. Because the
compiled loop drops the GIL, many such loops run truly concurrently on one
interpreter, which is what makes the runner's thread-shard mode
(``executor="thread"``) a real speedup.

When numba is absent — or the JIT compile fails (unsupported platform,
broken cache dir) — the kernel reports itself unavailable and the
dispatcher degrades to the numpy kernel; nothing in this module raises at
import time.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.model.kernels.base import FrequencyKernel

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    NUMBA_VERSION: Optional[str] = numba.__version__
    _IMPORT_ERROR: Optional[str] = None
except Exception as exc:  # ImportError, or a broken install raising at import
    numba = None
    NUMBA_VERSION = None
    _IMPORT_ERROR = f"{type(exc).__name__}: {exc}"


def _compile_kernels():
    """Build the jitted loops; called lazily, at most once per process.

    Returns ``(congestion_counts, union_popcounts)`` as compiled
    dispatchers. Raises whatever numba raises on an unsupported setup —
    the caller converts that into unavailability.
    """
    from numba import njit

    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h01 = np.uint64(0x0101010101010101)
    one = np.uint64(1)
    two = np.uint64(2)
    four = np.uint64(4)
    fifty_six = np.uint64(56)

    @njit(nogil=True, cache=True, inline="always")
    def popcount64(x):
        # SWAR popcount; uint64 arithmetic wraps mod 2**64 like C.
        x = x - ((x >> one) & m1)
        x = (x & m2) + ((x >> two) & m2)
        x = (x + (x >> four)) & m4
        return np.int64((x * h01) >> fifty_six)

    @njit(nogil=True, cache=True)
    def congestion_counts(words):
        num_paths, num_words = words.shape
        counts = np.empty(num_paths, dtype=np.int64)
        for p in range(num_paths):
            total = np.int64(0)
            for w in range(num_words):
                total += popcount64(words[p, w])
            counts[p] = total
        return counts

    @njit(nogil=True, cache=True)
    def union_popcounts(words, indices, lengths):
        num_sets = indices.shape[0]
        num_words = words.shape[1]
        counts = np.empty(num_sets, dtype=np.int64)
        union = np.empty(num_words, dtype=np.uint64)
        for i in range(num_sets):
            for w in range(num_words):
                union[w] = np.uint64(0)
            for j in range(lengths[i]):
                row = indices[i, j]
                for w in range(num_words):
                    union[w] |= words[row, w]
            total = np.int64(0)
            for w in range(num_words):
                total += popcount64(union[w])
            counts[i] = total
        return counts

    # Force specialisation now so availability probing surfaces compile
    # failures here rather than mid-sweep on the first real query.
    probe = np.zeros((2, 1), dtype=np.uint64)
    congestion_counts(probe)
    union_popcounts(
        probe,
        np.zeros((1, 1), dtype=np.intp),
        np.ones(1, dtype=np.int64),
    )
    return congestion_counts, union_popcounts


class NumbaKernel(FrequencyKernel):
    """``@njit(nogil=True, cache=True)`` fused union-popcount loops."""

    name = "numba"
    releases_gil = True
    description = (
        "compiled fused word loops, releases the GIL "
        "(enables thread-shard execution)"
    )

    def __init__(self) -> None:
        self._compiled = None
        self._compile_error: Optional[str] = None

    def _ensure_compiled(self) -> bool:
        if self._compiled is not None:
            return True
        if numba is None or self._compile_error is not None:
            return False
        try:
            self._compiled = _compile_kernels()
        except Exception as exc:  # pragma: no cover - env-specific JIT failure
            self._compile_error = f"{type(exc).__name__}: {exc}"
            return False
        return True

    def is_available(self) -> bool:
        return self._ensure_compiled()

    def unavailable_reason(self) -> str:
        if numba is None:
            return f"numba is not importable ({_IMPORT_ERROR})"
        if self._compile_error is not None:
            return f"JIT compilation failed ({self._compile_error})"
        return ""

    def congestion_counts(self, words: np.ndarray) -> np.ndarray:
        if not self._ensure_compiled():  # pragma: no cover - guarded upstream
            raise RuntimeError(f"numba kernel unavailable: {self.unavailable_reason()}")
        return self._compiled[0](words)

    def union_popcounts(
        self,
        words: np.ndarray,
        indices: np.ndarray,
        lengths: np.ndarray,
        scratch: Dict[str, np.ndarray],
    ) -> np.ndarray:
        if not self._ensure_compiled():  # pragma: no cover - guarded upstream
            raise RuntimeError(f"numba kernel unavailable: {self.unavailable_reason()}")
        return self._compiled[1](words, indices, lengths)
