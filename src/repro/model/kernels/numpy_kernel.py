"""The canonical vectorised frequency kernel.

This is the packed backend's original hot loop, extracted verbatim: a
chunked fancy-index gather over a dummy-padded word store, a
``np.bitwise_or.reduce`` over the member axis, and ``np.bitwise_count``
over the union. It is always available and its outputs are the reference
bits every other kernel must reproduce exactly.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.model.kernels.base import FrequencyKernel

#: Bytes per uint64 storage word (mirrors :data:`repro.model.packed.WORD_BYTES`).
_WORD_BYTES = 8

#: Working-set bound (bytes) for one gathered batch chunk: the padded
#: ``(chunk, widest, words)`` uint64 cube *plus* the ``(chunk, widest)``
#: index block that drives the gather. Sized to stay L2-resident.
GATHER_WORKING_SET_BYTES = 1 << 21

#: Floor on the batch chunk. Without it, a single very wide path set
#: (``widest * words * 8 > GATHER_WORKING_SET_BYTES``) degenerated the
#: batch to ``chunk=1`` — one reduce call per set, all Python overhead.
MIN_GATHER_CHUNK = 16


def gather_chunk(widest: int, num_words: int, index_itemsize: int) -> int:
    """Sets per gather chunk under the working-set bound, floored.

    Accounts for both the gathered uint64 cube and the index cube's own
    dtype (``np.intp``), which the old hard-coded heuristic ignored.
    """
    row_bytes = max(1, widest) * (num_words * _WORD_BYTES + index_itemsize)
    return max(MIN_GATHER_CHUNK, GATHER_WORKING_SET_BYTES // max(1, row_bytes))


class NumpyKernel(FrequencyKernel):
    """Chunked gather + OR-reduce + popcount on numpy ufuncs."""

    name = "numpy"
    releases_gil = False
    description = (
        "vectorised gather + OR-reduce + popcount (canonical, always available)"
    )

    def is_available(self) -> bool:
        return True

    def congestion_counts(self, words: np.ndarray) -> np.ndarray:
        return np.bitwise_count(words).sum(axis=1, dtype=np.int64)

    def union_popcounts(
        self,
        words: np.ndarray,
        indices: np.ndarray,
        lengths: np.ndarray,
        scratch: Dict[str, np.ndarray],
    ) -> np.ndarray:
        # The padded copy appends one all-zero (all-good) dummy row the
        # index matrix's padding points at — a no-op under OR — so the
        # whole ragged batch gathers as one rectangular cube. Cached in
        # the backend's scratch dict across batches.
        padded = scratch.get("words_padded")
        if padded is None:
            padded = np.concatenate(
                [words, np.zeros((1, words.shape[1]), dtype=np.uint64)]
            )
            scratch["words_padded"] = padded
        num_sets, widest = indices.shape
        counts = np.empty(num_sets, dtype=np.int64)
        chunk = gather_chunk(widest, words.shape[1], indices.itemsize)
        for lo in range(0, num_sets, chunk):
            block = indices[lo : lo + chunk]
            union = np.bitwise_or.reduce(padded[block], axis=1)
            counts[lo : lo + chunk] = np.bitwise_count(union).sum(
                axis=1, dtype=np.int64
            )
        return counts
