"""Assumptions, conditions, and the Table 2 matrix.

The paper distinguishes *assumptions* (statements that cannot be tested given
``E*`` and ``P*``) from *conditions* (statements that can). This module
enumerates both, provides executable checkers for the two conditions, and
reproduces Table 2 — the per-algorithm matrix of inaccuracy sources.
"""

from __future__ import annotations

from enum import Enum
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.topology.graph import Network


class Assumption(Enum):
    """Untestable assumptions used by tomography algorithms (Section 2)."""

    SEPARABILITY = "Separability"
    E2E_MONITORING = "E2E Monitoring"
    HOMOGENEITY = "Homogeneity"
    INDEPENDENCE = "Independence"
    CORRELATION_SETS = "Correlation Sets"


class Condition(Enum):
    """Testable conditions over ``E*`` and ``P*`` (Section 2)."""

    IDENTIFIABILITY = "Identifiability"
    IDENTIFIABILITY_PP = "Identifiability++"


def check_identifiability(network: Network) -> List[Tuple[int, int]]:
    """Check Condition 1: any two links are not traversed by the same paths.

    Returns the list of violating link pairs (empty when the condition
    holds). Two links traversed by exactly the same paths are mutually
    indistinguishable from path observations.
    """
    signature: Dict[FrozenSet[int], int] = {}
    violations: List[Tuple[int, int]] = []
    for link in range(network.num_links):
        paths = network.paths_covering([link])
        if paths in signature:
            violations.append((signature[paths], link))
        else:
            signature[paths] = link
    return violations


def _correlation_subsets(
    network: Network, max_size: Optional[int]
) -> List[FrozenSet[int]]:
    subsets: List[FrozenSet[int]] = []
    for correlation_set in network.correlation_sets:
        members = sorted(correlation_set)
        top = len(members) if max_size is None else min(max_size, len(members))
        for size in range(1, top + 1):
            subsets.extend(frozenset(c) for c in combinations(members, size))
    return subsets


def check_identifiability_pp(
    network: Network, max_subset_size: Optional[int] = None
) -> List[Tuple[FrozenSet[int], FrozenSet[int]]]:
    """Check Condition 2: no two correlation subsets share the same paths.

    Returns the violating pairs of correlation subsets (empty when the
    condition holds up to ``max_subset_size``). In the paper's Fig. 1
    Case 2, ``{e1, e4}`` and ``{e2, e3}`` are both traversed by
    ``{p1, p2, p3}``, so the condition fails.

    Parameters
    ----------
    max_subset_size:
        Bound on the enumerated subset size. The full check is exponential
        in the size of the largest correlation set; experiments typically
        bound it to the configured estimator subset size.
    """
    signature: Dict[FrozenSet[int], FrozenSet[int]] = {}
    violations: List[Tuple[FrozenSet[int], FrozenSet[int]]] = []
    for subset in _correlation_subsets(network, max_subset_size):
        paths = network.paths_covering(subset)
        if paths in signature and signature[paths] != subset:
            violations.append((signature[paths], subset))
        else:
            signature.setdefault(paths, subset)
    return violations


#: Table 2 of the paper: per algorithm (and per Bayesian step), which
#: assumptions, conditions, and extra approximations are sources of
#: inaccuracy. Keys are column labels; values are row-label sets.
TABLE2_MATRIX: Dict[str, FrozenSet[str]] = {
    "Sparsity": frozenset(
        {
            Assumption.SEPARABILITY.value,
            Assumption.E2E_MONITORING.value,
            Assumption.HOMOGENEITY.value,
            Condition.IDENTIFIABILITY.value,
            "Other approx./heuristic",
        }
    ),
    "Bayesian-Indep. Step 1": frozenset(
        {
            Assumption.SEPARABILITY.value,
            Assumption.E2E_MONITORING.value,
            Assumption.INDEPENDENCE.value,
            Condition.IDENTIFIABILITY.value,
        }
    ),
    "Bayesian-Indep. Step 2": frozenset(
        {
            Assumption.SEPARABILITY.value,
            Assumption.E2E_MONITORING.value,
            Assumption.INDEPENDENCE.value,
            Condition.IDENTIFIABILITY.value,
            "Other approx./heuristic",
        }
    ),
    "Bayesian-Corr. Step 1": frozenset(
        {
            Assumption.SEPARABILITY.value,
            Assumption.E2E_MONITORING.value,
            Assumption.CORRELATION_SETS.value,
            Condition.IDENTIFIABILITY_PP.value,
        }
    ),
    "Bayesian-Corr. Step 2": frozenset(
        {
            Assumption.SEPARABILITY.value,
            Assumption.E2E_MONITORING.value,
            Assumption.CORRELATION_SETS.value,
            Condition.IDENTIFIABILITY_PP.value,
            "Other approx./heuristic",
        }
    ),
}

#: Row order of Table 2 as printed in the paper.
TABLE2_ROWS: Tuple[str, ...] = (
    Assumption.SEPARABILITY.value,
    Assumption.E2E_MONITORING.value,
    Assumption.HOMOGENEITY.value,
    Assumption.INDEPENDENCE.value,
    Assumption.CORRELATION_SETS.value,
    Condition.IDENTIFIABILITY.value,
    Condition.IDENTIFIABILITY_PP.value,
    "Other approx./heuristic",
)


def table2_rows() -> List[Tuple[str, Dict[str, bool]]]:
    """Render Table 2 as (row label, {column: checked}) entries."""
    return [
        (row, {column: row in sources for column, sources in TABLE2_MATRIX.items()})
        for row in TABLE2_ROWS
    ]
