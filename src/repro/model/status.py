"""Boolean status conventions of Section 2.

Link status ``X_e(t)`` and path status ``Y_p(t)`` are 0 for *good* and 1 for
*congested*. The simulator emits these as boolean numpy matrices indexed by
(interval, link) and (interval, path); :class:`ObservationMatrix` wraps the
path-status matrix with the empirical frequency queries every
probability-computation algorithm consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Sequence

import numpy as np

#: Status value for a good link or path (``X = 0`` / ``Y = 0``).
GOOD = 0
#: Status value for a congested link or path (``X = 1`` / ``Y = 1``).
CONGESTED = 1


@dataclass(frozen=True)
class IntervalRecord:
    """Ground truth and observation for a single time interval ``t``.

    Attributes
    ----------
    interval:
        The interval index ``t``.
    congested_links:
        The true congested link set ``E^c(t)``.
    congested_paths:
        The observed congested path set ``P^c(t)``.
    """

    interval: int
    congested_links: FrozenSet[int]
    congested_paths: FrozenSet[int]


class ObservationMatrix:
    """Path observations over ``T`` intervals with frequency queries.

    Parameters
    ----------
    congested:
        Boolean matrix of shape (T, num_paths); ``congested[t, p]`` is true
        iff path ``p`` was observed congested during interval ``t``
        (``Y_p(t) = 1``).
    """

    def __init__(self, congested: np.ndarray) -> None:
        congested = np.asarray(congested, dtype=bool)
        if congested.ndim != 2:
            raise ValueError("ObservationMatrix expects a 2-D (T, paths) matrix")
        self._congested = congested

    @property
    def num_intervals(self) -> int:
        """The number of observed intervals ``T``."""
        return self._congested.shape[0]

    @property
    def num_paths(self) -> int:
        """The number of monitored paths."""
        return self._congested.shape[1]

    @property
    def matrix(self) -> np.ndarray:
        """The underlying boolean (T, paths) congestion matrix (read-only)."""
        return self._congested

    def congested_paths(self, interval: int) -> FrozenSet[int]:
        """The congested path set ``P^c(t)`` for interval ``interval``."""
        return frozenset(np.flatnonzero(self._congested[interval]).tolist())

    def path_congestion_frequency(self) -> np.ndarray:
        """Empirical ``P(Y_p = 1)`` per path, shape (num_paths,)."""
        return self._congested.mean(axis=0)

    def all_good_frequency(self, path_set: Iterable[int]) -> float:
        """Empirical probability that every path in ``path_set`` is good.

        This is the left-hand side of the paper's Eq. 1,
        ``P(intersection_{p in P} Y_p = 0)``, estimated over the ``T``
        observed intervals. The empty set has frequency 1.
        """
        indices = sorted(set(path_set))
        if not indices:
            return 1.0
        good = ~self._congested[:, indices]
        return float(good.all(axis=1).mean())

    def always_good_paths(self, tolerance: float = 0.0) -> FrozenSet[int]:
        """Paths (effectively) never observed congested.

        Used to prune potentially congested correlation subsets
        (Section 5.2). With a noisy E2E monitor (Assumption 2 is imperfect:
        "probing ... may incur false negatives and false positives"), a path
        whose links are all good can still flip to congested in a few
        intervals; ``tolerance`` declares a path always-good when its
        congestion frequency is at most that fraction, so that monitoring
        noise does not void the pruning.
        """
        if not 0.0 <= tolerance < 1.0:
            raise ValueError("tolerance must be in [0, 1)")
        frequency = self._congested.mean(axis=0)
        return frozenset(np.flatnonzero(frequency <= tolerance).tolist())

    def always_congested_paths(self, tolerance: float = 0.0) -> FrozenSet[int]:
        """Paths congested in (effectively) every interval.

        Their all-good frequency is 0 (or tiny), so no reliable Eq. 1
        equation can use them; ``tolerance`` mirrors
        :meth:`always_good_paths`.
        """
        if not 0.0 <= tolerance < 1.0:
            raise ValueError("tolerance must be in [0, 1)")
        frequency = self._congested.mean(axis=0)
        return frozenset(np.flatnonzero(frequency >= 1.0 - tolerance).tolist())
