"""Boolean status conventions of Section 2.

Link status ``X_e(t)`` and path status ``Y_p(t)`` are 0 for *good* and 1 for
*congested*. The simulator emits these as boolean numpy matrices indexed by
(interval, link) and (interval, path); :class:`ObservationMatrix` wraps the
path-status matrix with the empirical frequency queries every
probability-computation algorithm consumes.

Storage is columnar and bit-packed by default (:mod:`repro.model.packed`):
path statuses live as ``uint64`` words, and the hot query — the empirical
all-good frequency of a path set, Eq. 1's left-hand side — is an
OR-reduction over packed rows plus a popcount, batched over many path sets
at once via :meth:`ObservationMatrix.all_good_frequencies`. The dense
boolean backend remains available (``backend="dense"``) for tests and as
the reference semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Sequence, Union

import numpy as np

from repro.model.packed import DenseBackend, PackedBackend

#: Status value for a good link or path (``X = 0`` / ``Y = 0``).
GOOD = 0
#: Status value for a congested link or path (``X = 1`` / ``Y = 1``).
CONGESTED = 1

_BACKENDS = {"packed": PackedBackend, "dense": DenseBackend}


@dataclass(frozen=True)
class IntervalRecord:
    """Ground truth and observation for a single time interval ``t``.

    Attributes
    ----------
    interval:
        The interval index ``t``.
    congested_links:
        The true congested link set ``E^c(t)``.
    congested_paths:
        The observed congested path set ``P^c(t)``.
    """

    interval: int
    congested_links: FrozenSet[int]
    congested_paths: FrozenSet[int]


class ObservationMatrix:
    """Path observations over ``T`` intervals with frequency queries.

    Parameters
    ----------
    congested:
        Boolean matrix of shape (T, num_paths); ``congested[t, p]`` is true
        iff path ``p`` was observed congested during interval ``t``
        (``Y_p(t) = 1``). To wrap an already-constructed storage backend
        without a dense round-trip, use :meth:`from_backend` instead.
    backend:
        ``"packed"`` (default) stores statuses as uint64 words and answers
        frequency queries with popcount kernels; ``"dense"`` keeps the
        boolean matrix and scans it (reference semantics).
    """

    def __init__(
        self,
        congested: Union[np.ndarray, Sequence],
        backend: str = "packed",
    ) -> None:
        try:
            factory = _BACKENDS[backend]
        except KeyError:
            raise ValueError(
                f"unknown observation backend {backend!r}; "
                f"expected one of {sorted(_BACKENDS)}"
            ) from None
        congested = np.asarray(congested, dtype=bool)
        if congested.ndim != 2:
            raise ValueError("ObservationMatrix expects a 2-D (T, paths) matrix")
        self._backend = factory.from_dense(congested)

    @classmethod
    def from_backend(
        cls, backend: Union[PackedBackend, DenseBackend]
    ) -> "ObservationMatrix":
        """Wrap an existing storage backend without a dense round-trip.

        This is how the simulator hands over observations it packed while
        generating them, so large horizons never materialise the full
        boolean matrix.
        """
        matrix = cls.__new__(cls)
        matrix._backend = backend
        return matrix

    @property
    def backend_name(self) -> str:
        """Name of the active storage backend (``"packed"`` or ``"dense"``)."""
        return self._backend.name

    @property
    def num_intervals(self) -> int:
        """The number of observed intervals ``T``."""
        return self._backend.num_intervals

    @property
    def num_paths(self) -> int:
        """The number of monitored paths."""
        return self._backend.num_paths

    @property
    def matrix(self) -> np.ndarray:
        """The boolean (T, paths) congestion matrix (read-only).

        With the packed backend this materialises the dense matrix on
        demand; prefer the frequency queries, which run on packed words.
        """
        return self._backend.dense()

    def congested_paths(self, interval: int) -> FrozenSet[int]:
        """The congested path set ``P^c(t)`` for interval ``interval``."""
        mask = self._backend.congested_in_interval(interval)
        return frozenset(np.flatnonzero(mask).tolist())

    def path_congestion_frequency(self) -> np.ndarray:
        """Empirical ``P(Y_p = 1)`` per path, shape (num_paths,)."""
        total = self.num_intervals
        counts = self._backend.congestion_counts()
        if total == 0:
            return np.zeros(self.num_paths)
        return counts / float(total)

    def all_good_frequency(self, path_set: Iterable[int]) -> float:
        """Empirical probability that every path in ``path_set`` is good.

        This is the left-hand side of the paper's Eq. 1,
        ``P(intersection_{p in P} Y_p = 0)``, estimated over the ``T``
        observed intervals. The empty set has frequency 1.
        """
        indices = sorted(set(path_set))
        if not indices:
            return 1.0
        counts = self._backend.all_good_counts([indices])
        return float(counts[0] / self.num_intervals)

    def all_good_frequencies(self, path_sets: Sequence[Iterable[int]]) -> np.ndarray:
        """Batched :meth:`all_good_frequency` over many path sets.

        One packed-kernel invocation answers the whole batch; this is the
        query the estimation stack routes every Eq. 1 evaluation through.
        Returns a float array of length ``len(path_sets)``.
        """
        if not len(path_sets):
            return np.zeros(0)
        normalized = [sorted(set(s)) for s in path_sets]
        counts = self._backend.all_good_counts(normalized)
        return counts / float(self.num_intervals)

    def always_good_paths(self, tolerance: float = 0.0) -> FrozenSet[int]:
        """Paths (effectively) never observed congested.

        Used to prune potentially congested correlation subsets
        (Section 5.2). With a noisy E2E monitor (Assumption 2 is imperfect:
        "probing ... may incur false negatives and false positives"), a path
        whose links are all good can still flip to congested in a few
        intervals; ``tolerance`` declares a path always-good when its
        congestion frequency is at most that fraction, so that monitoring
        noise does not void the pruning.
        """
        if not 0.0 <= tolerance < 1.0:
            raise ValueError("tolerance must be in [0, 1)")
        if self.num_intervals == 0:
            # An empty horizon observes nothing: no path qualifies as
            # always-good (matching the pre-packed NaN-comparison result).
            return frozenset()
        frequency = self.path_congestion_frequency()
        return frozenset(np.flatnonzero(frequency <= tolerance).tolist())

    def always_congested_paths(self, tolerance: float = 0.0) -> FrozenSet[int]:
        """Paths congested in (effectively) every interval.

        Their all-good frequency is 0 (or tiny), so no reliable Eq. 1
        equation can use them; ``tolerance`` mirrors
        :meth:`always_good_paths`.
        """
        if not 0.0 <= tolerance < 1.0:
            raise ValueError("tolerance must be in [0, 1)")
        if self.num_intervals == 0:
            return frozenset()
        frequency = self.path_congestion_frequency()
        return frozenset(np.flatnonzero(frequency >= 1.0 - tolerance).tolist())

    def slice_intervals(self, start: int, stop: int) -> "ObservationMatrix":
        """The window ``[start, stop)`` as a new :class:`ObservationMatrix`.

        Backed by the storage backend's own slicing — with packed words a
        word-aligned window is a column slice plus a tail mask, so windowed
        estimation never re-packs (or even materialises) the dense matrix.
        """
        return ObservationMatrix.from_backend(
            self._backend.slice_intervals(start, stop)
        )
