"""Plain-text table rendering for experiment reports and benchmarks.

The benchmark harness prints the same rows/series the paper's figures show;
this module provides the shared fixed-width formatting.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render a fixed-width table.

    Floats are formatted with ``float_format``; everything else with
    ``str``. Columns are sized to their widest cell.
    """
    rendered: List[List[str]] = [list(map(str, headers))]
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(float_format.format(cell))
            else:
                cells.append(str(cell))
        rendered.append(cells)
    widths = [
        max(len(line[column]) for line in rendered)
        for column in range(len(rendered[0]))
    ]
    lines = []
    for line_index, line in enumerate(rendered):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
        if line_index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
