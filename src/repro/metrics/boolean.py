"""Boolean-inference metrics (Section 3.2).

"During a particular time interval, the *detection rate* of an algorithm is
the fraction of congested links that the algorithm correctly identified as
congested; the *false positive rate* of an algorithm is the fraction of links
incorrectly identified as congested out of all links inferred as congested."
Each reported number is an average over the experiment's intervals (the paper
averages over 1000).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence

import numpy as np

from repro.inference.base import BooleanInferenceAlgorithm
from repro.simulation.experiment import ExperimentResult


def detection_rate(actual: FrozenSet[int], inferred: FrozenSet[int]) -> Optional[float]:
    """Fraction of truly congested links identified; None if none congested."""
    if not actual:
        return None
    return len(actual & inferred) / len(actual)


def false_positive_rate(
    actual: FrozenSet[int], inferred: FrozenSet[int]
) -> Optional[float]:
    """Fraction of inferred links that were good; None if nothing inferred."""
    if not inferred:
        return None
    return len(inferred - actual) / len(inferred)


@dataclass
class BooleanMetrics:
    """Interval-averaged inference quality.

    Attributes
    ----------
    algorithm:
        Name of the evaluated algorithm.
    detection_rate:
        Mean over intervals with at least one congested link.
    false_positive_rate:
        Mean over intervals where the algorithm inferred at least one link.
    intervals_scored:
        Number of intervals contributing to the detection-rate average.
    """

    algorithm: str
    detection_rate: float
    false_positive_rate: float
    intervals_scored: int

    def __str__(self) -> str:
        return (
            f"{self.algorithm}: detection={self.detection_rate:.3f} "
            f"false_positives={self.false_positive_rate:.3f} "
            f"({self.intervals_scored} intervals)"
        )


def summarize(
    algorithm: str,
    actual_sets: Sequence[FrozenSet[int]],
    inferred_sets: Sequence[FrozenSet[int]],
) -> BooleanMetrics:
    """Average per-interval rates over an experiment."""
    if len(actual_sets) != len(inferred_sets):
        raise ValueError("actual and inferred sequences differ in length")
    detections: List[float] = []
    false_positives: List[float] = []
    for actual, inferred in zip(actual_sets, inferred_sets):
        det = detection_rate(actual, inferred)
        if det is not None:
            detections.append(det)
        fpr = false_positive_rate(actual, inferred)
        if fpr is not None:
            false_positives.append(fpr)
    return BooleanMetrics(
        algorithm=algorithm,
        detection_rate=float(np.mean(detections)) if detections else 1.0,
        false_positive_rate=(
            float(np.mean(false_positives)) if false_positives else 0.0
        ),
        intervals_scored=len(detections),
    )


def evaluate_inference(
    algorithm: BooleanInferenceAlgorithm, result: ExperimentResult
) -> BooleanMetrics:
    """Run ``algorithm`` over an experiment and score it against the truth."""
    inferred = algorithm.infer_all(result.network, result.observations)
    actual = [result.congested_links(t) for t in range(result.num_intervals)]
    return summarize(algorithm.name, actual, inferred)
