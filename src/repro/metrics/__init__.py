"""Evaluation metrics — exactly the paper's definitions.

* Boolean inference (Section 3.2): per-interval **detection rate** (fraction
  of truly congested links identified) and **false-positive rate** (fraction
  of inferred links that were actually good), averaged over intervals.
* Probability computation (Section 5.4): per-link **absolute error** between
  the simulator-assigned and the estimated congestion probability, its mean
  over potentially congested links, and its CDF.
"""

from repro.metrics.boolean import (
    BooleanMetrics,
    detection_rate,
    evaluate_inference,
    false_positive_rate,
)
from repro.metrics.probability import (
    ProbabilityMetrics,
    absolute_errors,
    error_cdf,
    evaluate_estimator,
    subset_absolute_errors,
)
from repro.metrics.reporting import format_table

__all__ = [
    "BooleanMetrics",
    "detection_rate",
    "false_positive_rate",
    "evaluate_inference",
    "ProbabilityMetrics",
    "absolute_errors",
    "error_cdf",
    "evaluate_estimator",
    "subset_absolute_errors",
    "format_table",
]
