"""Probability-computation metrics (Section 5.4).

"For each link, we determine the absolute error between the actual
congestion probability (the one assigned by the simulator) and the one
inferred by each algorithm; we show the mean of the absolute error for all
potentially congested links."

Fig. 4(d) extends the same error to *correlation subsets*: the absolute
error of the congestion probability (all links of the subset congested) of
each identifiable correlation subset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.probability.base import ProbabilityEstimator
from repro.probability.pipeline import SharedFitWorkspace
from repro.probability.query import CongestionProbabilityModel
from repro.probability.subsets import potentially_congested_links
from repro.simulation.congestion import GroundTruth
from repro.simulation.experiment import ExperimentResult


def absolute_errors(
    model: CongestionProbabilityModel,
    ground_truth: GroundTruth,
    links: Iterable[int],
) -> np.ndarray:
    """Per-link ``|estimated - actual|`` congestion probability errors."""
    members = sorted(links)
    estimated = np.array([model.link_congestion_probability(e) for e in members])
    actual = np.array([ground_truth.marginal(e) for e in members])
    return np.abs(estimated - actual)


def subset_absolute_errors(
    model: CongestionProbabilityModel,
    ground_truth: GroundTruth,
    subsets: Sequence[FrozenSet[int]],
) -> np.ndarray:
    """Per-subset congestion-probability errors (Fig. 4(d)).

    The congestion probability of a subset is the probability that *all* its
    links are congested, obtained from the model and the ground truth by the
    same inclusion–exclusion, so the comparison is apples-to-apples.
    """
    errors = []
    for subset in subsets:
        estimated = model.prob_all_congested(subset)
        actual = ground_truth.prob_all_congested(subset)
        errors.append(abs(estimated - actual))
    return np.asarray(errors)


def error_cdf(errors: np.ndarray, points: int = 101) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of absolute errors on a fixed [0, 1] grid.

    Returns ``(x, F(x))`` with ``points`` grid values; Fig. 4(c) plots these
    curves ("the earlier the CDF hits the y = 100% line, the better").
    """
    grid = np.linspace(0.0, 1.0, points)
    if errors.size == 0:
        return grid, np.ones_like(grid)
    sorted_errors = np.sort(errors)
    cdf = np.searchsorted(sorted_errors, grid, side="right") / errors.size
    return grid, cdf


@dataclass
class ProbabilityMetrics:
    """Accuracy summary for one estimator on one experiment.

    Attributes
    ----------
    algorithm:
        Estimator name.
    mean_absolute_error:
        Mean per-link error over potentially congested links.
    errors:
        The raw per-link errors (for CDFs).
    subset_mean_absolute_error:
        Mean error over evaluated correlation subsets (None when subsets
        were not evaluated).
    num_links_scored:
        Number of potentially congested links contributing.
    """

    algorithm: str
    mean_absolute_error: float
    errors: np.ndarray
    subset_mean_absolute_error: Optional[float] = None
    num_links_scored: int = 0

    def cdf(self, points: int = 101) -> Tuple[np.ndarray, np.ndarray]:
        """CDF of the per-link errors (Fig. 4(c))."""
        return error_cdf(self.errors, points)

    def __str__(self) -> str:
        extra = (
            f" subsets={self.subset_mean_absolute_error:.3f}"
            if self.subset_mean_absolute_error is not None
            else ""
        )
        return (
            f"{self.algorithm}: mean_abs_err={self.mean_absolute_error:.3f}"
            f"{extra} ({self.num_links_scored} links)"
        )


def evaluate_estimator(
    estimator: ProbabilityEstimator,
    result: ExperimentResult,
    evaluate_subsets: bool = False,
    max_subset_size: int = 2,
    workspace: Optional[SharedFitWorkspace] = None,
) -> ProbabilityMetrics:
    """Fit ``estimator`` on an experiment and score it against ground truth.

    The scored link set is the potentially congested links under the
    estimator's own pruning tolerance, so all estimators sharing a config
    are compared on the same set (the paper scores "all potentially
    congested links").

    Parameters
    ----------
    evaluate_subsets:
        Also score the congestion probabilities of the *identifiable*
        correlation subsets of size 2..``max_subset_size`` (Fig. 4(d)).
    workspace:
        A trial's :class:`~repro.probability.pipeline.SharedFitWorkspace`;
        the fit then reuses the cell's warm frequency cache and equation
        arena instead of cold-starting (values are identical either way).
    """
    model = estimator.fit(result.network, result.observations, workspace=workspace)
    active = sorted(
        potentially_congested_links(
            result.network,
            result.observations,
            estimator.config.pruning_tolerance,
        )
    )
    errors = absolute_errors(model, result.ground_truth, active)
    subset_error: Optional[float] = None
    if evaluate_subsets:
        subsets = [
            subset
            for subset in model.subsets
            if 2 <= len(subset) <= max_subset_size and model.is_identifiable(subset)
        ]
        if subsets:
            subset_error = float(
                subset_absolute_errors(model, result.ground_truth, subsets).mean()
            )
    return ProbabilityMetrics(
        algorithm=estimator.name,
        mean_absolute_error=float(errors.mean()) if errors.size else 0.0,
        errors=errors,
        subset_mean_absolute_error=subset_error,
        num_links_scored=len(active),
    )
