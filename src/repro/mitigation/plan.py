"""Typed mitigation plans: what a policy decided, ready to apply or persist.

A :class:`MitigationPlan` is the only thing a
:class:`~repro.mitigation.policies.MitigationPolicy` may return: the links
it wants traffic steered away from (``target_links``) and the concrete
per-path route rewrites (``RouteChange``) realising that intent on the
monitored topology. Plans are pure data — deterministic functions of
(network, fitted model, parameters) — so they can be compared
bit-for-bit across executors, serialised to JSON next to campaign
results, and replayed through :func:`~repro.mitigation.apply.apply_plan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro.exceptions import MitigationError


@dataclass(frozen=True)
class RouteChange:
    """One path's route rewrite, with the model's predicted effect.

    Attributes
    ----------
    path:
        Index of the monitored path being rerouted.
    old_links, new_links:
        The route before and after, as link-index tuples.
    predicted_before, predicted_after:
        The fitted model's path congestion probability
        (``1 - P(all links good)``) on the old and new route — the score
        the policy acted on, recorded so false mitigations can be audited
        against ground truth later.
    """

    path: int
    old_links: Tuple[int, ...]
    new_links: Tuple[int, ...]
    predicted_before: float
    predicted_after: float

    def __post_init__(self) -> None:
        if self.path < 0:
            raise MitigationError(f"route change references path {self.path}")
        if not self.old_links or not self.new_links:
            raise MitigationError("route change needs non-empty old and new routes")
        if self.old_links == self.new_links:
            raise MitigationError(
                f"route change for path {self.path} does not change the route"
            )

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "old_links": list(self.old_links),
            "new_links": list(self.new_links),
            "predicted_before": self.predicted_before,
            "predicted_after": self.predicted_after,
        }


@dataclass(frozen=True)
class MitigationPlan:
    """A policy's decision: links to avoid plus the route rewrites doing so.

    Attributes
    ----------
    policy:
        Name of the policy that produced the plan.
    target_links:
        Links the plan routes traffic away from (sorted, unique). May be
        non-empty with no changes when every affected path was stuck
        (no alternate route existed).
    changes:
        Per-path rewrites, sorted by path index; at most one per path.
    metadata:
        Policy-specific diagnostics (scores, rejected candidates, ...).
        Values must be JSON-serialisable.
    """

    policy: str
    target_links: Tuple[int, ...] = ()
    changes: Tuple[RouteChange, ...] = ()
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        ordered_targets = tuple(sorted(set(self.target_links)))
        object.__setattr__(self, "target_links", ordered_targets)
        ordered = tuple(sorted(self.changes, key=lambda change: change.path))
        paths = [change.path for change in ordered]
        if len(set(paths)) != len(paths):
            raise MitigationError("plan contains two route changes for one path")
        object.__setattr__(self, "changes", ordered)

    @property
    def is_noop(self) -> bool:
        """Whether applying the plan leaves the topology untouched."""
        return not self.changes

    @property
    def paths_disturbed(self) -> int:
        """Number of monitored paths whose route the plan rewrites."""
        return len(self.changes)

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON form, stable across processes (sorted, plain types)."""
        return {
            "policy": self.policy,
            "target_links": list(self.target_links),
            "paths_disturbed": self.paths_disturbed,
            "changes": [change.to_json_dict() for change in self.changes],
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_json_dict(cls, raw: Mapping[str, Any]) -> "MitigationPlan":
        """Rebuild a plan persisted by :meth:`to_json_dict`."""
        return cls(
            policy=raw["policy"],
            target_links=tuple(raw.get("target_links", ())),
            changes=tuple(
                RouteChange(
                    path=change["path"],
                    old_links=tuple(change["old_links"]),
                    new_links=tuple(change["new_links"]),
                    predicted_before=change["predicted_before"],
                    predicted_after=change["predicted_after"],
                )
                for change in raw.get("changes", ())
            ),
            metadata=dict(raw.get("metadata", {})),
        )
