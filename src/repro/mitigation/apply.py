"""Apply a mitigation plan: rewrite monitored routes on the topology.

The simulated analogue of pushing new forwarding state: given a
:class:`~repro.mitigation.plan.MitigationPlan`, build a new
:class:`~repro.topology.graph.Network` with the same link set but the
planned routes substituted for the old ones. Ground truth congests
*links*, so the rewritten network can be re-simulated against the very
same :class:`~repro.simulation.congestion.GroundTruth` — the closed
loop's "re-run the scenario" step — and the post-action state re-estimated
through the ordinary staged pipeline.

Also home to the deterministic rerouting primitive policies share:
:func:`alternate_route`, a BFS over the logical-link graph that finds the
shortest route between two vertices avoiding a link set, breaking ties by
link index so plans are bit-identical across executors.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import MitigationError
from repro.mitigation.plan import MitigationPlan
from repro.obs import counter, histogram, span
from repro.obs.timer import Timer
from repro.topology.graph import Network, Path

#: vertex -> outgoing (link_index, dst_vertex), sorted by link index.
LinkAdjacency = Dict[int, List[Tuple[int, int]]]

_ROUTES_REWRITTEN = counter(
    "repro_mitigation_routes_rewritten_total",
    "Monitored-path routes rewritten by applied mitigation plans.",
)
_APPLY_SECONDS = histogram(
    "repro_mitigation_apply_seconds",
    "Wall time rebuilding the topology from a mitigation plan.",
)


def link_adjacency(network: Network) -> LinkAdjacency:
    """Outgoing-link adjacency of the logical-link graph.

    Neighbours are sorted by link index, which — together with FIFO BFS —
    makes :func:`alternate_route` fully deterministic.
    """
    adjacency: LinkAdjacency = {}
    for link in network.links:
        adjacency.setdefault(link.src, []).append((link.index, link.dst))
    for members in adjacency.values():
        members.sort()
    return adjacency


def alternate_route(
    network: Network,
    src: int,
    dst: int,
    avoid: Iterable[int],
    adjacency: Optional[LinkAdjacency] = None,
) -> Optional[Tuple[int, ...]]:
    """Shortest route from ``src`` to ``dst`` avoiding ``avoid`` links.

    BFS over vertices of the logical-link graph (unit hop cost), expanding
    neighbours in link-index order, so among equal-length routes the one
    using the smallest link indices wins — the same route on every host
    and executor. Returns the link-index tuple, or ``None`` when every
    route crosses an avoided link.
    """
    if adjacency is None:
        adjacency = link_adjacency(network)
    avoided = frozenset(avoid)
    if src == dst:
        return None
    parents: Dict[int, Tuple[int, int]] = {}  # vertex -> (prev vertex, link)
    seen = {src}
    queue = deque([src])
    while queue:
        vertex = queue.popleft()
        for link_index, neighbour in adjacency.get(vertex, ()):
            if link_index in avoided or neighbour in seen:
                continue
            seen.add(neighbour)
            parents[neighbour] = (vertex, link_index)
            if neighbour == dst:
                route: List[int] = []
                cursor = dst
                while cursor != src:
                    cursor, used = parents[cursor]
                    route.append(used)
                return tuple(reversed(route))
            queue.append(neighbour)
    return None


def path_endpoints(network: Network, path: Path) -> Tuple[int, int]:
    """The (source vertex, destination vertex) of a monitored path."""
    return (
        network.links[path.links[0]].src,
        network.links[path.links[-1]].dst,
    )


def _validate_route(
    network: Network, old: Path, new_links: Tuple[int, ...]
) -> None:
    """A rewritten route must be a connected walk over known links that
    keeps the old route's endpoints — anything else is a malformed plan,
    not a topology to silently build."""
    for link_index in new_links:
        if not 0 <= link_index < network.num_links:
            raise MitigationError(
                f"route change for path {old.index} references unknown "
                f"link {link_index}"
            )
    links = [network.links[e] for e in new_links]
    for previous, current in zip(links, links[1:]):
        if previous.dst != current.src:
            raise MitigationError(
                f"route change for path {old.index} is not connected at "
                f"link {current.index}"
            )
    old_src, old_dst = path_endpoints(network, old)
    if links[0].src != old_src or links[-1].dst != old_dst:
        raise MitigationError(
            f"route change for path {old.index} moves its endpoints "
            f"({links[0].src}->{links[-1].dst} instead of {old_src}->{old_dst})"
        )


def apply_plan(network: Network, plan: MitigationPlan) -> Network:
    """Rebuild ``network`` with the plan's route changes applied.

    Links (and hence correlation sets and the ground truth's link space)
    are untouched; only the monitored paths named by the plan get new
    routes. A no-op plan returns ``network`` itself, so downstream
    identity checks (``post is pre``) stay meaningful.

    Raises
    ------
    MitigationError
        When a change references an unknown path, does not match the
        path's current route, or proposes a disconnected/endpoint-moving
        route.
    """
    if plan.is_noop:
        return network
    with span(
        "mitigation.apply", policy=plan.policy, changes=len(plan.changes)
    ), Timer() as timer:
        replacements: Dict[int, Tuple[int, ...]] = {}
        for change in plan.changes:
            if not 0 <= change.path < network.num_paths:
                raise MitigationError(
                    f"plan references unknown path {change.path}"
                )
            current = network.paths[change.path]
            if tuple(current.links) != change.old_links:
                raise MitigationError(
                    f"plan is stale: path {change.path} routes via "
                    f"{current.links}, not {change.old_links}"
                )
            _validate_route(network, current, change.new_links)
            replacements[change.path] = change.new_links
        paths = [
            Path(index=path.index, links=replacements.get(path.index, path.links))
            for path in network.paths
        ]
        rebuilt = Network(
            links=list(network.links),
            paths=paths,
            name=f"{network.name}+{plan.policy}",
        )
    _ROUTES_REWRITTEN.inc(len(plan.changes))
    _APPLY_SECONDS.observe(timer.elapsed)
    return rebuilt


def routing_diversity(network: Network) -> float:
    """Fraction of monitored paths that can dodge at least one of their
    own links via an alternate route.

    A mitigation policy can only act where this is non-zero: the AS-level
    link graph contains exactly the links monitored paths traverse, so an
    instance without criss-crossing paths leaves every route stuck. Used
    to pick a substrate with mitigation headroom for bundled campaigns.
    """
    adjacency = link_adjacency(network)
    diverse = 0
    for path in network.paths:
        src, dst = path_endpoints(network, path)
        if any(
            alternate_route(network, src, dst, (e,), adjacency) is not None
            for e in path.links
        ):
            diverse += 1
    return diverse / max(1, network.num_paths)


def reroutable_paths(
    network: Network,
    drained: Iterable[int],
    adjacency: Optional[LinkAdjacency] = None,
) -> Tuple[Dict[int, Tuple[int, ...]], List[int]]:
    """Split the paths crossing ``drained`` into reroutable and stuck.

    Returns ``(reroutes, stuck)``: for every monitored path traversing a
    drained link, either its alternate route avoiding the whole drained
    set (``reroutes[path_index]``) or its index in ``stuck`` when no such
    route exists. The feasibility primitive of the CorrOpt-style search.
    """
    if adjacency is None:
        adjacency = link_adjacency(network)
    drained_set = frozenset(drained)
    reroutes: Dict[int, Tuple[int, ...]] = {}
    stuck: List[int] = []
    for path_index in sorted(network.paths_covering(drained_set)):
        path = network.paths[path_index]
        src, dst = path_endpoints(network, path)
        route = alternate_route(network, src, dst, drained_set, adjacency)
        if route is None:
            stuck.append(path_index)
        else:
            reroutes[path_index] = route
    return reroutes, stuck
