"""Closed-loop evaluation: estimate → mitigate → re-simulate → re-estimate.

The loop the whole package exists for. One iteration:

1. simulate the scenario and fit an estimator on the observations;
2. let a policy propose a plan from the *fitted* model (never the truth);
3. apply the plan, re-run the very same congestion process (same seed,
   same ground truth — rerouting changes paths, not links) on the
   rewritten topology;
4. re-estimate on the post-action observations and score the outcome.

Because the link-state draw is seed-paired, the pre/post comparison is a
paired experiment: the no-op policy reproduces the pre state exactly, and
any residual-congestion drop under a real policy is attributable to the
routing decision, not sampling noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.exceptions import EstimationError
from repro.metrics.probability import absolute_errors, evaluate_estimator
from repro.mitigation.apply import apply_plan
from repro.mitigation.plan import MitigationPlan
from repro.mitigation.policies import MitigationPolicy
from repro.obs import counter, span
from repro.probability.base import ProbabilityEstimator
from repro.probability.pipeline import SharedFitWorkspace
from repro.probability.query import CongestionProbabilityModel
from repro.probability.subsets import potentially_congested_links
from repro.simulation.experiment import ExperimentResult, run_experiment
from repro.simulation.probing import PathProber
from repro.simulation.scenarios import Scenario
from repro.topology.graph import Network

#: A true marginal at or below this counts as "was never congestable":
#: targeting such a link is a false mitigation (the model cried wolf).
FALSE_MITIGATION_EPS = 1e-9

_LOOPS_TOTAL = counter(
    "repro_mitigation_closed_loops_total",
    "Closed-loop evaluations completed, by policy.",
    labels=("policy",),
)


def path_congestion_rate(network: Network, link_states: np.ndarray) -> float:
    """Fraction of (interval, path) cells where the path crossed a
    congested link — the paper's path-level congestion signal, used here
    as the residual-congestion measure a mitigation is judged by."""
    incidence = network.incidence.astype(np.int32)  # (paths, links)
    counts = link_states.astype(np.int32) @ incidence.T  # (T, paths)
    return float((counts > 0).mean())


@dataclass(frozen=True)
class ClosedLoopReport:
    """Outcome of one closed-loop iteration.

    Attributes
    ----------
    scenario, policy, estimator:
        Labels of the three grid axes.
    pre_congestion_rate, post_congestion_rate:
        True path-congestion rate before and after acting (paired seeds).
    reduction:
        ``pre - post``; positive means the mitigation helped.
    paths_disturbed, num_paths:
        Routes rewritten vs. routes monitored.
    num_target_links:
        Links the plan steered traffic away from.
    false_mitigation_rate:
        Fraction of target links whose *true* congestion probability is
        (numerically) zero — actions taken on estimator hallucinations.
    pre_fit_error, post_fit_error:
        Mean absolute per-link error of the estimator before and after
        mitigation, over each run's potentially congested links.
    plan:
        The plan's JSON form, persisted next to campaign results.
    """

    scenario: str
    policy: str
    estimator: str
    pre_congestion_rate: float
    post_congestion_rate: float
    reduction: float
    paths_disturbed: int
    num_paths: int
    num_target_links: int
    false_mitigation_rate: float
    pre_fit_error: float
    post_fit_error: float
    plan: Mapping[str, Any] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "policy": self.policy,
            "estimator": self.estimator,
            "pre_congestion_rate": self.pre_congestion_rate,
            "post_congestion_rate": self.post_congestion_rate,
            "reduction": self.reduction,
            "paths_disturbed": self.paths_disturbed,
            "num_paths": self.num_paths,
            "num_target_links": self.num_target_links,
            "false_mitigation_rate": self.false_mitigation_rate,
            "pre_fit_error": self.pre_fit_error,
            "post_fit_error": self.post_fit_error,
            "plan": dict(self.plan),
        }


def _fit_error(
    model: CongestionProbabilityModel,
    experiment: ExperimentResult,
    tolerance: float,
) -> float:
    """Mean absolute error over the run's potentially congested links —
    the same scoring :func:`evaluate_estimator` applies, without refitting
    a model we already have."""
    active = sorted(
        potentially_congested_links(
            experiment.network, experiment.observations, tolerance
        )
    )
    errors = absolute_errors(model, experiment.ground_truth, active)
    return float(errors.mean()) if errors.size else 0.0


def run_closed_loop(
    scenario: Scenario,
    estimator: ProbabilityEstimator,
    policy: MitigationPolicy,
    num_intervals: int,
    seed: int,
    prober: Optional[PathProber] = None,
    oracle: bool = False,
    policy_params: Optional[Mapping[str, Any]] = None,
    pre_experiment: Optional[ExperimentResult] = None,
    pre_model: Optional[CongestionProbabilityModel] = None,
    workspace: Optional[SharedFitWorkspace] = None,
) -> ClosedLoopReport:
    """Run one estimate → mitigate → re-simulate → re-estimate iteration.

    ``seed`` must be the integer seed of the *pre* experiment: the post
    experiment re-runs with the same seed so the link-state draw is
    identical (rerouting changes paths, not links) and the comparison is
    paired. The ``pre_experiment`` / ``pre_model`` / ``workspace``
    injection points let campaign shards share the expensive pre pieces
    across the policies of one (scenario, estimator) cell.
    """
    with span(
        "mitigation.closed_loop",
        scenario=scenario.name,
        policy=policy.name,
        estimator=estimator.name,
    ):
        if pre_experiment is None:
            pre_experiment = run_experiment(
                scenario,
                num_intervals,
                prober=prober,
                random_state=seed,
                oracle=oracle,
            )
        if pre_model is None:
            pre_model = estimator.fit(
                pre_experiment.network,
                pre_experiment.observations,
                workspace=workspace,
            )
        plan = policy.propose(
            scenario.network, pre_model, **dict(policy_params or {})
        )
        post_network = apply_plan(scenario.network, plan)
        if plan.is_noop:
            post_experiment = pre_experiment
        else:
            post_scenario = Scenario(
                name=scenario.name,
                network=post_network,
                ground_truth=scenario.ground_truth,
                congestable=scenario.congestable,
            )
            post_experiment = run_experiment(
                post_scenario,
                num_intervals,
                prober=prober,
                random_state=seed,
                oracle=oracle,
            )
        report = score_closed_loop(
            scenario, plan, pre_experiment, pre_model, post_experiment, estimator
        )
    _LOOPS_TOTAL.inc(policy=policy.name)
    return report


def score_closed_loop(
    scenario: Scenario,
    plan: MitigationPlan,
    pre_experiment: ExperimentResult,
    pre_model: CongestionProbabilityModel,
    post_experiment: ExperimentResult,
    estimator: ProbabilityEstimator,
) -> ClosedLoopReport:
    """Score an already-run loop (separated out for tests and replay)."""
    pre_rate = path_congestion_rate(
        pre_experiment.network, pre_experiment.link_states
    )
    post_rate = path_congestion_rate(
        post_experiment.network, post_experiment.link_states
    )
    targets = plan.target_links
    if targets:
        false_hits = sum(
            1
            for e in targets
            if scenario.ground_truth.marginal(e) <= FALSE_MITIGATION_EPS
        )
        false_rate = false_hits / len(targets)
    else:
        false_rate = 0.0
    tolerance = estimator.config.pruning_tolerance
    pre_error = _fit_error(pre_model, pre_experiment, tolerance)
    if post_experiment is pre_experiment:
        post_error = pre_error
    else:
        try:
            post_metrics = evaluate_estimator(estimator, post_experiment)
            post_error = post_metrics.mean_absolute_error
        except EstimationError:
            # A successful mitigation drains the congested links, so the
            # post run may leave nothing the estimator can localise: the
            # remaining suspects sit on routes no path traverses any
            # more. Losing visibility of drained links is inherent to
            # acting on the estimate; score the silence as zero error.
            post_error = 0.0
    return ClosedLoopReport(
        scenario=scenario.name,
        policy=plan.policy,
        estimator=estimator.name,
        pre_congestion_rate=pre_rate,
        post_congestion_rate=post_rate,
        reduction=pre_rate - post_rate,
        paths_disturbed=plan.paths_disturbed,
        num_paths=pre_experiment.network.num_paths,
        num_target_links=len(targets),
        false_mitigation_rate=false_rate,
        pre_fit_error=pre_error,
        post_fit_error=post_error,
        plan=plan.to_json_dict(),
    )


@dataclass
class ClosedLoopEvaluator:
    """Reusable closed-loop harness bound to an estimator and a policy.

    The object the CLI's ``mitigate`` subcommand drives; campaigns use
    :func:`run_closed_loop` directly so they can inject shared pre pieces.
    """

    estimator: ProbabilityEstimator
    policy: MitigationPolicy
    num_intervals: int
    prober: Optional[PathProber] = None
    oracle: bool = False
    policy_params: Mapping[str, Any] = field(default_factory=dict)

    def evaluate(self, scenario: Scenario, seed: int) -> ClosedLoopReport:
        """Run the loop on one scenario with a paired seed."""
        return run_closed_loop(
            scenario,
            self.estimator,
            self.policy,
            self.num_intervals,
            seed,
            prober=self.prober,
            oracle=self.oracle,
            policy_params=self.policy_params,
        )
