"""Closed-loop mitigation: act on fitted estimates, then re-measure.

ROADMAP item 2. The package splits the loop into orthogonal pieces:

- :mod:`repro.mitigation.plan` — typed, JSON-serialisable plans;
- :mod:`repro.mitigation.policies` — the policy registry (``noop``,
  ``ecmp-split``, ``corropt-greedy``) producing plans from a fitted
  :class:`~repro.probability.query.CongestionProbabilityModel`;
- :mod:`repro.mitigation.apply` — rewrite monitored routes on the
  simulated topology, plus the deterministic rerouting primitives;
- :mod:`repro.mitigation.evaluate` — the estimate → mitigate →
  re-simulate → re-estimate loop and its scorecard.

The corresponding campaign lives in :mod:`repro.experiments.mitigation`.
"""

from repro.mitigation.apply import (
    alternate_route,
    apply_plan,
    link_adjacency,
    path_endpoints,
    reroutable_paths,
)
from repro.mitigation.evaluate import (
    ClosedLoopEvaluator,
    ClosedLoopReport,
    path_congestion_rate,
    run_closed_loop,
    score_closed_loop,
)
from repro.mitigation.plan import MitigationPlan, RouteChange
from repro.mitigation.policies import (
    POLICIES,
    MitigationPolicy,
    get_policy,
    policy_names,
    register_policy,
)

__all__ = [
    "POLICIES",
    "ClosedLoopEvaluator",
    "ClosedLoopReport",
    "MitigationPlan",
    "MitigationPolicy",
    "RouteChange",
    "alternate_route",
    "apply_plan",
    "get_policy",
    "link_adjacency",
    "path_congestion_rate",
    "path_endpoints",
    "policy_names",
    "register_policy",
    "reroutable_paths",
    "run_closed_loop",
    "score_closed_loop",
]
