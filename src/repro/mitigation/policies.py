"""Mitigation policies: turn a fitted model into a typed plan.

A policy is a pure decision function ``(network, fitted model, params) ->
MitigationPlan``. Policies never touch ground truth — they see exactly
what an operator would: the monitored topology and the congestion
probabilities the tomography estimators inferred from path observations.
The registry mirrors the estimator/scenario registries so campaigns and
the CLI can sweep policies by name.

Three policies ship:

``noop``
    The control arm: always an empty plan. Closed-loop reports against
    it isolate how much of the residual-congestion drop came from acting
    on the estimates rather than from re-simulation noise (none — the
    loop re-uses the seed — but the control keeps the comparison honest).

``ecmp-split``
    Threshold activation in the spirit of TEController's
    ``SCongestionProbability``: any monitored path whose fitted
    congestion probability crosses ``path_threshold`` is steered onto
    the best alternate route avoiding its riskiest links, provided the
    model predicts at least ``min_gain`` improvement.

``corropt-greedy``
    CorrOpt-style candidate-subset search: greedily drain the most
    suspect links (fitted marginal above ``marginal_threshold``),
    accepting a link only while the fraction of monitored paths that
    still have a working route stays at or above
    ``min_active_fraction`` — the min-active-paths capacity constraint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Tuple

import numpy as np

from repro.exceptions import MitigationError
from repro.mitigation.apply import (
    alternate_route,
    link_adjacency,
    path_endpoints,
    reroutable_paths,
)
from repro.mitigation.plan import MitigationPlan, RouteChange
from repro.obs import counter, histogram, span
from repro.obs.timer import Timer
from repro.probability.query import CongestionProbabilityModel
from repro.topology.graph import Network

#: builder signature: (network, model, params) -> (target_links, changes, metadata)
PolicyBuilder = Callable[
    [Network, CongestionProbabilityModel, Mapping[str, Any]],
    Tuple[Tuple[int, ...], Tuple[RouteChange, ...], Dict[str, Any]],
]

_PLANS_TOTAL = counter(
    "repro_mitigation_plans_total",
    "Mitigation plans constructed, by policy.",
    labels=("policy",),
)
_CHANGES_TOTAL = counter(
    "repro_mitigation_route_changes_total",
    "Route changes proposed across all constructed plans.",
)
_PLAN_SECONDS = histogram(
    "repro_mitigation_plan_seconds",
    "Wall time spent constructing mitigation plans.",
)


@dataclass(frozen=True)
class MitigationPolicy:
    """A named, parameterised mitigation decision procedure.

    Attributes
    ----------
    name:
        Registry key (also the ``policy`` recorded on produced plans).
    description:
        One-line summary shown by ``repro-tomography policies list``.
    builder:
        The decision function; receives the merged parameter mapping.
    defaults:
        Tunable parameters and their default values. ``propose`` rejects
        overrides that are not declared here, so sweeps fail loudly on
        typos instead of silently running the default.
    """

    name: str
    description: str
    builder: PolicyBuilder
    defaults: Mapping[str, Any] = field(default_factory=dict)

    def propose(
        self,
        network: Network,
        model: CongestionProbabilityModel,
        **overrides: Any,
    ) -> MitigationPlan:
        """Run the policy and return its plan.

        Deterministic: same network, same fitted model, same parameters
        give a bit-identical plan regardless of host or executor.
        """
        unknown = sorted(set(overrides) - set(self.defaults))
        if unknown:
            raise MitigationError(
                f"policy '{self.name}' has no parameter(s) {unknown}; "
                f"known: {sorted(self.defaults)}"
            )
        params = {**self.defaults, **overrides}
        with span("mitigation.plan", policy=self.name), Timer() as timer:
            targets, changes, metadata = self.builder(network, model, params)
            plan = MitigationPlan(
                policy=self.name,
                target_links=targets,
                changes=changes,
                metadata={"params": dict(params), **metadata},
            )
        _PLANS_TOTAL.inc(policy=self.name)
        if plan.changes:
            _CHANGES_TOTAL.inc(len(plan.changes))
        _PLAN_SECONDS.observe(timer.elapsed)
        return plan


POLICIES: Dict[str, MitigationPolicy] = {}


def register_policy(policy: MitigationPolicy) -> MitigationPolicy:
    """Add a policy to the global registry (name must be unused)."""
    if policy.name in POLICIES:
        raise MitigationError(f"mitigation policy '{policy.name}' already registered")
    POLICIES[policy.name] = policy
    return policy


def policy_names() -> List[str]:
    """Registered policy names in registration order."""
    return list(POLICIES)


def get_policy(name: str) -> MitigationPolicy:
    """Look up a policy by name, with the known names in the error."""
    try:
        return POLICIES[name]
    except KeyError:
        known = ", ".join(policy_names())
        raise MitigationError(
            f"unknown mitigation policy '{name}' (known: {known})"
        ) from None


# ---------------------------------------------------------------------------
# no-op baseline


def _noop_builder(
    network: Network,
    model: CongestionProbabilityModel,
    params: Mapping[str, Any],
) -> Tuple[Tuple[int, ...], Tuple[RouteChange, ...], Dict[str, Any]]:
    del network, model, params
    return (), (), {}


# ---------------------------------------------------------------------------
# threshold ECMP-split activation


def _route_risk(
    model: CongestionProbabilityModel,
    route: Tuple[int, ...],
    degrees: np.ndarray,
    unknown_penalty: float,
) -> float:
    """Model-predicted congestion probability of a route, penalised for
    links the monitoring mesh never observed (degree 0): the model is
    blind there, so prefer routes it can actually vouch for."""
    risk = 1.0 - model.prob_all_good(route)
    unknown = sum(1 for e in route if degrees[e] == 0)
    return risk + unknown_penalty * unknown


def _ecmp_split_builder(
    network: Network,
    model: CongestionProbabilityModel,
    params: Mapping[str, Any],
) -> Tuple[Tuple[int, ...], Tuple[RouteChange, ...], Dict[str, Any]]:
    path_threshold = float(params["path_threshold"])
    link_threshold = float(params["link_threshold"])
    max_avoid = int(params["max_avoid"])
    min_gain = float(params["min_gain"])
    unknown_penalty = float(params["unknown_penalty"])

    adjacency = link_adjacency(network)
    degrees = network.link_degrees()
    marginals = model.link_marginals()

    changes: List[RouteChange] = []
    targets: set = set()
    activated = 0
    for path in network.paths:
        risk = 1.0 - model.prob_all_good(path.links)
        if risk < path_threshold:
            continue
        activated += 1
        # Suspect links on this path, most probable first; if thresholding
        # leaves nothing (diffuse blame), still avoid the single worst link.
        suspects = sorted(
            (e for e in path.links if marginals[e] >= link_threshold),
            key=lambda e: (-marginals[e], e),
        )[:max_avoid]
        if not suspects:
            suspects = [max(path.links, key=lambda e: (marginals[e], -e))]
        src, dst = path_endpoints(network, path)
        best: Tuple[float, Tuple[int, ...], Tuple[int, ...]] | None = None
        # Avoid as many suspects as the topology allows: try the full
        # suspect set first, then shrink from the least-probable end.
        for count in range(len(suspects), 0, -1):
            avoid = suspects[:count]
            route = alternate_route(network, src, dst, avoid, adjacency)
            if route is None or route == tuple(path.links):
                continue
            score = _route_risk(model, route, degrees, unknown_penalty)
            if best is None or score < best[0]:
                best = (score, route, tuple(avoid))
        if best is None:
            continue
        score, route, avoided = best
        if risk - score < min_gain:
            continue
        changes.append(
            RouteChange(
                path=path.index,
                old_links=tuple(path.links),
                new_links=route,
                predicted_before=risk,
                predicted_after=1.0 - model.prob_all_good(route),
            )
        )
        targets.update(e for e in avoided if e not in route)
    metadata = {"paths_over_threshold": activated}
    return tuple(sorted(targets)), tuple(changes), metadata


# ---------------------------------------------------------------------------
# CorrOpt-style greedy candidate-subset search


def _corropt_builder(
    network: Network,
    model: CongestionProbabilityModel,
    params: Mapping[str, Any],
) -> Tuple[Tuple[int, ...], Tuple[RouteChange, ...], Dict[str, Any]]:
    marginal_threshold = float(params["marginal_threshold"])
    max_links = int(params["max_links"])
    min_active_fraction = float(params["min_active_fraction"])

    adjacency = link_adjacency(network)
    marginals = model.link_marginals()
    candidates = sorted(
        (e for e in range(network.num_links) if marginals[e] >= marginal_threshold),
        key=lambda e: (-marginals[e], e),
    )

    drained: List[int] = []
    rejected: List[int] = []
    for link in candidates:
        if len(drained) >= max_links:
            break
        trial = drained + [link]
        _, stuck = reroutable_paths(network, trial, adjacency)
        active = (network.num_paths - len(stuck)) / network.num_paths
        if active >= min_active_fraction:
            drained.append(link)
        else:
            rejected.append(link)

    changes: List[RouteChange] = []
    if drained:
        reroutes, _ = reroutable_paths(network, drained, adjacency)
        for path_index, route in sorted(reroutes.items()):
            old = tuple(network.paths[path_index].links)
            if route == old:
                continue
            changes.append(
                RouteChange(
                    path=path_index,
                    old_links=old,
                    new_links=route,
                    predicted_before=1.0 - model.prob_all_good(old),
                    predicted_after=1.0 - model.prob_all_good(route),
                )
            )
    metadata = {
        "candidates": [int(e) for e in candidates],
        "rejected": [int(e) for e in rejected],
    }
    return tuple(drained), tuple(changes), metadata


register_policy(
    MitigationPolicy(
        name="noop",
        description=(
            "Do nothing — the control arm every other policy is judged against."
        ),
        builder=_noop_builder,
    )
)

register_policy(
    MitigationPolicy(
        name="ecmp-split",
        description=(
            "Steer each path whose fitted congestion probability crosses a "
            "threshold onto the best alternate route avoiding its riskiest links."
        ),
        builder=_ecmp_split_builder,
        defaults={
            "path_threshold": 0.3,
            "link_threshold": 0.2,
            "max_avoid": 4,
            "min_gain": 0.05,
            "unknown_penalty": 0.02,
        },
    )
)

register_policy(
    MitigationPolicy(
        name="corropt-greedy",
        description=(
            "Greedily drain the most suspect links and reroute around them, "
            "subject to a min-active-paths constraint."
        ),
        builder=_corropt_builder,
        defaults={
            "marginal_threshold": 0.3,
            "max_links": 4,
            "min_active_fraction": 1.0,
        },
    )
)
