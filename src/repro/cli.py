"""Command-line interface: regenerate the paper's tables and figures,
sweep the dataset/scenario libraries, or run the live monitoring engine.

Usage::

    repro-tomography figure3 [--scale SCALE] [--seed N] [--oracle]
                             [--workers W] [--executor E]
    repro-tomography figure4 [--scale SCALE] [--seed N] [--oracle]
                             [--workers W] [--executor E]
    repro-tomography table2
    repro-tomography scaling [--scale SCALE] [--seed N] [--workers W]
                             [--executor E]
    repro-tomography ablation [--scale SCALE] [--seed N] [--workers W]
                             [--executor E]
    repro-tomography campaign NAME_OR_SPEC.json [--scale SCALE]
                             [--seed N] [--oracle] [--workers W]
                             [--executor E] [--replicates R]
                             [--output DIR] [--dataset NAMES]
                             [--scenario NAMES] [--estimator NAMES]
                             [--policy NAMES]
    repro-tomography campaign --list
    repro-tomography mitigate [--scale SCALE] [--seed N] [--oracle]
                             [--dataset NAME] [--scenario NAME]
                             [--estimator NAME] [--policy NAME]
                             [--output DIR]
    repro-tomography datasets list|info NAME|validate
    repro-tomography scenarios list|info NAME
    repro-tomography estimators list|info NAME
    repro-tomography policies list|info NAME
    repro-tomography kernels list [--bench] | info NAME
    repro-tomography obs summary [--snapshot FILE]
    repro-tomography obs export [--format prom|json] [--snapshot FILE]
    repro-tomography obs spans TRACE.jsonl [--tree] [--validate]
    repro-tomography obs critical-path TRACE.jsonl [--top K]
    repro-tomography obs diff BASE.jsonl CURRENT.jsonl [--limit N]
    repro-tomography obs serve [--port P] [--host H]
                             [--sample-interval S]
    repro-tomography monitor [--scale SCALE] [--seed N] [--oracle]
                             [--dataset NAME] [--scenario NAME]
                             [--estimator NAME] [--kernel K]
                             [--intervals T] [--window W] [--stride S]
                             [--chunk C] [--checkpoint PATH]
    repro-tomography --version

``SCALE`` is one of the registered presets (``tiny``/``small``/``paper``).
``--workers`` shards a sweep (0 = all local CPUs) with results
bit-identical to the serial run; ``--executor`` picks how shards run
(``process``, zero-copy ``thread``, or ``auto`` — thread exactly when the
active frequency kernel is GIL-free). ``campaign`` runs a named sweep
(or a JSON sweep spec) with per-shard progress and optional JSON results
on disk — the ``realworld`` campaign sweeps every registered dataset,
scenario, and estimator, restrictable with
``--dataset``/``--scenario``/``--estimator`` (comma-separated names from
``datasets list`` / ``scenarios list`` / ``estimators list``); the
``mitigation`` campaign additionally accepts ``--policy`` (names from
``policies list``). ``mitigate`` runs one closed mitigation loop —
estimate, act on the fitted model, re-simulate, re-estimate — and can
persist the plan and scorecard as JSON.
``kernels`` inspects the frequency-kernel registry (numpy / optional
compiled numba) and the active selection (``REPRO_KERNEL``). ``obs``
inspects the telemetry layer (``REPRO_OBS=off|metrics|trace``): a human
metrics summary, Prometheus/JSON export, span-trace rendering or
validation, trace analytics (``critical-path`` decomposes each root
span and reports shard utilization; ``diff`` aligns two traces by span
name and names the top self-time regressions), and a live HTTP
exporter (``serve``: ``/metrics`` Prometheus text, ``/metrics.json``,
``/healthz``, ``/spans/recent``, with a background RSS/CPU/GC resource
sampler). ``campaign``/``monitor``/``mitigate`` accept ``--obs MODE``
to set the telemetry mode per run (overriding ``REPRO_OBS``), and
``campaign``/``monitor`` accept ``--serve-port`` to expose the same
endpoints for the duration of the run; campaign runs under
``REPRO_OBS=trace`` drop a ``telemetry.jsonl`` (and a metrics
snapshot) next to their ``--output`` results.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.config import SCALES, scale_by_name
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.scaling import run_algorithm1_scaling
from repro.metrics.reporting import format_table
from repro.model.assumptions import TABLE2_MATRIX, table2_rows


def _package_version() -> str:
    """Installed distribution version, falling back to the source tree's."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro-tomography")
    except PackageNotFoundError:
        import repro

        return repro.__version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tomography",
        description=(
            "Reproduce the experiments of 'Shifting Network Tomography "
            "Toward A Practical Goal' (CoNEXT 2011)."
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_package_version()}",
    )
    workers_help = "worker shards for the sweep (0 = all local CPUs)"
    executor_help = (
        "shard executor: process pool, zero-copy threads, or auto "
        "(thread when the active kernel is GIL-free)"
    )
    obs_help = (
        "telemetry mode for this run (overrides the REPRO_OBS env var)"
    )
    serve_port_help = (
        "expose live telemetry over HTTP on this port for the run "
        "(/metrics, /metrics.json, /healthz, /spans/recent); promotes "
        "telemetry to metrics mode when it is off"
    )
    from repro.obs import MODES as OBS_MODES
    from repro.runner.pool import EXECUTORS

    subparsers = parser.add_subparsers(dest="command", required=True)
    for figure in ("figure3", "figure4"):
        sub = subparsers.add_parser(figure, help=f"regenerate {figure}")
        sub.add_argument("--scale", choices=sorted(SCALES), default="small")
        sub.add_argument("--seed", type=int, default=1)
        sub.add_argument(
            "--oracle",
            action="store_true",
            help="use noise-free path observations",
        )
        sub.add_argument("--workers", type=int, default=1, help=workers_help)
        sub.add_argument(
            "--executor", choices=EXECUTORS, default="auto", help=executor_help
        )
    sub = subparsers.add_parser("table2", help="print the assumption matrix")
    sub = subparsers.add_parser("scaling", help="Algorithm 1 scaling sweep")
    sub.add_argument("--scale", choices=sorted(SCALES), default="small")
    sub.add_argument("--seed", type=int, default=3)
    sub.add_argument("--workers", type=int, default=1, help=workers_help)
    sub.add_argument(
        "--executor", choices=EXECUTORS, default="auto", help=executor_help
    )
    sub = subparsers.add_parser(
        "ablation", help="ablate the Correlation-complete solve refinements"
    )
    sub.add_argument("--scale", choices=sorted(SCALES), default="small")
    sub.add_argument("--seed", type=int, default=5)
    sub.add_argument("--workers", type=int, default=1, help=workers_help)
    sub.add_argument(
        "--executor", choices=EXECUTORS, default="auto", help=executor_help
    )
    sub = subparsers.add_parser(
        "campaign",
        help="run a named sweep "
        "(figure3|figure4|scaling|scaling-topology|ablation|realworld|"
        "mitigation) or a JSON sweep spec, sharded across processes",
    )
    sub.add_argument(
        "target",
        nargs="?",
        default=None,
        help="campaign name or path to a JSON campaign spec",
    )
    sub.add_argument(
        "--list",
        action="store_true",
        dest="list_campaigns",
        help="enumerate the registered sweeps and exit",
    )
    sub.add_argument("--scale", choices=sorted(SCALES), default=None)
    sub.add_argument("--seed", type=int, default=None)
    sub.add_argument(
        "--oracle",
        action="store_true",
        help="use noise-free path observations",
    )
    sub.add_argument("--workers", type=int, default=None, help=workers_help)
    sub.add_argument(
        "--executor", choices=EXECUTORS, default=None, help=executor_help
    )
    sub.add_argument(
        "--replicates",
        type=int,
        default=None,
        help="rerun the sweep at this many seeds spawned from --seed",
    )
    sub.add_argument(
        "--output",
        type=str,
        default=None,
        help="directory for the campaign's JSON results",
    )
    sub.add_argument(
        "--dataset",
        type=str,
        default=None,
        help="comma-separated registered datasets (realworld campaign only)",
    )
    sub.add_argument(
        "--scenario",
        type=str,
        default=None,
        help="comma-separated registered scenarios (realworld campaign only)",
    )
    sub.add_argument(
        "--estimator",
        type=str,
        default=None,
        help="comma-separated registered estimators (realworld campaign only)",
    )
    sub.add_argument(
        "--policy",
        type=str,
        default=None,
        help="comma-separated mitigation policies (mitigation campaign only)",
    )
    sub.add_argument(
        "--obs", choices=OBS_MODES, default=None, dest="obs_mode", help=obs_help
    )
    sub.add_argument(
        "--serve-port", type=int, default=None, help=serve_port_help
    )
    sub = subparsers.add_parser(
        "mitigate",
        help="run one closed mitigation loop: estimate, act, re-measure",
    )
    sub.add_argument("--scale", choices=sorted(SCALES), default="small")
    sub.add_argument("--seed", type=int, default=13)
    sub.add_argument(
        "--oracle",
        action="store_true",
        help="use noise-free path observations",
    )
    sub.add_argument(
        "--dataset",
        type=str,
        default=None,
        help="mitigate on a registered dataset instead of a generated topology",
    )
    sub.add_argument(
        "--scenario",
        type=str,
        default=None,
        help="registered scenario generator (default: random)",
    )
    sub.add_argument(
        "--estimator",
        type=str,
        default=None,
        help="registered estimator to fit with (default: Independence)",
    )
    sub.add_argument(
        "--policy",
        type=str,
        default=None,
        help="mitigation policy to act with (default: corropt-greedy; "
        "see 'policies list')",
    )
    sub.add_argument(
        "--output",
        type=str,
        default=None,
        help="directory for the plan and scorecard JSON",
    )
    sub.add_argument(
        "--obs", choices=OBS_MODES, default=None, dest="obs_mode", help=obs_help
    )
    sub = subparsers.add_parser(
        "policies",
        help="inspect the registered mitigation policies",
    )
    sub.add_argument(
        "action",
        choices=("list", "info"),
        help="list the registry or describe one policy",
    )
    sub.add_argument("name", nargs="?", default=None, help="policy name (info)")
    sub = subparsers.add_parser(
        "datasets",
        help="inspect the registered real-topology datasets",
    )
    sub.add_argument(
        "action",
        choices=("list", "info", "validate"),
        help="list the registry, describe one dataset, or load every "
        "bundled dataset through its loader",
    )
    sub.add_argument("name", nargs="?", default=None, help="dataset name (info)")
    sub.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk parse cache",
    )
    sub.add_argument(
        "--max-nodes",
        type=int,
        default=None,
        help="validate only: fail fast (before parsing) when a dataset "
        "file declares more than this many nodes",
    )
    sub = subparsers.add_parser(
        "scenarios",
        help="inspect the registered congestion-scenario generators",
    )
    sub.add_argument(
        "action",
        choices=("list", "info"),
        help="list the library or describe one generator",
    )
    sub.add_argument("name", nargs="?", default=None, help="scenario name (info)")
    sub = subparsers.add_parser(
        "estimators",
        help="inspect the registered probability estimators",
    )
    sub.add_argument(
        "action",
        choices=("list", "info"),
        help="list the registry or describe one estimator",
    )
    sub.add_argument(
        "name", nargs="?", default=None, help="estimator name or alias (info)"
    )
    sub = subparsers.add_parser(
        "kernels",
        help="inspect the frequency-kernel registry and active selection",
    )
    sub.add_argument(
        "action",
        choices=("list", "info"),
        help="list the registry or describe one kernel",
    )
    sub.add_argument("name", nargs="?", default=None, help="kernel name (info)")
    sub.add_argument(
        "--bench",
        action="store_true",
        help="micro-benchmark each available kernel (list only)",
    )
    sub = subparsers.add_parser(
        "obs",
        help="inspect telemetry: metrics summary/export, span traces, "
        "trace analytics, and live HTTP serving",
    )
    sub.add_argument(
        "action",
        choices=("summary", "export", "spans", "critical-path", "diff", "serve"),
        help="summarise the metrics registry, export it, read a span "
        "trace, decompose a trace's critical paths, diff two traces by "
        "per-span self time, or serve live telemetry over HTTP",
    )
    sub.add_argument(
        "trace",
        nargs="*",
        default=[],
        help="span-event JSONL file(s): one for spans/critical-path, "
        "two (base, current) for diff",
    )
    sub.add_argument(
        "--format",
        choices=("prom", "json"),
        default="prom",
        dest="obs_format",
        help="export format: Prometheus text exposition or JSON snapshot",
    )
    sub.add_argument(
        "--snapshot",
        type=str,
        default=None,
        help="read metrics from this snapshot JSON file instead of the "
        "live registry",
    )
    sub.add_argument(
        "--tree",
        action="store_true",
        help="render the trace as a flame-style tree (spans action)",
    )
    sub.add_argument(
        "--validate",
        action="store_true",
        help="schema-check the trace and exit non-zero on errors "
        "(spans action)",
    )
    sub.add_argument(
        "--top",
        type=int,
        default=5,
        help="chain depth and contributors shown (critical-path action)",
    )
    sub.add_argument(
        "--limit",
        type=int,
        default=10,
        help="span rows shown in the diff table (diff action)",
    )
    sub.add_argument(
        "--port",
        type=int,
        default=9109,
        help="HTTP port to bind (serve action)",
    )
    sub.add_argument(
        "--host",
        type=str,
        default="127.0.0.1",
        help="address to bind (serve action)",
    )
    sub.add_argument(
        "--sample-interval",
        type=float,
        default=5.0,
        dest="sample_interval",
        help="resource-sampler cadence in seconds; 0 disables sampling "
        "(serve action)",
    )
    sub = subparsers.add_parser(
        "monitor",
        help="stream a live scenario through the incremental estimator",
    )
    sub.add_argument("--scale", choices=sorted(SCALES), default="small")
    sub.add_argument("--seed", type=int, default=11)
    sub.add_argument(
        "--oracle",
        action="store_true",
        help="use noise-free path observations",
    )
    sub.add_argument(
        "--dataset",
        type=str,
        default=None,
        help="monitor a registered dataset instead of a generated topology",
    )
    sub.add_argument(
        "--scenario",
        type=str,
        default=None,
        help="registered scenario generator (default: no_stationarity)",
    )
    sub.add_argument(
        "--estimator",
        type=str,
        default=None,
        help="registered estimator to refit with (default: Correlation-complete)",
    )
    sub.add_argument(
        "--kernel",
        type=str,
        default=None,
        help="pin the frequency kernel used by refits "
        "(see 'kernels list'; default: the active selection)",
    )
    sub.add_argument(
        "--intervals",
        type=int,
        default=None,
        help="rounds to stream (default: the scale's horizon)",
    )
    sub.add_argument("--window", type=int, default=128)
    sub.add_argument("--stride", type=int, default=None)
    sub.add_argument(
        "--chunk",
        type=int,
        default=16,
        help="probe rounds ingested per batch (1 = strictly round-by-round)",
    )
    sub.add_argument(
        "--checkpoint",
        type=str,
        default=None,
        help="write engine state to this path when the stream ends",
    )
    sub.add_argument(
        "--top",
        type=int,
        default=5,
        help="peers shown per refit line",
    )
    sub.add_argument(
        "--obs", choices=OBS_MODES, default=None, dest="obs_mode", help=obs_help
    )
    sub.add_argument(
        "--serve-port", type=int, default=None, help=serve_port_help
    )
    return parser


def _apply_obs_mode(args: argparse.Namespace) -> None:
    """Honour ``--obs MODE`` (mirrors/overrides the ``REPRO_OBS`` env var)."""
    mode = getattr(args, "obs_mode", None)
    if mode is not None:
        from repro import obs

        obs.configure(mode=mode)


def _workers(args: argparse.Namespace):
    """Map the CLI convention (0 = all local CPUs) onto the runner's."""
    return None if args.workers == 0 else args.workers


def _print_figure3(args: argparse.Namespace) -> None:
    result = run_figure3(
        scale_by_name(args.scale),
        seed=args.seed,
        oracle=args.oracle,
        workers=_workers(args),
        executor=args.executor,
    )
    print("Figure 3(a) — detection rate")
    print(result.to_table("detection"))
    print()
    print("Figure 3(b) — false-positive rate")
    print(result.to_table("fp"))


def _print_figure4(args: argparse.Namespace) -> None:
    result = run_figure4(
        scale_by_name(args.scale),
        seed=args.seed,
        oracle=args.oracle,
        workers=_workers(args),
        executor=args.executor,
    )
    print("Figure 4(a) — mean absolute error, Brite")
    print(result.to_table("brite"))
    print()
    print("Figure 4(b) — mean absolute error, Sparse")
    print(result.to_table("sparse"))
    print()
    print("Figure 4(c) — error CDF, No Independence, Sparse")
    for estimator in ("Independence", "Correlation-heuristic", "Correlation-complete"):
        grid, cdf = result.cdf("sparse", "No Independence", estimator, points=11)
        series = "  ".join(f"{x:.1f}:{y:.2f}" for x, y in zip(grid, cdf))
        print(f"  {estimator:<22} {series}")
    print()
    print("Figure 4(d) — Correlation-complete, links vs correlation subsets")
    print(result.to_subset_table())


def _print_table2() -> None:
    columns = list(TABLE2_MATRIX)
    rows = []
    for label, checked in table2_rows():
        rows.append([label, *("X" if checked[column] else "" for column in columns)])
    print("Table 2 — sources of inaccuracy per algorithm")
    print(format_table(["Source", *columns], rows))


def _print_scaling(args: argparse.Namespace) -> None:
    result = run_algorithm1_scaling(
        scale_by_name(args.scale),
        seed=args.seed,
        workers=_workers(args),
        executor=args.executor,
    )
    print("Algorithm 1 scaling (equations formed vs naive 2^|P*| bound)")
    print(result.to_table())


def _run_campaign(args: argparse.Namespace) -> None:
    import os

    _apply_obs_mode(args)
    from repro.runner.campaign import (
        CAMPAIGNS,
        CampaignSpec,
        load_campaign_spec,
        run_campaign,
        validate_output_dir,
        write_outcome,
    )

    from dataclasses import replace

    if args.list_campaigns:
        rows = [
            [definition.name, definition.description]
            for _, definition in sorted(CAMPAIGNS.items())
        ]
        print("Registered campaigns")
        print(format_table(["Campaign", "Description"], rows))
        return
    if args.target is None:
        raise SystemExit("campaign: provide a campaign name/spec or --list")
    if args.target in CAMPAIGNS:
        spec = CampaignSpec(campaign=args.target)
    elif os.path.exists(args.target):
        spec = load_campaign_spec(args.target)
    else:
        raise SystemExit(
            f"unknown campaign {args.target!r} (known: {sorted(CAMPAIGNS)}) "
            "and no such spec file"
        )
    # CLI flags override the spec file; replace() re-runs the spec's
    # validation over the merged values.
    overrides = {}
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.oracle:
        overrides["oracle"] = True
    if args.workers is not None:
        overrides["workers"] = None if args.workers == 0 else args.workers
    if args.replicates is not None:
        overrides["replicates"] = args.replicates
    if args.output is not None:
        overrides["output"] = args.output
    if args.dataset is not None:
        overrides["dataset"] = args.dataset
    if args.scenario is not None:
        overrides["scenario"] = args.scenario
    if args.estimator is not None:
        overrides["estimator"] = args.estimator
    if args.policy is not None:
        overrides["policy"] = args.policy
    if args.executor is not None:
        overrides["executor"] = args.executor
    if args.serve_port is not None:
        overrides["serve_port"] = args.serve_port
    try:
        spec = replace(spec, **overrides)
    except ValueError as exc:
        raise SystemExit(f"invalid campaign options: {exc}") from None
    if spec.output:
        # Fail fast on an unusable --output: minutes of sweep compute
        # must not end in a write-time traceback.
        try:
            validate_output_dir(spec.output)
        except ValueError as exc:
            raise SystemExit(f"campaign: {exc}") from None

    print(
        f"campaign {spec.campaign} at scale {spec.scale}: "
        f"{spec.replicates} replicate(s), "
        f"workers={'auto' if spec.workers is None else spec.workers}"
    )
    if spec.serve_port is not None:
        print(
            f"serving telemetry at http://127.0.0.1:{spec.serve_port}/metrics "
            "for the duration of the run"
        )
    # Route span events next to the campaign's results (REPRO_OBS_TRACE
    # still wins); write_outcome drops the metrics snapshot there too.
    from repro import obs

    if obs.trace_enabled() and spec.output:
        from pathlib import Path

        obs.set_default_trace_path(Path(spec.output) / "telemetry.jsonl")
    outcome = run_campaign(spec, progress=lambda report: print(report.describe()))
    print(
        f"{outcome.num_trials} trial(s) across {len(outcome.shards)} shard(s) "
        f"in {outcome.elapsed:.2f}s"
    )
    for replicate in outcome.replicates:
        print()
        print(f"== seed {replicate.seed} ==")
        print(replicate.rendered)
    if spec.output:
        path = write_outcome(outcome, spec.output)
        print(f"\nresults written to {path}")
        if obs.metrics_enabled():
            print(f"metrics snapshot: {path.with_name(path.stem + '_metrics.json')}")
        if obs.trace_enabled():
            print(f"span trace: {obs.trace_path()}")


def _print_datasets(args: argparse.Namespace) -> int:
    from repro.datasets import (
        DATASETS,
        dataset_info,
        dataset_names,
        load_dataset,
    )
    from repro.exceptions import DatasetError

    use_cache = not args.no_cache
    if args.action == "list":
        rows = []
        for name in dataset_names():
            entry = DATASETS[name]
            rows.append(
                [
                    name,
                    entry.format_name,
                    entry.filename or "(generated)",
                    entry.description,
                ]
            )
        print("Registered datasets")
        print(format_table(["Dataset", "Format", "Source", "Description"], rows))
        return 0
    if args.action == "info":
        if not args.name:
            raise SystemExit("datasets info: provide a dataset name")
        try:
            info = dataset_info(args.name, use_cache=use_cache)
        except DatasetError as exc:
            raise SystemExit(str(exc)) from None
        width = max(len(key) for key in info)
        for key, value in info.items():
            print(f"{key:<{width}}  {value}")
        return 0
    # validate: every registered dataset must load through its loader.
    # Each row carries its wall time (--no-cache makes this a parse
    # benchmark); --max-nodes runs the streaming node census first, so an
    # oversized file fails fast instead of after a long parse.
    from repro.datasets import resolve_dataset_path, scan_nodes
    from repro.obs.timer import Timer

    failures = 0
    for name in dataset_names():
        entry = DATASETS[name]
        try:
            with Timer() as timer:
                if args.max_nodes is not None:
                    path = resolve_dataset_path(entry)
                    if path is not None:
                        scan_nodes(path, entry.format_name, max_nodes=args.max_nodes)
                network = load_dataset(name, use_cache=use_cache)
        except DatasetError as exc:
            print(f"FAIL {name}: {exc}")
            failures += 1
        else:
            print(
                f"ok   {name}: {network.num_links} links, "
                f"{network.num_paths} paths, "
                f"{len(network.correlation_sets)} correlation sets "
                f"({timer.elapsed:.3f}s)"
            )
    if failures:
        print(f"{failures} dataset(s) failed to load")
        return 1
    print("all datasets load")
    return 0


def _print_scenarios(args: argparse.Namespace) -> None:
    from repro.exceptions import ScenarioError
    from repro.simulation.library import SCENARIOS, get_scenario, scenario_names

    if args.action == "list":
        rows = []
        for name in scenario_names():
            generator = SCENARIOS[name]
            rows.append(
                [
                    name,
                    "yes" if generator.non_stationary else "no",
                    "yes" if generator.needs_correlated_groups else "no",
                    generator.description,
                ]
            )
        print("Registered scenarios")
        print(
            format_table(
                ["Scenario", "Non-stationary", "Needs correlation", "Description"],
                rows,
            )
        )
        return
    if not args.name:
        raise SystemExit("scenarios info: provide a scenario name")
    try:
        generator = get_scenario(args.name)
    except ScenarioError as exc:
        raise SystemExit(str(exc)) from None
    print(f"{generator.name}: {generator.description}")
    print(f"  non-stationary: {generator.non_stationary}")
    print(f"  needs correlated groups: {generator.needs_correlated_groups}")
    print("  parameters:")
    for key, value in sorted(generator.defaults.items()):
        print(f"    {key} = {value}")


def _print_estimators(args: argparse.Namespace) -> None:
    from repro.exceptions import EstimationError
    from repro.probability.registry import (
        ESTIMATORS,
        estimator_names,
        get_estimator,
        paper_estimator_names,
    )

    if args.action == "list":
        rows = []
        for name in estimator_names():
            entry = ESTIMATORS[name]
            rows.append(
                [
                    name,
                    entry.cost_multiplier,
                    ", ".join(entry.aliases) or "-",
                    entry.description,
                ]
            )
        print("Registered estimators")
        print(
            format_table(["Estimator", "Cost x", "Aliases", "Description"], rows)
        )
        print(f"paper legend order: {', '.join(paper_estimator_names())}")
        return
    if not args.name:
        raise SystemExit("estimators info: provide an estimator name")
    try:
        entry = get_estimator(args.name)
    except EstimationError as exc:
        raise SystemExit(str(exc)) from None
    estimator = entry.factory(None)
    print(f"{entry.name}: {entry.description}")
    print(f"  class: {type(estimator).__module__}.{type(estimator).__qualname__}")
    print(f"  cost multiplier: {entry.cost_multiplier}")
    print(f"  aliases: {', '.join(entry.aliases) or '-'}")
    print(
        "  paper legend position: "
        f"{entry.paper_rank if entry.paper_rank is not None else '- (variant)'}"
    )
    print(f"  pipeline stages: {' -> '.join(estimator.stage_names())}")


def _print_kernels(args: argparse.Namespace) -> None:
    from repro.model import kernels
    from repro.model.kernels import numba_kernel

    active = kernels.active_kernel()
    if args.action == "list":
        headers = ["Kernel", "Available", "GIL-free", "Active", "Description"]
        if args.bench:
            headers.insert(4, "Bench (ms)")
        rows = []
        for name in kernels.kernel_names():
            kernel = kernels.get_kernel(name)
            available = kernel.is_available()
            cells = [
                name,
                "yes" if available else f"no ({kernel.unavailable_reason()})",
                "yes" if kernel.releases_gil else "no",
                "*" if kernel is active else "",
                kernel.description,
            ]
            if args.bench:
                cells.insert(
                    4,
                    f"{kernels.microbenchmark(kernel) * 1e3:.3f}"
                    if available
                    else "-",
                )
            rows.append(cells)
        print("Frequency kernels")
        print(format_table(headers, rows))
        print(f"requested: {kernels.requested_kernel()} (env {kernels.KERNEL_ENV})")
        print(
            "numba: "
            + (
                f"version {numba_kernel.NUMBA_VERSION}"
                if numba_kernel.NUMBA_VERSION
                else "not installed"
            )
        )
        return
    if not args.name:
        raise SystemExit("kernels info: provide a kernel name")
    try:
        kernel = kernels.get_kernel(args.name)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    print(f"{kernel.name}: {kernel.description}")
    print(f"  class: {type(kernel).__module__}.{type(kernel).__qualname__}")
    print(f"  releases the GIL: {kernel.releases_gil}")
    print(f"  active: {kernel is active}")
    if kernel.is_available():
        print("  available: yes")
        print(f"  micro-benchmark: {kernels.microbenchmark(kernel) * 1e3:.3f} ms")
    else:
        print(f"  available: no ({kernel.unavailable_reason()})")


def _load_trace_or_exit(trace: str):
    """Tolerantly load a trace, printing truncation warnings; exits on
    a missing file or interior corruption."""
    from repro import obs

    try:
        events, warnings = obs.read_events(trace)
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    for warning in warnings:
        print(f"WARNING {warning}")
    return events


def _print_obs(args: argparse.Namespace) -> int:
    import json as _json

    from repro import obs

    if args.action == "spans":
        if not args.trace:
            raise SystemExit("obs spans: provide a span-trace JSONL file")
        trace = args.trace[0]
        events = _load_trace_or_exit(trace)
        status = 0
        if args.validate:
            errors = obs.validate_events(events)
            if errors:
                for error in errors:
                    print(f"INVALID {trace}: {error}")
                status = 1
            else:
                print(f"{trace}: {len(events)} event(s), schema valid")
        if args.tree or not args.validate:
            print(obs.render_tree(events), end="")
        return status

    if args.action == "critical-path":
        if not args.trace:
            raise SystemExit(
                "obs critical-path: provide a span-trace JSONL file"
            )
        events = _load_trace_or_exit(args.trace[0])
        reports = obs.critical_paths(events, top=args.top)
        print(obs.render_critical_paths(reports), end="")
        shard_report = obs.shard_report(events)
        if shard_report.shards:
            print()
            print("runner shard utilization:")
            print(obs.render_shard_report(shard_report), end="")
        return 0

    if args.action == "diff":
        if len(args.trace) != 2:
            raise SystemExit(
                "obs diff: provide two span-trace JSONL files (base, current)"
            )
        base, current = args.trace
        try:
            deltas, warnings = obs.diff_traces(base, current)
        except (OSError, ValueError) as exc:
            raise SystemExit(str(exc)) from None
        for warning in warnings:
            print(f"WARNING {warning}")
        print(f"span self-time diff: {base} -> {current}")
        print(obs.render_diff(deltas, limit=args.limit), end="")
        return 0

    if args.action == "serve":
        import time as _time

        from repro.obs.serve import TelemetryServer, ensure_metrics_mode

        if ensure_metrics_mode():
            print("telemetry was off; promoted to metrics mode for serving")
        interval = args.sample_interval if args.sample_interval > 0 else None
        server = TelemetryServer(
            host=args.host, port=args.port, sample_interval=interval
        )
        try:
            server.start()
        except OSError as exc:
            raise SystemExit(f"obs serve: cannot bind {args.host}:{args.port}: {exc}") from None
        print(
            f"serving telemetry at {server.url} "
            "(/metrics /metrics.json /healthz /spans/recent); Ctrl-C to stop"
        )
        try:
            while True:
                _time.sleep(3600)
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
        return 0

    if args.snapshot:
        try:
            snapshot = _json.loads(open(args.snapshot).read())
        except (OSError, ValueError) as exc:
            raise SystemExit(f"obs: cannot read snapshot: {exc}") from None
    else:
        snapshot = obs.global_registry().snapshot()
    if args.action == "summary":
        print(f"telemetry mode: {obs.mode()} (env {obs.MODE_ENV})")
        print(f"declared metric families: {len(obs.FAMILIES)}")
        print(obs.render_summary(snapshot), end="")
        return 0
    if args.obs_format == "json":
        print(obs.render_json(snapshot))
    else:
        print(obs.render_prometheus(snapshot), end="")
    return 0


def _run_monitor(args: argparse.Namespace) -> None:
    _apply_obs_mode(args)
    from repro.probability.base import EstimatorConfig
    from repro.probability.windowed import peer_link_members
    from repro.simulation.probing import PathProber, StreamingProber
    from repro.simulation.library import get_scenario
    from repro.streaming import (
        AlertManager,
        AlertPolicy,
        StreamingEstimator,
        peer_congestion_levels,
    )
    from repro.streaming.checkpoint import save_checkpoint
    from repro.topology.brite import generate_brite_network
    from repro.util.rng import derive_rng

    scale = scale_by_name(args.scale)
    intervals = args.intervals if args.intervals is not None else scale.num_intervals
    if args.dataset is not None:
        from repro.datasets import load_dataset
        from repro.exceptions import DatasetError

        try:
            network = load_dataset(args.dataset)
        except DatasetError as exc:
            raise SystemExit(str(exc)) from None
    else:
        network = generate_brite_network(scale.brite, random_state=args.seed)
    from repro.exceptions import EstimationError, ScenarioError
    from repro.probability.registry import make_estimator

    try:
        generator = get_scenario(args.scenario or "no_stationarity")
        scenario = generator.build(network, random_state=derive_rng(args.seed, 1))
    except ScenarioError as exc:
        raise SystemExit(str(exc)) from None
    try:
        estimator = make_estimator(
            args.estimator or "Correlation-complete",
            EstimatorConfig(seed=args.seed),
        )
    except EstimationError as exc:
        raise SystemExit(str(exc)) from None
    prober = None if args.oracle else PathProber(num_packets=scale.num_packets)
    source = StreamingProber(
        network,
        scenario.ground_truth,
        prober=prober,
        chunk_intervals=args.chunk,
    )
    try:
        engine = StreamingEstimator(
            network,
            estimator,
            window=args.window,
            stride=args.stride,
            alert_manager=AlertManager(network, AlertPolicy()),
            kernel=args.kernel,
        )
    except ValueError as exc:  # unknown --kernel name
        raise SystemExit(str(exc)) from None
    members = peer_link_members(network)
    print(
        f"monitoring {network.num_paths} paths over {network.num_links} links "
        f"in {len(members)} ASes ({network.name}, scenario {scenario.name}, "
        f"estimator {engine.estimator.name}); "
        f"window={engine.window} stride={engine.stride}"
    )
    server = None
    if args.serve_port is not None:
        from repro.obs.serve import TelemetryServer, ensure_metrics_mode

        if ensure_metrics_mode():
            print("telemetry was off; promoted to metrics mode for serving")
        server = TelemetryServer(
            port=args.serve_port, status_fn=engine.telemetry_status
        )
        try:
            server.start()
        except OSError as exc:
            raise SystemExit(
                f"monitor: cannot bind telemetry port {args.serve_port}: {exc}"
            ) from None
        print(
            f"serving telemetry at {server.url} "
            "(/metrics /metrics.json /healthz /spans/recent)"
        )
    reported = 0
    try:
        for chunk in source.rounds(
            intervals, random_state=derive_rng(args.seed, 2)
        ):
            for estimate in engine.ingest(chunk):
                levels = sorted(
                    (
                        (level, asn)
                        for asn, level in peer_congestion_levels(
                            estimate.model, members
                        ).items()
                    ),
                    reverse=True,
                )
                series = "  ".join(
                    f"AS{asn}:{level:.2f}" for level, asn in levels[: args.top]
                )
                print(f"[{estimate.start:5d},{estimate.stop:5d})  {series}")
            for alert in engine.alerts[reported:]:
                print(f"  ALERT {alert.message}")
            reported = len(engine.alerts)
    finally:
        if server is not None:
            server.stop()
    print(
        f"\n{engine.refits} refits over {engine.intervals_ingested} rounds; "
        f"frequency cache {engine.cache_hits} hits / "
        f"{engine.cache_misses} misses; {len(engine.alerts)} alerts"
    )
    if args.checkpoint:
        path = save_checkpoint(engine, args.checkpoint)
        print(f"engine state checkpointed to {path}")
    from repro import obs

    if obs.metrics_enabled():
        snapshot_path = obs.trace_path().with_suffix(".metrics.json")
        snapshot_path.write_text(
            obs.render_json(obs.global_registry().snapshot()) + "\n"
        )
        print(f"metrics snapshot: {snapshot_path}")
    if obs.trace_enabled():
        obs.flush()
        print(f"span trace: {obs.trace_path()}")


def _print_policies(args: argparse.Namespace) -> None:
    from repro.exceptions import MitigationError
    from repro.mitigation.policies import POLICIES, get_policy, policy_names

    if args.action == "list":
        rows = []
        for name in policy_names():
            policy = POLICIES[name]
            rows.append(
                [
                    name,
                    ", ".join(sorted(policy.defaults)) or "-",
                    policy.description,
                ]
            )
        print("Registered mitigation policies")
        print(format_table(["Policy", "Parameters", "Description"], rows))
        return
    if not args.name:
        raise SystemExit("policies info: provide a policy name")
    try:
        policy = get_policy(args.name)
    except MitigationError as exc:
        raise SystemExit(str(exc)) from None
    print(f"{policy.name}: {policy.description}")
    print("  parameters:")
    if policy.defaults:
        for key, value in sorted(policy.defaults.items()):
            print(f"    {key} = {value}")
    else:
        print("    (none)")


def _run_mitigate(args: argparse.Namespace) -> None:
    import json as _json
    from pathlib import Path

    _apply_obs_mode(args)

    from repro.exceptions import (
        DatasetError,
        EstimationError,
        MitigationError,
        ScenarioError,
    )
    from repro.mitigation import ClosedLoopEvaluator, get_policy
    from repro.probability.base import EstimatorConfig
    from repro.probability.registry import make_estimator
    from repro.runner.campaign import validate_output_dir
    from repro.simulation.library import get_scenario
    from repro.simulation.probing import PathProber
    from repro.topology.brite import generate_brite_network
    from repro.util.rng import derive_rng

    output = None
    if args.output:
        try:
            output = validate_output_dir(args.output)
        except ValueError as exc:
            raise SystemExit(f"mitigate: {exc}") from None
    scale = scale_by_name(args.scale)
    if args.dataset is not None:
        from repro.datasets import load_dataset

        try:
            network = load_dataset(args.dataset)
        except DatasetError as exc:
            raise SystemExit(str(exc)) from None
    else:
        network = generate_brite_network(scale.brite, random_state=args.seed)
    try:
        generator = get_scenario(args.scenario or "random")
        scenario = generator.build(network, random_state=derive_rng(args.seed, 1))
        estimator = make_estimator(
            args.estimator or "Independence", EstimatorConfig(seed=args.seed)
        )
        policy = get_policy(args.policy or "corropt-greedy")
    except (ScenarioError, EstimationError, MitigationError) as exc:
        raise SystemExit(str(exc)) from None
    evaluator = ClosedLoopEvaluator(
        estimator=estimator,
        policy=policy,
        num_intervals=scale.num_intervals,
        prober=None if args.oracle else PathProber(num_packets=scale.num_packets),
        oracle=args.oracle,
    )
    # The loop replays the congestion draw on the rewritten topology, so
    # the experiment seed must be a reusable integer.
    experiment_seed = int(derive_rng(args.seed, 2).integers(0, 2**31 - 1))
    report = evaluator.evaluate(scenario, seed=experiment_seed)
    print(
        f"closed loop on {network.name} ({network.num_links} links, "
        f"{network.num_paths} paths), scenario {scenario.name}, "
        f"estimator {estimator.name}, policy {policy.name}"
    )
    print(
        f"  path congestion: {report.pre_congestion_rate:.4f} -> "
        f"{report.post_congestion_rate:.4f} "
        f"(reduction {report.reduction:+.4f})"
    )
    print(
        f"  paths disturbed: {report.paths_disturbed}/{report.num_paths}  "
        f"target links: {report.num_target_links}  "
        f"false-mitigation rate: {report.false_mitigation_rate:.2f}"
    )
    print(
        f"  estimator error: {report.pre_fit_error:.4f} pre -> "
        f"{report.post_fit_error:.4f} post"
    )
    if output is not None:
        plan_path = Path(output) / "plan.json"
        report_path = Path(output) / "report.json"
        plan_path.write_text(_json.dumps(dict(report.plan), indent=2) + "\n")
        report_path.write_text(
            _json.dumps(report.to_json_dict(), indent=2) + "\n"
        )
        print(f"  plan written to {plan_path}")
        print(f"  scorecard written to {report_path}")


def _print_ablation(args: argparse.Namespace) -> None:
    from repro.experiments.ablation import run_ablation

    result = run_ablation(
        scale_by_name(args.scale),
        seed=args.seed,
        workers=_workers(args),
        executor=args.executor,
    )
    print("Correlation-complete solve ablation (mean abs link error, "
          "No-Independence scenario)")
    print(result.to_table())


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro-tomography`` console script."""
    args = _build_parser().parse_args(argv)
    if args.command == "figure3":
        _print_figure3(args)
    elif args.command == "figure4":
        _print_figure4(args)
    elif args.command == "table2":
        _print_table2()
    elif args.command == "scaling":
        _print_scaling(args)
    elif args.command == "ablation":
        _print_ablation(args)
    elif args.command == "campaign":
        _run_campaign(args)
    elif args.command == "datasets":
        return _print_datasets(args)
    elif args.command == "scenarios":
        _print_scenarios(args)
    elif args.command == "estimators":
        _print_estimators(args)
    elif args.command == "policies":
        _print_policies(args)
    elif args.command == "mitigate":
        _run_mitigate(args)
    elif args.command == "kernels":
        _print_kernels(args)
    elif args.command == "obs":
        return _print_obs(args)
    elif args.command == "monitor":
        _run_monitor(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
