"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    repro-tomography figure3 [--scale small|paper] [--seed N] [--oracle]
    repro-tomography figure4 [--scale small|paper] [--seed N] [--oracle]
    repro-tomography table2
    repro-tomography scaling [--scale small|paper] [--seed N]
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.config import SCALES, scale_by_name
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.scaling import run_algorithm1_scaling
from repro.metrics.reporting import format_table
from repro.model.assumptions import TABLE2_MATRIX, table2_rows


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tomography",
        description=(
            "Reproduce the experiments of 'Shifting Network Tomography "
            "Toward A Practical Goal' (CoNEXT 2011)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for figure in ("figure3", "figure4"):
        sub = subparsers.add_parser(figure, help=f"regenerate {figure}")
        sub.add_argument("--scale", choices=sorted(SCALES), default="small")
        sub.add_argument("--seed", type=int, default=1)
        sub.add_argument(
            "--oracle",
            action="store_true",
            help="use noise-free path observations",
        )
    sub = subparsers.add_parser("table2", help="print the assumption matrix")
    sub = subparsers.add_parser("scaling", help="Algorithm 1 scaling sweep")
    sub.add_argument("--scale", choices=sorted(SCALES), default="small")
    sub.add_argument("--seed", type=int, default=3)
    sub = subparsers.add_parser(
        "ablation", help="ablate the Correlation-complete solve refinements"
    )
    sub.add_argument("--scale", choices=sorted(SCALES), default="small")
    sub.add_argument("--seed", type=int, default=5)
    return parser


def _print_figure3(args: argparse.Namespace) -> None:
    result = run_figure3(
        scale_by_name(args.scale), seed=args.seed, oracle=args.oracle
    )
    print("Figure 3(a) — detection rate")
    print(result.to_table("detection"))
    print()
    print("Figure 3(b) — false-positive rate")
    print(result.to_table("fp"))


def _print_figure4(args: argparse.Namespace) -> None:
    result = run_figure4(
        scale_by_name(args.scale), seed=args.seed, oracle=args.oracle
    )
    print("Figure 4(a) — mean absolute error, Brite")
    print(result.to_table("brite"))
    print()
    print("Figure 4(b) — mean absolute error, Sparse")
    print(result.to_table("sparse"))
    print()
    print("Figure 4(c) — error CDF, No Independence, Sparse")
    for estimator in ("Independence", "Correlation-heuristic", "Correlation-complete"):
        grid, cdf = result.cdf("sparse", "No Independence", estimator, points=11)
        series = "  ".join(f"{x:.1f}:{y:.2f}" for x, y in zip(grid, cdf))
        print(f"  {estimator:<22} {series}")
    print()
    print("Figure 4(d) — Correlation-complete, links vs correlation subsets")
    print(result.to_subset_table())


def _print_table2() -> None:
    columns = list(TABLE2_MATRIX)
    rows = []
    for label, checked in table2_rows():
        rows.append([label, *("X" if checked[column] else "" for column in columns)])
    print("Table 2 — sources of inaccuracy per algorithm")
    print(format_table(["Source", *columns], rows))


def _print_scaling(args: argparse.Namespace) -> None:
    result = run_algorithm1_scaling(scale_by_name(args.scale), seed=args.seed)
    print("Algorithm 1 scaling (equations formed vs naive 2^|P*| bound)")
    print(result.to_table())


def _print_ablation(args: argparse.Namespace) -> None:
    from repro.experiments.ablation import run_ablation

    result = run_ablation(scale_by_name(args.scale), seed=args.seed)
    print("Correlation-complete solve ablation (mean abs link error, "
          "No-Independence scenario)")
    print(result.to_table())


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro-tomography`` console script."""
    args = _build_parser().parse_args(argv)
    if args.command == "figure3":
        _print_figure3(args)
    elif args.command == "figure4":
        _print_figure4(args)
    elif args.command == "table2":
        _print_table2()
    elif args.command == "scaling":
        _print_scaling(args)
    elif args.command == "ablation":
        _print_ablation(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
