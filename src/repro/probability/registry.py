"""Named-estimator registry: every Probability Computation algorithm by name.

Mirrors the dataset (:mod:`repro.datasets.registry`) and scenario
(:mod:`repro.simulation.library`) registries: every estimator the sweep
drivers, the campaign runner, the streaming engine, and the CLI can name
is registered here with its factory and sweep metadata — so consumers
stop hard-coding estimator class imports and ``name == "Independence"``
string matches.

Registered entries:

* the three algorithms of the paper's Fig. 4 legend (``Independence``,
  ``Correlation-heuristic``, ``Correlation-complete``), in
  :func:`paper_estimator_names` order;
* the ablation's ``Correlation-complete (no redundancy)`` stage variant.

``cost_multiplier`` is the probe/compute budget of one fit relative to
the Independence baseline; the sweep drivers scale their
longest-processing-time cost hints by it instead of string-matching
estimator names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.exceptions import EstimationError
from repro.probability.base import EstimatorConfig, ProbabilityEstimator
from repro.probability.correlation_complete import (
    CorrelationCompleteEstimator,
    CorrelationCompleteNoRedundancy,
)
from repro.probability.correlation_heuristic import CorrelationHeuristicEstimator
from repro.probability.independence import IndependenceEstimator

#: A factory building a fresh estimator from an optional config.
EstimatorFactory = Callable[[Optional[EstimatorConfig]], ProbabilityEstimator]


@dataclass(frozen=True)
class EstimatorEntry:
    """One registered estimator: factory + sweep metadata.

    Attributes
    ----------
    name:
        Canonical registry key; equals the estimator class's ``name`` (the
        label experiment tables and trial specs use).
    factory:
        Builds a fresh estimator from an optional
        :class:`~repro.probability.base.EstimatorConfig`.
    description:
        One-line summary shown by ``repro-tomography estimators list``.
    cost_multiplier:
        Probe/compute budget of one fit relative to the Independence
        baseline — sweep drivers scale their LPT cost hints by it.
    paper_rank:
        Position in the paper's Fig. 4 legend order, or ``None`` for
        variants outside the paper's comparison.
    aliases:
        Lower-case shorthand names (CLI convenience); resolved by
        :func:`get_estimator`.
    """

    name: str
    factory: EstimatorFactory
    description: str
    cost_multiplier: float = 2.5
    paper_rank: Optional[int] = None
    aliases: Tuple[str, ...] = ()


#: All registered estimators by canonical name, in registration order.
ESTIMATORS: Dict[str, EstimatorEntry] = {}

#: Alias -> canonical name.
_ALIASES: Dict[str, str] = {}


def register_estimator(
    entry: EstimatorEntry, replace_existing: bool = False
) -> None:
    """Register an estimator; re-registration requires ``replace_existing``."""
    if entry.name in ESTIMATORS and not replace_existing:
        raise EstimationError(f"estimator {entry.name!r} is already registered")
    stale = [alias for alias, name in _ALIASES.items() if name == entry.name]
    for alias in stale:
        del _ALIASES[alias]
    for alias in entry.aliases:
        owner = _ALIASES.get(alias)
        if owner is not None and owner != entry.name:
            raise EstimationError(
                f"estimator alias {alias!r} already points at {owner!r}"
            )
        if alias in ESTIMATORS:
            raise EstimationError(
                f"estimator alias {alias!r} shadows a canonical name"
            )
        _ALIASES[alias] = entry.name
    ESTIMATORS[entry.name] = entry


def estimator_names() -> List[str]:
    """Registered canonical names, in registration order."""
    return list(ESTIMATORS)


def paper_estimator_names() -> Tuple[str, ...]:
    """The paper's Fig. 4 legend order (estimators with a ``paper_rank``)."""
    ranked = [entry for entry in ESTIMATORS.values() if entry.paper_rank is not None]
    return tuple(
        entry.name for entry in sorted(ranked, key=lambda e: e.paper_rank)
    )


def get_estimator(name: str) -> EstimatorEntry:
    """Look up a registered estimator by canonical name or alias.

    Raises
    ------
    EstimationError
        With the known names, on an unknown ``name``.
    """
    entry = ESTIMATORS.get(name)
    if entry is not None:
        return entry
    canonical = _ALIASES.get(str(name).lower())
    if canonical is not None:
        return ESTIMATORS[canonical]
    raise EstimationError(
        f"unknown estimator {name!r}; known estimators: {estimator_names()}"
    )


def make_estimator(
    name: str, config: Optional[EstimatorConfig] = None
) -> ProbabilityEstimator:
    """Build a fresh estimator by registered name (or alias)."""
    return get_estimator(name).factory(config)


def resolve_estimator(
    estimator: Union[ProbabilityEstimator, str, None],
    config: Optional[EstimatorConfig] = None,
    default: str = "Correlation-complete",
) -> ProbabilityEstimator:
    """Normalise an estimator argument: instance, registry name, or None.

    The windowed and streaming front-ends accept any of the three;
    instances pass through unchanged (``config`` is ignored for them),
    names and ``None`` (-> ``default``) build through the registry.
    """
    if isinstance(estimator, ProbabilityEstimator):
        return estimator
    return make_estimator(default if estimator is None else estimator, config)


register_estimator(
    EstimatorEntry(
        name="Independence",
        factory=lambda config=None: IndependenceEstimator(config),
        description=(
            "Per-link probabilities assuming all links independent "
            "(the CLINK [11] Probability Computation step)"
        ),
        cost_multiplier=1.0,
        paper_rank=0,
        aliases=("independence",),
    )
)
register_estimator(
    EstimatorEntry(
        name="Correlation-heuristic",
        factory=lambda config=None: CorrelationHeuristicEstimator(config),
        description=(
            "Correlation Sets via a large redundant unweighted equation "
            "pool (the earlier heuristic of [9])"
        ),
        cost_multiplier=2.5,
        paper_rank=1,
        aliases=("correlation-heuristic", "heuristic"),
    )
)
register_estimator(
    EstimatorEntry(
        name="Correlation-complete",
        factory=lambda config=None: CorrelationCompleteEstimator(config),
        description=(
            "The paper's Algorithm 1 + 2: minimal rank-increasing path-set "
            "selection over correlation subsets"
        ),
        cost_multiplier=2.5,
        paper_rank=2,
        aliases=("correlation-complete", "complete"),
    )
)
register_estimator(
    EstimatorEntry(
        name="Correlation-complete (no redundancy)",
        factory=lambda config=None: CorrelationCompleteNoRedundancy(config),
        description=(
            "Ablation variant: Algorithm 1's minimal equations only, no "
            "variance-reduction redundancy pass"
        ),
        cost_multiplier=2.5,
        aliases=("no-redundancy",),
    )
)
