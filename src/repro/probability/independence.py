"""Independence: the Probability Computation step of CLINK [11].

Under Assumption 4 (all links independent), Eq. 1 factorises completely:

    P(all paths in P good) = prod_{e in Links(P)} P(X_e = 0)

so the unknowns are just the per-link good probabilities and every usable
path set yields one linear equation in their logs. The estimator forms
equations from all single paths plus sampled multi-path sets (mirroring the
pairs the paper's Fig. 2(a) example uses), and solves by min-norm least
squares.

When links are actually correlated, the factorisation is wrong — "the last
two equations in Fig. 2(a) are wrong" — which is precisely the bias the
No-Independence scenarios expose (Fig. 4).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

import numpy as np

from repro.exceptions import EstimationError
from repro.linalg.system import EquationSystem
from repro.model.status import ObservationMatrix
from repro.probability.base import (
    FitReport,
    FrequencyCache,
    ProbabilityEstimator,
    log_frequency_weights,
    shared_sampled_pool,
    singleton_path_sets,
)
from repro.probability.query import CongestionProbabilityModel
from repro.topology.graph import Network


class IndependenceEstimator(ProbabilityEstimator):
    """Per-link probability computation assuming link independence.

    Faithful to the published CLINK step 1: the log-domain system is solved
    by *plain* (unweighted) least squares — the precision weighting of
    :func:`repro.probability.base.log_frequency_weight` is a refinement this
    reproduction applies only to the paper's own algorithm (see DESIGN.md).
    Pass a config with ``weighted=True`` to study the strengthened baseline.
    """

    name = "Independence"

    def __init__(self, config=None, weighted: bool = False) -> None:
        super().__init__(config)
        self.config.weighted = weighted

    def fit(
        self, network: Network, observations: ObservationMatrix
    ) -> CongestionProbabilityModel:
        """Estimate per-link good probabilities from path observations."""
        active = sorted(self._active_links(network, observations))
        always_good = frozenset(range(network.num_links)) - frozenset(active)
        frequency = self._make_frequency(observations)
        if not active:
            model = CongestionProbabilityModel(
                network, {}, {}, always_good_links=always_good, independent=True
            )
            return self._attach_report(model, FitReport())

        path_sets: List[FrozenSet[int]] = list(singleton_path_sets(observations))
        path_sets.extend(
            shared_sampled_pool(
                network,
                observations,
                count=self.config.pair_sample,
                max_size=self.config.path_set_max_size,
                seed=self.config.seed,
            )
        )

        # One batched frequency-kernel call for the whole pool, then a
        # vectorized coverage pass builds every equation row at once.
        frequencies = frequency.query_many(path_sets)
        incidence = network.incidence[:, active]
        coverage = np.zeros((len(path_sets), len(active)), dtype=bool)
        for i, path_set in enumerate(path_sets):
            coverage[i] = incidence[list(path_set)].any(axis=0)
        usable = (frequencies > self.config.min_frequency) & coverage.any(axis=1)
        if not usable.any():
            raise EstimationError(
                "Independence: no usable path-set equations "
                "(were all paths always congested?)"
            )
        rows = coverage[usable].astype(float)
        freqs = frequencies[usable]
        weights = (
            log_frequency_weights(freqs, frequency.num_intervals)
            if self.config.weighted
            else np.ones(len(freqs))
        )
        system = EquationSystem(len(active))
        system.add_batch(rows, np.log(freqs), weights)
        used: List[FrozenSet[int]] = [
            frozenset(path_set)
            for path_set, keep in zip(path_sets, usable)
            if keep
        ]
        solution = system.solve(upper_bound=0.0)
        good = np.exp(np.minimum(solution.values, 0.0))
        estimates: Dict[FrozenSet[int], float] = {}
        identifiable: Dict[FrozenSet[int], bool] = {}
        for i, link in enumerate(active):
            estimates[frozenset({link})] = float(good[i])
            identifiable[frozenset({link})] = bool(solution.identifiable[i])
        model = CongestionProbabilityModel(
            network,
            estimates,
            identifiable,
            always_good_links=always_good,
            independent=True,
        )
        report = FitReport(
            num_unknowns=len(active),
            num_equations=len(system),
            rank=solution.rank,
            num_identifiable=int(solution.identifiable.sum()),
            residual=solution.residual,
            path_sets=used,
            frequency_cache_hits=frequency.hits,
            frequency_cache_misses=frequency.misses,
        )
        return self._attach_report(model, report)
