"""Independence: the Probability Computation step of CLINK [11].

Under Assumption 4 (all links independent), Eq. 1 factorises completely:

    P(all paths in P good) = prod_{e in Links(P)} P(X_e = 0)

so the unknowns are just the per-link good probabilities and every usable
path set yields one linear equation in their logs. The estimator forms
equations from all single paths plus sampled multi-path sets (mirroring the
pairs the paper's Fig. 2(a) example uses), and solves by min-norm least
squares.

When links are actually correlated, the factorisation is wrong — "the last
two equations in Fig. 2(a) are wrong" — which is precisely the bias the
No-Independence scenarios expose (Fig. 4).
"""

from __future__ import annotations

from typing import Dict, FrozenSet

import numpy as np

from repro.exceptions import EstimationError
from repro.linalg.system import EquationSystem
from repro.probability.base import (
    FitReport,
    ProbabilityEstimator,
    log_frequency_weights,
    shared_sampled_pool,
    singleton_path_sets,
)
from repro.probability.pipeline import FitContext
from repro.probability.query import CongestionProbabilityModel


class IndependenceEstimator(ProbabilityEstimator):
    """Per-link probability computation assuming link independence.

    Faithful to the published CLINK step 1: the log-domain system is solved
    by *plain* (unweighted) least squares — the precision weighting of
    :func:`repro.probability.base.log_frequency_weight` is a refinement this
    reproduction applies only to the paper's own algorithm (see DESIGN.md).
    Pass a config with ``weighted=True`` to study the strengthened baseline.
    """

    name = "Independence"

    def __init__(self, config=None, weighted: bool = False) -> None:
        super().__init__(config)
        self.config.weighted = weighted

    def _empty_model(self, context: FitContext) -> CongestionProbabilityModel:
        return CongestionProbabilityModel(
            context.network,
            {},
            {},
            always_good_links=context.always_good,
            independent=True,
        )

    def _stage_discover(self, context: FitContext) -> None:
        """Candidate pool: every live single path plus sampled multi-sets.

        The unknowns are simply the active links (no correlation index),
        so discovery is just the equation pool.
        """
        context.path_sets = list(singleton_path_sets(context.observations))
        context.path_sets.extend(
            shared_sampled_pool(
                context.network,
                context.observations,
                count=self.config.pair_sample,
                max_size=self.config.path_set_max_size,
                seed=self.config.seed,
            )
        )

    def _stage_assemble(self, context: FitContext) -> None:
        """One batched frequency-kernel call for the whole pool, then a
        vectorized coverage pass builds every equation row at once."""
        active = sorted(context.active)
        path_sets = context.path_sets
        frequencies = context.frequency.query_many(path_sets)
        incidence = context.network.incidence[:, active]
        coverage = np.zeros((len(path_sets), len(active)), dtype=bool)
        for i, path_set in enumerate(path_sets):
            coverage[i] = incidence[list(path_set)].any(axis=0)
        usable = (frequencies > self.config.min_frequency) & coverage.any(axis=1)
        if not usable.any():
            raise EstimationError(
                "Independence: no usable path-set equations "
                "(were all paths always congested?)"
            )
        freqs = frequencies[usable]
        weights = (
            log_frequency_weights(freqs, context.frequency.num_intervals)
            if self.config.weighted
            else np.ones(len(freqs))
        )
        system = EquationSystem(
            len(active),
            workspace=context.system_workspace,
            sparse=self.config.sparse,
        )
        if self.config.sparse:
            # Equation entries straight off the boolean coverage rows —
            # np.nonzero walks row-major, so per-row columns are already
            # ascending (the canonical run order) and every value is 1.0.
            kept = coverage[usable]
            row_ids, columns = np.nonzero(kept)
            row_lengths = np.bincount(row_ids, minlength=kept.shape[0])
            system.add_sparse_batch(columns, row_lengths, np.log(freqs), weights)
        else:
            rows = coverage[usable].astype(float)
            system.add_batch(rows, np.log(freqs), weights)
        context.system = system
        context.used_path_sets = [
            frozenset(path_set)
            for path_set, keep in zip(path_sets, usable)
            if keep
        ]

    def _stage_build_model(self, context: FitContext) -> None:
        active = sorted(context.active)
        solution = context.solution
        good = np.exp(np.minimum(solution.values, 0.0))
        estimates: Dict[FrozenSet[int], float] = {}
        identifiable: Dict[FrozenSet[int], bool] = {}
        for i, link in enumerate(active):
            estimates[frozenset({link})] = float(good[i])
            identifiable[frozenset({link})] = bool(solution.identifiable[i])
        model = CongestionProbabilityModel(
            context.network,
            estimates,
            identifiable,
            always_good_links=context.always_good,
            independent=True,
        )
        report = FitReport(
            num_unknowns=len(active),
            num_equations=len(context.system),
            rank=solution.rank,
            num_identifiable=int(solution.identifiable.sum()),
            residual=solution.residual,
            path_sets=list(context.used_path_sets),
            frequency_cache_hits=context.frequency_hits,
            frequency_cache_misses=context.frequency_misses,
            equation_storage_bytes=context.system.storage_nbytes,
        )
        context.finish(model, report)
