"""Congestion Probability Computation (Sections 4 and 5).

This package implements the paper's primary contribution — the
**Correlation-complete** estimator (Algorithm 1 with the incremental
null-space update of Algorithm 2) — together with the two baselines it is
compared against:

* **Independence** — the Probability Computation step of
  Bayesian-Independence / CLINK [11], which assumes all links independent;
* **Correlation-heuristic** — the earlier heuristic of [9], which handles
  correlation sets but throws a large, redundant (hence noisy) equation pool
  at the solver and reports only individual links.

Every estimator is a *stage configuration* of the shared
:class:`~repro.probability.pipeline.EstimationPipeline`
(``prune -> frequency -> discover -> assemble -> solve -> build_model``),
registered by name in :mod:`repro.probability.registry`. All estimators
consume only an :class:`~repro.model.status.ObservationMatrix` (path
observations over T intervals) plus the network graph, and produce a
:class:`~repro.probability.query.CongestionProbabilityModel` answering
probability queries over links and link sets.
"""

from repro.probability.subsets import SubsetIndex, potentially_congested_links
from repro.probability.rows import build_matrix, build_row
from repro.probability.query import CongestionProbabilityModel
from repro.probability.pipeline import (
    STAGE_ORDER,
    EstimationPipeline,
    FitContext,
    FitReport,
    FrequencyCache,
    SharedFitWorkspace,
)
from repro.probability.base import EstimatorConfig, ProbabilityEstimator
from repro.probability.correlation_complete import (
    CorrelationCompleteEstimator,
    CorrelationCompleteNoRedundancy,
)
from repro.probability.independence import IndependenceEstimator
from repro.probability.correlation_heuristic import CorrelationHeuristicEstimator
from repro.probability.registry import (
    ESTIMATORS,
    EstimatorEntry,
    estimator_names,
    get_estimator,
    make_estimator,
    paper_estimator_names,
    register_estimator,
    resolve_estimator,
)
from repro.probability.windowed import CongestionTimeline, WindowedEstimator

__all__ = [
    "CongestionTimeline",
    "WindowedEstimator",
    "SubsetIndex",
    "potentially_congested_links",
    "build_matrix",
    "build_row",
    "CongestionProbabilityModel",
    "STAGE_ORDER",
    "EstimationPipeline",
    "FitContext",
    "FitReport",
    "FrequencyCache",
    "SharedFitWorkspace",
    "EstimatorConfig",
    "ProbabilityEstimator",
    "CorrelationCompleteEstimator",
    "CorrelationCompleteNoRedundancy",
    "IndependenceEstimator",
    "CorrelationHeuristicEstimator",
    "ESTIMATORS",
    "EstimatorEntry",
    "estimator_names",
    "get_estimator",
    "make_estimator",
    "paper_estimator_names",
    "register_estimator",
    "resolve_estimator",
]
