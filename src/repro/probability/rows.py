"""The ``Row`` and ``Matrix`` functions of Section 5.2, as free functions.

These are thin, name-faithful wrappers over :class:`SubsetIndex` so that code
following the paper (and the worked-example tests) can read exactly like the
text: ``Row(P, E^)`` and ``Matrix(P^, E^)``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import EstimationError
from repro.probability.subsets import SubsetIndex


def build_row(path_set: Iterable[int], index: SubsetIndex) -> np.ndarray:
    """``Row(P, E^)`` — raises when the row is unusable.

    The i-th entry is 1 iff the i-th correlation subset of ``E^`` appears in
    Eq. 1 applied to ``path_set``.
    """
    row = index.row(path_set)
    if row is None:
        raise EstimationError("path set touches a correlation subset outside the index")
    return row


def build_matrix(path_sets: Sequence[Iterable[int]], index: SubsetIndex) -> np.ndarray:
    """``Matrix(P^, E^)`` — one row per path set, in order."""
    if not path_sets:
        return np.zeros((0, len(index)))
    return np.vstack([build_row(path_set, index) for path_set in path_sets])
