"""Queryable result of Probability Computation.

A :class:`CongestionProbabilityModel` stores, per admitted correlation
subset ``E``, the estimated probability that *all links of E are good*,
``g_E = P(intersection_{e in E} X_e = 0)``, together with an identifiability
flag. From these it answers the queries the paper's scenario needs:

* per-link congestion probabilities (Fig. 4(a)-(c));
* congestion probabilities of arbitrary link sets via inclusion–exclusion
  within correlation sets and products across them (Fig. 4(d));
* joint assignment probabilities
  ``P(all of A congested, all of B good)`` — the quantity Bayesian
  inference's Probabilistic Inference step maximises.
"""

from __future__ import annotations

from itertools import combinations
from math import prod
from typing import Dict, FrozenSet, Iterable, List, Optional

import numpy as np

from repro.exceptions import IdentifiabilityError
from repro.topology.graph import Network

#: Floor applied to probabilities so logs stay finite.
PROB_FLOOR = 1e-9


class CongestionProbabilityModel:
    """Estimated good-set probabilities with set-level queries.

    Parameters
    ----------
    network:
        The monitored topology (supplies correlation sets).
    all_good_probability:
        Map from correlation subset (frozenset of link indices) to the
        estimated probability that all its links are good.
    identifiable:
        Map from subset to whether the estimate is uniquely determined by
        the equation system. Missing subsets default to ``False``.
    always_good_links:
        Links with congestion probability exactly 0 (traversed by an
        always-good path); they are transparent in every query.
    independent:
        When true (the Independence estimator), any set factorises into
        per-link probabilities, so queries never need joint unknowns.
    """

    def __init__(
        self,
        network: Network,
        all_good_probability: Dict[FrozenSet[int], float],
        identifiable: Optional[Dict[FrozenSet[int], bool]] = None,
        always_good_links: FrozenSet[int] = frozenset(),
        independent: bool = False,
    ) -> None:
        self.network = network
        self._good = {
            subset: float(np.clip(value, PROB_FLOOR, 1.0))
            for subset, value in all_good_probability.items()
        }
        self._identifiable = dict(identifiable or {})
        self.always_good_links = always_good_links
        self.independent = independent

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def subsets(self) -> List[FrozenSet[int]]:
        """All correlation subsets with stored estimates."""
        return list(self._good)

    def is_identifiable(self, subset: Iterable[int]) -> bool:
        """Whether the all-good probability of ``subset`` is identifiable."""
        reduced = self._reduce(subset)
        if reduced is None:
            return True
        if self.independent:
            return all(self._identifiable.get(frozenset({e}), False) for e in reduced)
        parts = self._partition(reduced)
        if parts is None:
            return False
        return all(self._identifiable.get(part, False) for part in parts if part)

    # ------------------------------------------------------------------
    # Core queries
    # ------------------------------------------------------------------
    def _reduce(self, links: Iterable[int]) -> Optional[FrozenSet[int]]:
        """Drop always-good links; None when nothing remains."""
        reduced = frozenset(links) - self.always_good_links
        return reduced if reduced else None

    def _partition(self, links: FrozenSet[int]) -> Optional[List[FrozenSet[int]]]:
        """Split ``links`` by correlation set; None if a part is unknown."""
        parts: List[FrozenSet[int]] = []
        remaining = set(links)
        for members in self.network.correlation_sets:
            part = frozenset(members) & links
            if part:
                remaining -= part
                if part not in self._good:
                    return None
                parts.append(part)
        if remaining:
            return None
        return parts

    def prob_all_good(self, links: Iterable[int], strict: bool = False) -> float:
        """``P(all links in the set are good)``.

        Under Correlation Sets the probability factorises across correlation
        sets (Eq. 1); within a set the stored joint estimate is used (or the
        per-link product when ``independent``).

        Parameters
        ----------
        strict:
            When true, raise :class:`IdentifiabilityError` if any needed
            joint is missing or unidentifiable instead of silently falling
            back to the per-link product.
        """
        reduced = self._reduce(links)
        if reduced is None:
            return 1.0
        if self.independent:
            return prod(
                (self._good.get(frozenset({e}), 1.0) for e in reduced), start=1.0
            )
        if len(reduced) == 1:
            # Fast path for the dominant query (per-link marginals): a
            # stored singleton is its own intersection with its correlation
            # set, so the set sweep below is unnecessary.
            stored = self._good.get(reduced)
            if stored is not None and (
                not strict or self._identifiable.get(reduced, False)
            ):
                return stored
        total = 1.0
        for members in self.network.correlation_sets:
            part = frozenset(members) & reduced
            if not part:
                continue
            stored = self._good.get(part)
            if stored is None or (strict and not self._identifiable.get(part, False)):
                if strict:
                    raise IdentifiabilityError(
                        f"P(all good) of {sorted(part)} is not identifiable"
                    )
                stored = prod(
                    (self._good.get(frozenset({e}), 1.0) for e in part),
                    start=1.0,
                )
            total *= stored
        return float(total)

    def link_congestion_probability(self, link: int) -> float:
        """``P(X_e = 1)`` for a single link."""
        if link in self.always_good_links:
            return 0.0
        return 1.0 - self.prob_all_good([link])

    def link_marginals(self) -> np.ndarray:
        """Per-link congestion probabilities, shape (num_links,)."""
        return np.array(
            [self.link_congestion_probability(e) for e in range(self.network.num_links)]
        )

    def prob_all_congested(self, links: Iterable[int], strict: bool = False) -> float:
        """The paper's *congestion probability* of a link set.

        Inclusion–exclusion over all-good probabilities:
        ``P(all S congested) = sum_{A subset S} (-1)^|A| P(all A good)``.
        Any always-good member makes the probability 0.
        """
        members = sorted(set(links))
        if any(e in self.always_good_links for e in members):
            return 0.0
        total = 0.0
        for size in range(len(members) + 1):
            for subset in combinations(members, size):
                total += (-1.0) ** size * self.prob_all_good(subset, strict=strict)
        return float(min(max(total, 0.0), 1.0))

    def assignment_log_prob(
        self,
        congested: Iterable[int],
        good: Iterable[int],
        strict: bool = False,
    ) -> float:
        """``log P(all of A congested, all of B good)`` for disjoint A, B.

        Computed per correlation set via inclusion–exclusion over the
        congested part with the good part held fixed:

            P(A cong, B good) = sum_{A' subset A} (-1)^|A'| P(A' union B good)

        and summed (log-product) across correlation sets. This is the score
        Bayesian inference maximises over candidate solutions.
        """
        congested_set = frozenset(congested) - self.always_good_links
        good_set = frozenset(good)
        if congested_set & good_set:
            raise ValueError("congested and good sets must be disjoint")
        # Links asserted congested but known always-good: impossible event.
        if frozenset(congested) & self.always_good_links:
            return -np.inf
        log_total = 0.0
        for members in self.network.correlation_sets:
            part_congested = sorted(frozenset(members) & congested_set)
            part_good = frozenset(members) & good_set
            if not part_congested and not part_good:
                continue
            probability = 0.0
            for size in range(len(part_congested) + 1):
                for subset in combinations(part_congested, size):
                    probability += (-1.0) ** size * self.prob_all_good(
                        frozenset(subset) | part_good, strict=strict
                    )
            probability = min(max(probability, PROB_FLOOR), 1.0)
            log_total += float(np.log(probability))
        return log_total
