"""Staged estimation pipeline: one fit path for every estimator.

The paper's Probability Computation is a single conceptual pipeline —
prune always-good links, derive empirical all-good frequencies, discover
the identifiable correlation unknowns, assemble the log-domain equation
system, solve, and wrap the solution into a queryable model. This module
makes that pipeline explicit:

* :class:`FitContext` — the state of one fit. Its *inputs* (network,
  observations, config, the :class:`FrequencyCache`, the
  :class:`~repro.linalg.system.SystemWorkspace`) are fixed at creation —
  cache injection happens here, immutably, instead of through mutable
  estimator attributes — and each stage fills its product slots.
* :class:`EstimationPipeline` — runs an estimator's stage list over a
  context, timing every stage into the extended :class:`FitReport`.
* :class:`SharedFitWorkspace` — trial-scoped state shared by several
  fits against one observation set: a warm :class:`FrequencyCache` plus a
  reusable equation-system arena. Sweep drivers fit all three estimators
  of a (topology, scenario, seed) cell against one warm cache instead of
  three cold ones, and the streaming engine carries its prefetched window
  workload through the same mechanism.

Estimators declare *stage configurations* (see
:mod:`repro.probability.registry`); the pipeline itself is estimator
agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.exceptions import EstimationError
from repro.linalg.system import EquationSystem, SystemWorkspace
from repro.model.kernels import active_kernel
from repro.model.status import ObservationMatrix
from repro.obs import (
    LocalCounters,
    bump_local,
    counter,
    histogram,
    local_counters,
    span,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.linalg.system import Solution
    from repro.probability.base import EstimatorConfig
    from repro.probability.query import CongestionProbabilityModel
    from repro.probability.subsets import SubsetIndex
    from repro.topology.graph import Network

# Telemetry families of the estimation layer (collected under
# REPRO_OBS=metrics|trace; declarations alone cost nothing).
_FITS_TOTAL = counter(
    "repro_pipeline_fits_total",
    "Completed estimation pipeline fits.",
    ["estimator"],
)
_STAGE_SECONDS = histogram(
    "repro_pipeline_stage_seconds",
    "Wall time per executed pipeline stage.",
    ["stage"],
)
_CACHE_HITS = counter(
    "repro_frequency_cache_hits_total",
    "FrequencyCache lookups served from the memo.",
)
_CACHE_MISSES = counter(
    "repro_frequency_cache_misses_total",
    "FrequencyCache lookups computed by the packed kernel.",
)
_CACHE_EVICTIONS = counter(
    "repro_frequency_cache_evictions_total",
    "FrequencyCache FIFO evictions under the entry bound.",
)

#: Canonical stage order of every estimator's fit.
STAGE_ORDER: Tuple[str, ...] = (
    "prune",
    "frequency",
    "discover",
    "assemble",
    "solve",
    "build_model",
)


@dataclass
class FitReport:
    """Diagnostics attached to every fitted model.

    Attributes
    ----------
    num_unknowns, num_equations, rank:
        Size and rank of the solved system.
    num_identifiable:
        Unknowns pinned down uniquely.
    residual:
        Root-mean-square equation residual.
    path_sets:
        The path sets whose Eq. 1 equations entered the system, in
        selection order (Algorithm 1's output ``P^``).
    frequency_cache_hits, frequency_cache_misses:
        :class:`FrequencyCache` traffic during *this fit* — how often an
        empirical all-good frequency was re-used vs computed by the packed
        kernel. Counted by a context-local scope the pipeline opens around
        the fit (:func:`repro.obs.local_counters`), so a fit against a warm
        :class:`SharedFitWorkspace` cache reports its own traffic — and two
        fits sharing one cache concurrently under the thread executor each
        see only their own, where the old global-snapshot deltas would
        attribute both fits' traffic to whichever finished last.
    equation_storage_bytes:
        Logical bytes of the assembled equation system's storage
        (:attr:`repro.linalg.system.EquationSystem.storage_nbytes`) —
        dense rows pay ``equations x unknowns`` cells, sparse rows pay
        per-nonzero entries. The scaling study reads this to compare the
        two storage modes without solve-transient noise.
    stage_seconds:
        Wall time per executed pipeline stage, keyed by stage name in
        execution order (see :data:`STAGE_ORDER`).
    kernel:
        Name of the frequency kernel (:mod:`repro.model.kernels`) active
        when the pipeline finished this fit — diagnostic only; kernels are
        bit-identical, so it never explains a numeric difference.
    """

    num_unknowns: int = 0
    num_equations: int = 0
    rank: int = 0
    num_identifiable: int = 0
    residual: float = 0.0
    path_sets: List[FrozenSet[int]] = field(default_factory=list)
    frequency_cache_hits: int = 0
    frequency_cache_misses: int = 0
    equation_storage_bytes: int = 0
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    kernel: str = ""

    @property
    def total_seconds(self) -> float:
        """Summed wall time of every executed stage."""
        return float(sum(self.stage_seconds.values()))


class FrequencyCache:
    """Batch-aware, bounded memo over empirical all-good frequencies.

    A thin facade over the observation backend's batched Eq. 1 kernel
    (:meth:`repro.model.status.ObservationMatrix.all_good_frequencies`):
    single queries memoise through ``__call__``, and :meth:`query_many`
    evaluates a whole batch of path sets in one packed-kernel invocation,
    only computing the sets the memo has not seen.

    The memo is *bounded* (``max_entries``, FIFO eviction) so that windowed
    and long-horizon reruns cannot grow it without limit, and it counts
    hits/misses/evictions for diagnosability — estimators surface the
    counters in :class:`FitReport`.
    """

    #: Default bound on memoised path sets (~a few MB of keys at worst).
    DEFAULT_MAX_ENTRIES = 65536

    def __init__(
        self,
        observations: ObservationMatrix,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> None:
        if max_entries < 1:
            raise EstimationError("FrequencyCache max_entries must be >= 1")
        self._observations = observations
        self._cache: Dict[FrozenSet[int], float] = {}
        self._max_entries = max_entries
        # Keys accessed since the last reset_touched(), in first-touch
        # order (a dict used as an ordered set). ``None`` = tracking off
        # (the default), so ordinary fits pay neither time nor memory;
        # reset_touched() switches it on.
        self._touched: Optional[Dict[FrozenSet[int], None]] = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def observations(self) -> ObservationMatrix:
        """The observation set whose frequencies this cache memoises."""
        return self._observations

    @property
    def num_intervals(self) -> int:
        """Observation horizon ``T`` backing the frequencies."""
        return self._observations.num_intervals

    def _store(self, key: FrozenSet[int], value: float) -> None:
        if len(self._cache) >= self._max_entries:
            # FIFO eviction: drop the oldest insertion (dicts preserve
            # insertion order). Estimators touch a path set in bursts, so
            # recency-of-insertion is a good enough proxy for usefulness.
            self._cache.pop(next(iter(self._cache)))
            self.evictions += 1
            bump_local("frequency_cache.evictions")
            _CACHE_EVICTIONS.inc()
        self._cache[key] = value

    def __call__(self, path_set: Iterable[int]) -> float:
        key = frozenset(path_set)
        if self._touched is not None:
            self._touched[key] = None
        value = self._cache.get(key)
        if value is None:
            self.misses += 1
            bump_local("frequency_cache.misses")
            _CACHE_MISSES.inc()
            value = self._observations.all_good_frequency(key)
            self._store(key, value)
        else:
            self.hits += 1
            bump_local("frequency_cache.hits")
            _CACHE_HITS.inc()
        return value

    def query_many(self, path_sets: Sequence[Iterable[int]]) -> np.ndarray:
        """Frequencies for a batch of path sets, one kernel call for misses.

        Returns a float array aligned with ``path_sets``. Duplicate keys
        within the batch are evaluated once.
        """
        keys = [frozenset(path_set) for path_set in path_sets]
        resolved: Dict[FrozenSet[int], float] = {}
        missing: List[FrozenSet[int]] = []
        if self._touched is not None:
            for key in keys:
                self._touched[key] = None
        batch_hits = 0
        for key in keys:
            if key in resolved:
                continue
            value = self._cache.get(key)
            if value is None:
                missing.append(key)
            else:
                batch_hits += 1
                resolved[key] = value
        if batch_hits:
            self.hits += batch_hits
            bump_local("frequency_cache.hits", batch_hits)
            _CACHE_HITS.inc(batch_hits)
        if missing:
            self.misses += len(missing)
            bump_local("frequency_cache.misses", len(missing))
            _CACHE_MISSES.inc(len(missing))
            values = self._observations.all_good_frequencies(missing)
            for key, value in zip(missing, values):
                resolved[key] = float(value)
                self._store(key, float(value))
        return np.array([resolved[key] for key in keys])

    def prefetch(self, path_sets: Sequence[Iterable[int]]) -> None:
        """Warm the memo for ``path_sets`` without returning values."""
        self.query_many(path_sets)

    def reset_touched(self) -> None:
        """Start (or restart) access tracking from an empty touched set.

        Tracking is off by default so ordinary fits keep the documented
        bounded-memory behaviour; callers that need the access trace (the
        streaming engine, between prefetch and fit) switch it on here and
        clear it with the same call on each reuse.
        """
        self._touched = {}

    def touched_keys(self) -> List[FrozenSet[int]]:
        """Path sets accessed since the last :meth:`reset_touched`.

        The streaming engine prefetches the previous workload, resets, and
        harvests these after the fit — so the carried workload is exactly
        the frequency queries the fit actually made, and path sets the
        estimator no longer needs fall out instead of accumulating.
        Empty when tracking was never enabled.
        """
        return list(self._touched) if self._touched is not None else []


class SharedFitWorkspace:
    """Trial-scoped state shared by several fits against one observation set.

    Holds the warm :class:`FrequencyCache` and the reusable
    :class:`~repro.linalg.system.SystemWorkspace` arena that every fit in
    one sweep cell (topology, scenario, seed) checks out instead of
    cold-starting. Frequencies are pure functions of (observations, path
    set), so a cache hit returns the exact value a cold fit would compute
    — shared-workspace fits are bit-identical to cold-cache fits, only
    cheaper.

    Parameters
    ----------
    observations:
        The observation set every fit through this workspace must target;
        :meth:`checkout` rejects any other (a silently mismatched cache
        would poison every estimate).
    max_entries:
        Bound on the shared frequency memo.
    system:
        An existing equation-system arena to adopt (the streaming engine
        carries one across windows); a fresh one is built by default.
    """

    def __init__(
        self,
        observations: ObservationMatrix,
        max_entries: int = FrequencyCache.DEFAULT_MAX_ENTRIES,
        system: Optional[SystemWorkspace] = None,
    ) -> None:
        self.observations = observations
        self.frequency = FrequencyCache(observations, max_entries)
        self.system = system if system is not None else SystemWorkspace()

    def checkout(self, observations: ObservationMatrix) -> FrequencyCache:
        """The shared cache, after verifying the observation set matches."""
        if observations is not self.observations:
            raise EstimationError(
                "SharedFitWorkspace is bound to a different observation set; "
                "build one workspace per observation matrix"
            )
        return self.frequency


#: One pipeline stage: mutates the context's product slots in place.
StageFn = Callable[["FitContext"], None]


@dataclass
class FitContext:
    """Everything one fit reads and produces, stage by stage.

    The first five fields are the fit's *inputs* and are fixed at
    creation (``frequency`` may start ``None`` for cold fits — the
    ``frequency`` stage then builds the per-fit cache). The remaining
    fields are product slots, each owned by the stage of the same phase;
    stages only ever fill slots, never re-point the inputs.
    """

    network: "Network"
    observations: ObservationMatrix
    config: "EstimatorConfig"
    frequency: Optional[FrequencyCache] = None
    system_workspace: Optional[SystemWorkspace] = None
    # --- prune products -------------------------------------------------
    active: FrozenSet[int] = frozenset()
    always_good: FrozenSet[int] = frozenset()
    # --- discover products ----------------------------------------------
    index: Optional["SubsetIndex"] = None
    pool: List[FrozenSet[int]] = field(default_factory=list)
    path_sets: List[FrozenSet[int]] = field(default_factory=list)
    # --- assemble products ----------------------------------------------
    extra_path_sets: List[FrozenSet[int]] = field(default_factory=list)
    used_path_sets: List[FrozenSet[int]] = field(default_factory=list)
    system: Optional[EquationSystem] = None
    # --- solve / build_model products -----------------------------------
    solution: Optional["Solution"] = None
    model: Optional["CongestionProbabilityModel"] = None
    report: Optional[FitReport] = None
    # --- bookkeeping ----------------------------------------------------
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    done: bool = False
    # Per-fit cache-counter scope, opened by EstimationPipeline.run().
    # Context-local (one per thread of execution), so concurrent fits
    # sharing a SharedFitWorkspace cache under the thread executor each
    # account only their own traffic — global-counter snapshots would
    # fold the other fit's hits into this fit's delta.
    _local: Optional[LocalCounters] = None

    @property
    def frequency_hits(self) -> int:
        """Cache hits this fit made (scope-local count)."""
        return self._local.get("frequency_cache.hits") if self._local else 0

    @property
    def frequency_misses(self) -> int:
        """Cache misses this fit made (scope-local count)."""
        return self._local.get("frequency_cache.misses") if self._local else 0

    def finish(
        self, model: "CongestionProbabilityModel", report: FitReport
    ) -> None:
        """Record the finished model/report and stop the pipeline."""
        self.model = model
        self.report = report
        self.done = True


class EstimationPipeline:
    """Run a named stage list over a :class:`FitContext`.

    Stages execute in order; a stage may short-circuit the rest by calling
    :meth:`FitContext.finish` (the prune stage does, when nothing is
    potentially congested). Each stage runs inside a telemetry span
    (``pipeline.<stage>``, under a ``pipeline.fit`` parent) whose elapsed
    time is *also* the ``stage_seconds`` entry of the report — the trace
    and the report are the same measurement, not two clocks.
    """

    def __init__(
        self, stages: Sequence[Tuple[str, StageFn]], name: str = "unknown"
    ) -> None:
        if not stages:
            raise EstimationError("EstimationPipeline needs at least one stage")
        names = [name for name, _ in stages]
        if len(set(names)) != len(names):
            raise EstimationError(f"duplicate pipeline stage names: {names}")
        self._stages: List[Tuple[str, StageFn]] = list(stages)
        self._name = name

    @property
    def stage_names(self) -> List[str]:
        """The stage names, in execution order."""
        return [name for name, _ in self._stages]

    def run(self, context: FitContext) -> "CongestionProbabilityModel":
        """Execute the stages and return the fitted, report-carrying model."""
        with local_counters() as local, span(
            "pipeline.fit", estimator=self._name
        ):
            context._local = local
            for name, stage in self._stages:
                with span(f"pipeline.{name}", estimator=self._name) as sp:
                    stage(context)
                context.stage_seconds[name] = sp.elapsed
                _STAGE_SECONDS.observe(sp.elapsed, stage=name)
                if context.done:
                    break
        if context.model is None or context.report is None:
            raise EstimationError(
                "estimation pipeline finished without producing a model"
            )
        _FITS_TOTAL.inc(estimator=self._name)
        context.report.stage_seconds = dict(context.stage_seconds)
        context.report.kernel = active_kernel().name
        context.model.report = context.report  # type: ignore[attr-defined]
        return context.model
