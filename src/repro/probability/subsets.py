"""Correlation subsets, potential congestion, and the unknown index.

Section 5.2 of the paper defines, for the estimation machinery:

* a **correlation subset** — a non-empty subset of a correlation set;
* its **complement** within the correlation set;
* **potentially congested** subsets — those none of whose links is traversed
  by an always-good path (all other subsets have congestion probability 0
  and are excluded from the unknowns);
* the vector ``Row(P, E^)`` and matrix ``Matrix(P^, E^)`` mapping path sets
  to equations over an ordering ``E^`` of the unknowns.

:class:`SubsetIndex` realises ``E^``: a frozen ordering of the correlation
subsets admitted as unknowns. Because the total number of correlation
subsets is exponential ("there may be billions of such sets"), the index is
*configurable* exactly as Section 4 prescribes: it admits requested subsets
up to a target size plus every subset that actually occurs as
``Links(P) intersect C`` for the candidate path sets, up to a hard size cap.
Rows touching a subset outside the index are unusable and rejected.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import EstimationError
from repro.model.status import ObservationMatrix
from repro.topology.graph import Network


def potentially_congested_links(
    network: Network,
    observations: ObservationMatrix,
    tolerance: float = 0.0,
) -> FrozenSet[int]:
    """Links not traversed by any (effectively) always-good path.

    By Separability, every link on an always-good path is good in every
    interval, so its congestion probability is 0 and it is excluded from the
    unknowns (Section 5.2: "the congestion probability of any correlation
    subset that is not potentially congested is 0"). ``tolerance`` absorbs
    E2E-monitoring false positives — without it, a noisy monitor leaves no
    path always-good over a long horizon and the pruning collapses.
    """
    always_good = observations.always_good_paths(tolerance)
    surely_good = network.links_covered(always_good)
    return frozenset(range(network.num_links)) - surely_good


def _mask_of(links: Iterable[int]) -> int:
    """Integer bitmask with bit ``e`` set for every link ``e``."""
    mask = 0
    for link_index in links:
        mask |= 1 << link_index
    return mask


def _links_of_mask(mask: int) -> FrozenSet[int]:
    """Inverse of :func:`_mask_of`."""
    links = []
    while mask:
        low = mask & -mask
        links.append(low.bit_length() - 1)
        mask ^= low
    return frozenset(links)


class SubsetIndex:
    """Frozen ordering ``E^`` of admitted potentially-congested subsets.

    Parameters
    ----------
    network:
        Supplies correlation sets and coverage functions.
    active_links:
        The potentially congested links; all subsets are formed within this
        set (always-good links contribute probability 1 and are projected
        out of every equation).
    subsets:
        The admitted correlation subsets, in index (``E^``) order.
    """

    def __init__(
        self,
        network: Network,
        active_links: FrozenSet[int],
        subsets: Sequence[FrozenSet[int]],
    ) -> None:
        self.network = network
        self.active_links = active_links
        self.subsets: List[FrozenSet[int]] = list(subsets)
        self._position: Dict[FrozenSet[int], int] = {
            subset: i for i, subset in enumerate(self.subsets)
        }
        if len(self._position) != len(self.subsets):
            raise EstimationError("SubsetIndex: duplicate subsets in ordering")
        self._correlation_set_of: Dict[FrozenSet[int], FrozenSet[int]] = {}
        self._active_sets: List[FrozenSet[int]] = [
            frozenset(c & active_links)
            for c in network.correlation_sets
            if c & active_links
        ]
        for subset in self.subsets:
            owner = None
            for members in self._active_sets:
                if subset <= members:
                    owner = members
                    break
            if owner is None:
                raise EstimationError(
                    f"subset {sorted(subset)} crosses correlation-set boundaries"
                )
            self._correlation_set_of[subset] = owner
        # Bitmask mirrors of the frozenset structures: decomposing a path
        # set into Eq. 1 unknowns becomes a few integer AND/ORs instead of
        # per-query frozenset algebra.
        self._active_mask = _mask_of(active_links)
        self._set_masks = [_mask_of(members) for members in self._active_sets]
        self._position_by_mask: Dict[int, int] = {
            _mask_of(subset): i for i, subset in enumerate(self.subsets)
        }
        self._path_masks = network.path_link_masks()
        self._selector_cache: Dict[FrozenSet[int], FrozenSet[int]] = {}
        self._decompose_cache: Dict[FrozenSet[int], Optional[Tuple[int, ...]]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        network: Network,
        active_links: FrozenSet[int],
        candidate_path_sets: Iterable[FrozenSet[int]],
        requested_subset_size: int = 1,
        hard_subset_cap: int = 6,
        max_requested_per_set: Optional[int] = 2000,
    ) -> "SubsetIndex":
        """Assemble the unknown ordering.

        Admits (a) every subset of each active correlation set up to
        ``requested_subset_size`` (the caller's "compute sets of one, two,
        or three links" knob from Section 4, optionally capped per
        correlation set), and (b) every subset occurring as
        ``Links(P) intersect C`` for a candidate path set ``P``, up to
        ``hard_subset_cap`` links (rows needing anything larger are
        unusable).
        """
        admitted: Dict[FrozenSet[int], None] = {}

        def admit(subset: FrozenSet[int]) -> None:
            if subset and subset not in admitted:
                admitted[subset] = None

        active_sets = [
            frozenset(c & active_links)
            for c in network.correlation_sets
            if c & active_links
        ]
        for members in active_sets:
            ordered = sorted(members)
            count = 0
            for size in range(1, min(requested_subset_size, len(ordered)) + 1):
                for combo in combinations(ordered, size):
                    admit(frozenset(combo))
                    count += 1
                    if max_requested_per_set is not None and count >= max_requested_per_set:
                        break
                if max_requested_per_set is not None and count >= max_requested_per_set:
                    break
        # Mask arithmetic for the candidate sweep: the pool may hold
        # thousands of path sets, and each only needs a few integer ANDs.
        path_masks = network.path_link_masks()
        active_mask = _mask_of(active_links)
        set_masks = [_mask_of(members) for members in active_sets]
        known_parts: Dict[int, FrozenSet[int]] = {}
        for path_set in candidate_path_sets:
            links_mask = 0
            for path_index in path_set:
                links_mask |= path_masks[path_index]
            links_mask &= active_mask
            for set_mask in set_masks:
                part_mask = links_mask & set_mask
                if not part_mask or part_mask.bit_count() > hard_subset_cap:
                    continue
                part = known_parts.get(part_mask)
                if part is None:
                    part = _links_of_mask(part_mask)
                    known_parts[part_mask] = part
                admit(part)
        return cls(network, active_links, list(admitted))

    @classmethod
    def build_observed(
        cls,
        network: Network,
        active_links: FrozenSet[int],
        candidate_path_sets: Iterable[FrozenSet[int]],
        hard_subset_cap: int = 6,
    ) -> "SubsetIndex":
        """Lazily-discovered unknowns: admit only what the data demands.

        The internet-scale admission policy: no up-front enumeration of
        multi-link subsets per correlation set — beyond the singletons
        (always unknowns), a joint subset enters the index only when it
        actually occurs as ``Links(P) intersect C`` for an observed
        candidate path set. Equivalent to
        ``build(requested_subset_size=1, ...)``, so the index size is
        output-sensitive in the observed outcome patterns instead of
        combinatorial in the correlation-set sizes.
        """
        return cls.build(
            network,
            active_links,
            candidate_path_sets,
            requested_subset_size=1,
            hard_subset_cap=hard_subset_cap,
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.subsets)

    def __contains__(self, subset: FrozenSet[int]) -> bool:
        return subset in self._position

    def position(self, subset: FrozenSet[int]) -> int:
        """Index of ``subset`` in the ordering ``E^``."""
        try:
            return self._position[subset]
        except KeyError as exc:
            raise EstimationError(f"subset {sorted(subset)} not indexed") from exc

    def active_correlation_sets(self) -> List[FrozenSet[int]]:
        """Correlation sets restricted to active links (non-empty only)."""
        return list(self._active_sets)

    def complement(self, subset: FrozenSet[int]) -> FrozenSet[int]:
        """The paper's complement: the rest of the (active) correlation set.

        Complementing within the *active* links is equivalent to the paper's
        definition over the full correlation set, because paths through
        always-good links contribute probability-1 factors.
        """
        return self._correlation_set_of[subset] - subset

    # ------------------------------------------------------------------
    # Row construction (Section 5.2)
    # ------------------------------------------------------------------
    def decompose(self, path_set: Iterable[int]) -> Optional[List[int]]:
        """Unknown positions occurring in Eq. 1 applied to ``path_set``.

        Returns ``None`` when the equation would touch a subset outside the
        index (the row is unusable). The empty path set decomposes to no
        unknowns. Memoised per path set: the estimators revisit the same
        sets across selection, redundancy, and solve passes.
        """
        key = (path_set if isinstance(path_set, frozenset) else frozenset(path_set))
        try:
            cached = self._decompose_cache[key]
        except KeyError:
            pass
        else:
            return None if cached is None else list(cached)
        path_masks = self._path_masks
        links_mask = 0
        for path_index in key:
            links_mask |= path_masks[path_index]
        links_mask &= self._active_mask
        positions: List[int] = []
        for set_mask in self._set_masks:
            part = links_mask & set_mask
            if not part:
                continue
            position = self._position_by_mask.get(part)
            if position is None:
                self._decompose_cache[key] = None
                return None
            positions.append(position)
        self._decompose_cache[key] = tuple(positions)
        return positions

    def row(self, path_set: Iterable[int]) -> Optional[np.ndarray]:
        """``Row(P, E^)``: the 0/1 coefficient vector for ``path_set``."""
        positions = self.decompose(path_set)
        if positions is None:
            return None
        row = np.zeros(len(self.subsets))
        row[positions] = 1.0
        return row

    def decompose_batch(
        self, path_sets: Sequence[Iterable[int]]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sparse ``Matrix(P^, E^)``: unknown positions per usable path set.

        Returns ``(flat_positions, row_lengths, usable)``:
        ``flat_positions`` concatenates each usable path set's unknown
        positions (in decomposition order), ``row_lengths`` holds the
        per-row counts, and ``usable`` is the same mask
        :meth:`rows_matrix` reports. This is the discover/assemble
        primitive of the sparse estimation mode — rows never densify to
        ``len(self)`` width here.
        """
        usable = np.zeros(len(path_sets), dtype=bool)
        flat_positions: List[int] = []
        row_lengths: List[int] = []
        for i, path_set in enumerate(path_sets):
            positions = self.decompose(path_set)
            if not positions:
                continue
            usable[i] = True
            flat_positions.extend(positions)
            row_lengths.append(len(positions))
        return (
            np.asarray(flat_positions, dtype=np.int64),
            np.asarray(row_lengths, dtype=np.int64),
            usable,
        )

    def rows_matrix(
        self, path_sets: Sequence[Iterable[int]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``Matrix(P^, E^)`` for the *usable* path sets of a batch.

        Returns ``(matrix, usable)`` where ``usable`` is a boolean mask of
        length ``len(path_sets)`` and ``matrix`` has one row per usable path
        set, in batch order. Unusable rows (touching subsets outside the
        index, or touching no unknown at all) are dropped from the matrix.
        """
        flat_positions, row_lengths, usable = self.decompose_batch(path_sets)
        matrix = np.zeros((row_lengths.size, len(self.subsets)))
        if row_lengths.size:
            row_ids = np.repeat(np.arange(row_lengths.size), row_lengths)
            matrix[row_ids, flat_positions] = 1.0
        return matrix, usable

    def paths_selector(self, subset: FrozenSet[int]) -> FrozenSet[int]:
        """The paper's path-set primitive ``Paths(E) \\ Paths(complement(E))``.

        Paths that traverse ``subset`` but avoid the rest of its correlation
        set, so Eq. 1 applied to them intersects the correlation set in
        exactly ``subset``. Memoised: Algorithm 1 revisits subsets many
        times while growing rank.
        """
        cached = self._selector_cache.get(subset)
        if cached is None:
            cached = self.network.paths_covering(
                subset
            ) - self.network.paths_covering(self.complement(subset))
            self._selector_cache[subset] = cached
        return cached
