"""Correlation-complete: the paper's Algorithm 1 (Section 5.3).

The estimator computes, for every admitted potentially-congested correlation
subset, the probability that all its links are good, by:

1. forming an **initial list of path sets** — for each subset ``E``, the
   selector ``Paths(E) \\ Paths(complement(E))`` (Algorithm 1 lines 1-5);
2. computing the null space ``N`` of the associated ``Matrix(P^, E^)``
   (lines 6-7);
3. **iteratively adding path sets that increase the system rank**: subsets
   ``E`` are visited in decreasing Hamming weight of their null-space row
   (``SortByHammingWeight``), candidate path sets are enumerated inside
   ``Paths(E) \\ Paths(complement(E))``, and the first row ``r`` with
   ``||r N|| > 0`` is kept, after which ``N`` is shrunk *incrementally* by
   Algorithm 2 (lines 8-22);
4. solving the final log-domain least-squares system and classifying each
   unknown as identifiable iff the final null space vanishes on its
   coordinate.

Steps 1-3 are the pipeline's ``discover`` stage, the redundancy pass plus
system construction its ``assemble`` stage. Deviations from the listing
(documented in DESIGN.md): the enumeration of path subsets on line 11 is
bounded (size- and count-capped, smallest first) and the unknown ordering
``E^`` is the configurable index of
:class:`~repro.probability.subsets.SubsetIndex` rather than the full
exponential family — both are the paper's own "configurable subset of the
computable probabilities" resource knob (Section 4).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import EstimationError
from repro.linalg.nullspace import DEFAULT_TOL, null_space, null_space_update
from repro.linalg.system import EquationSystem
from repro.model.status import ObservationMatrix
from repro.probability.base import (
    FitReport,
    FrequencyCache,
    ProbabilityEstimator,
    log_frequency_weights,
    shared_sampled_pool,
    singleton_path_sets,
)
from repro.probability.pipeline import FitContext
from repro.probability.query import CongestionProbabilityModel
from repro.probability.subsets import SubsetIndex
from repro.topology.graph import Network
from repro.util.subsets import bounded_subsets


class CorrelationCompleteEstimator(ProbabilityEstimator):
    """The paper's Probability Computation algorithm (Algorithm 1 + 2)."""

    name = "Correlation-complete"

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------
    def _stage_discover(self, context: FitContext) -> None:
        """Assemble ``E^`` and run Algorithm 1's path-set selection.

        Raises
        ------
        EstimationError
            When no usable equation exists (e.g. every path was congested
            in every interval).
        """
        context.index, context.pool = self._build_index(
            context.network, context.observations, context.active
        )
        context.path_sets = self._select_path_sets(context.index, context.frequency)
        if not context.path_sets:
            raise EstimationError(
                "Correlation-complete: no usable path-set equations "
                "(were all paths always congested?)"
            )

    def _stage_assemble(self, context: FitContext) -> None:
        """Redundancy pass, then the weighted log-domain system + priors."""
        context.extra_path_sets = self._redundant_path_sets(
            context.index, context.frequency, context.pool, context.path_sets
        )
        all_sets = list(context.path_sets) + list(context.extra_path_sets)
        if self.config.sparse:
            flat_positions, row_lengths, usable = context.index.decompose_batch(
                all_sets
            )
        else:
            rows, usable = context.index.rows_matrix(all_sets)
        if not usable.all():
            raise EstimationError("selected path set became unusable")
        freqs = context.frequency.query_many(all_sets)
        weights = (
            log_frequency_weights(freqs, context.frequency.num_intervals)
            if self.config.weighted
            else np.ones(len(all_sets))
        )
        system = EquationSystem(
            len(context.index),
            workspace=context.system_workspace,
            sparse=self.config.sparse,
        )
        if self.config.sparse:
            system.add_sparse_batch(
                flat_positions, row_lengths, np.log(freqs), weights
            )
        else:
            system.add_batch(rows, np.log(freqs), weights)
        self._add_prior_equations(system, context.index)
        context.system = system
        context.used_path_sets = list(context.path_sets)

    def _stage_build_model(self, context: FitContext) -> None:
        solution = context.solution
        log_good = np.minimum(solution.values, 0.0)
        good = np.exp(log_good)
        estimates: Dict[FrozenSet[int], float] = {}
        identifiable: Dict[FrozenSet[int], bool] = {}
        for position, subset in enumerate(context.index.subsets):
            estimates[subset] = float(good[position])
            identifiable[subset] = bool(solution.identifiable[position])
        model = CongestionProbabilityModel(
            context.network,
            estimates,
            identifiable,
            always_good_links=context.always_good,
        )
        report = FitReport(
            num_unknowns=len(context.index),
            num_equations=len(context.system),
            rank=solution.rank,
            num_identifiable=int(solution.identifiable.sum()),
            residual=solution.residual,
            path_sets=list(context.used_path_sets),
            frequency_cache_hits=context.frequency_hits,
            frequency_cache_misses=context.frequency_misses,
            equation_storage_bytes=context.system.storage_nbytes,
        )
        context.finish(model, report)

    # ------------------------------------------------------------------
    # Unknown discovery
    # ------------------------------------------------------------------
    def _build_index(
        self,
        network: Network,
        observations: ObservationMatrix,
        active: FrozenSet[int],
    ) -> Tuple[SubsetIndex, List[FrozenSet[int]]]:
        """Assemble ``E^`` plus the candidate path-set pool that shaped it."""
        candidates: List[FrozenSet[int]] = list(singleton_path_sets(observations))
        candidates.extend(
            shared_sampled_pool(
                network,
                observations,
                count=self.config.pair_sample,
                max_size=self.config.path_set_max_size,
                seed=self.config.seed,
            )
        )
        # Selectors of singleton subsets make per-link equations usable even
        # before the index exists (they only need correlation sets).
        active_sets = [
            frozenset(c & active) for c in network.correlation_sets if c & active
        ]
        for members in active_sets:
            for link in sorted(members):
                selector = network.paths_covering([link]) - network.paths_covering(
                    members - {link}
                )
                if selector:
                    candidates.append(frozenset(selector))
        index = SubsetIndex.build(
            network,
            active,
            candidates,
            requested_subset_size=self.config.requested_subset_size,
            hard_subset_cap=self.config.hard_subset_cap,
        )
        return index, candidates

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def _usable_row(
        self,
        index: SubsetIndex,
        frequency: FrequencyCache,
        path_set: FrozenSet[int],
    ) -> Optional[np.ndarray]:
        """Row for ``path_set`` or None (outside index / zero frequency)."""
        if not path_set:
            return None
        row = index.row(path_set)
        if row is None or not row.any():
            return None
        if frequency(path_set) <= self.config.min_frequency:
            return None
        return row

    def _select_path_sets(
        self, index: SubsetIndex, frequency: FrequencyCache
    ) -> List[FrozenSet[int]]:
        """Algorithm 1: choose the path sets whose equations enter the system."""
        chosen: List[FrozenSet[int]] = []
        rows: List[np.ndarray] = []
        seen: Set[FrozenSet[int]] = set()

        # Lines 1-5: one selector path set per correlation subset. All
        # selector frequencies are prefetched through one batched kernel
        # call before the sequential admission loop runs.
        selectors = [
            frozenset(index.paths_selector(subset)) for subset in index.subsets
        ]
        frequency.prefetch([s for s in selectors if s])
        for path_set in selectors:
            if path_set in seen:
                continue
            row = self._usable_row(index, frequency, path_set)
            if row is None:
                continue
            seen.add(path_set)
            chosen.append(path_set)
            rows.append(row)

        # Lines 6-7: null space of the initial system.
        matrix = (np.vstack(rows) if rows else np.zeros((0, len(index))))
        basis = null_space(matrix)

        # Lines 8-22: grow rank with incrementally-updated null space.
        while basis.shape[1] > 0:
            added = self._add_rank_increasing_row(index, frequency, basis, seen, chosen)
            if added is None:
                break
            basis = null_space_update(basis, added)
        return chosen

    def _add_rank_increasing_row(
        self,
        index: SubsetIndex,
        frequency: FrequencyCache,
        basis: np.ndarray,
        seen: Set[FrozenSet[int]],
        chosen: List[FrozenSet[int]],
    ) -> Optional[np.ndarray]:
        """One pass of lines 9-20; returns the added row or None.

        ``SortByHammingWeight``: subsets are visited in decreasing count of
        non-zero entries of their null-space row — if unknown ``i`` has many
        non-zeros in ``N``, a row touching it is likely to satisfy
        ``||r N|| > 0``.
        """
        weights = np.count_nonzero(np.abs(basis) > 1e-12, axis=1)
        order = np.argsort(-weights, kind="stable")
        for position in order:
            if weights[position] == 0:
                # Remaining subsets are already orthogonal to every null
                # direction; no row through them can add rank.
                break
            subset = index.subsets[int(position)]
            base = sorted(index.paths_selector(subset))
            if not base:
                continue
            combos = [
                frozenset(combo)
                for combo in bounded_subsets(
                    base,
                    max_size=self.config.path_set_max_size,
                    max_count=self.config.path_set_max_count,
                )
            ]
            fresh = [c for c in combos if c not in seen]
            # Candidates are evaluated in small batches — frequencies via
            # one kernel call, rows via one index sweep, rank tests via one
            # matrix product per batch — and the first usable
            # rank-increasing candidate wins, exactly as a sequential
            # line-by-line scan would choose. Chunking keeps the common
            # case (an early candidate wins) from paying for the full
            # slate.
            chunk = 16
            for start in range(0, len(fresh), chunk):
                block = fresh[start : start + chunk]
                frequencies = frequency.query_many(block)
                rows, usable = index.rows_matrix(block)
                if rows.shape[0] == 0:
                    continue
                gains = np.linalg.norm(rows @ basis, axis=1)
                candidate_ok = frequencies[usable] > self.config.min_frequency
                candidates = [c for c, keep in zip(block, usable) if keep]
                for candidate, ok, gain, row in zip(
                    candidates, candidate_ok, gains, rows
                ):
                    if not ok or gain <= DEFAULT_TOL:
                        continue
                    seen.add(candidate)
                    chosen.append(candidate)
                    return row
        return None

    # ------------------------------------------------------------------
    # Variance reduction
    # ------------------------------------------------------------------
    def _redundant_path_sets(
        self,
        index: SubsetIndex,
        frequency: FrequencyCache,
        pool: Sequence[FrozenSet[int]],
        selected: Sequence[FrozenSet[int]],
    ) -> List[FrozenSet[int]]:
        """Additional consistent equations for finite-sample averaging.

        Algorithm 1 guarantees *rank* with the minimum number of equations;
        with finite ``T`` each empirical frequency is noisy, so the solve
        additionally averages over the already-computed candidate pool
        (usable, non-duplicate path sets). The rows lie in the span of the
        selected system, leaving identifiability untouched, and are weighted
        by their estimated precision — this is an implementation refinement
        over the paper's listing, documented in DESIGN.md.
        """
        seen = set(selected)
        fresh = [
            path_set
            for path_set in dict.fromkeys(pool)
            if path_set and path_set not in seen
        ]
        if not fresh:
            return []
        frequencies = frequency.query_many(fresh)
        _, usable = index.rows_matrix(fresh)
        keep = usable & (frequencies > self.config.min_frequency)
        return [path_set for path_set, ok in zip(fresh, keep) if ok]

    # ------------------------------------------------------------------
    def _add_prior_equations(self, system: EquationSystem, index: SubsetIndex) -> None:
        """Weak within-correlation-set prior tying singletons to joints.

        Where the data equations identify the unknowns, their far larger
        weights dominate and the prior is immaterial; along *unidentifiable*
        directions (Identifiability++ failures — e.g. a path's unique tail,
        or an inter-domain link inseparable from the intra-domain link
        behind it) the prior decides how a joint's log-probability is
        apportioned to its members:

        * ``prior_mode='correlation'`` (default): ``log g_e = log g_S`` for
          every member — bundle members co-congest, which is the natural
          default under Assumption 5 ("links from the same correlation set
          may be correlated") and exact when the bundle shares a
          router-level link;
        * ``prior_mode='independence'``: ``log g_S = sum log g_e`` — the
          joint splits evenly, mirroring what a min-norm independence solve
          does on a series bundle.

        Prior rows are excluded from the rank/identifiability accounting
        (see :meth:`repro.linalg.system.EquationSystem.add`).
        """
        if self.config.prior_weight <= 0.0:
            return
        for subset in index.subsets:
            if len(subset) < 2:
                continue
            singleton_positions = []
            for link in subset:
                singleton = frozenset({link})
                if singleton not in index:
                    break
                singleton_positions.append(index.position(singleton))
            else:
                if self.config.prior_mode == "independence":
                    row = np.zeros(len(index))
                    row[index.position(subset)] = 1.0
                    row[singleton_positions] -= 1.0
                    system.add(row, 0.0, self.config.prior_weight, prior=True)
                else:
                    for position in singleton_positions:
                        row = np.zeros(len(index))
                        row[index.position(subset)] = 1.0
                        row[position] -= 1.0
                        system.add(row, 0.0, self.config.prior_weight, prior=True)


class CorrelationCompleteNoRedundancy(CorrelationCompleteEstimator):
    """Correlation-complete restricted to Algorithm 1's minimal equations.

    The ablation's "no redundancy" stage configuration: the assemble stage
    skips the variance-reduction pass, so the system holds exactly the
    rank-guaranteeing path sets Algorithm 1 selected.
    """

    name = "Correlation-complete (no redundancy)"

    def _redundant_path_sets(self, index, frequency, pool, selected):
        return []
