"""Windowed Probability Computation: congestion probabilities over time.

The paper's source ISP wants to know "how frequently the peer is congested
and how its congestion level changes over the course of day or week"
(Section 1), and Section 4 interprets a computed probability as the fraction
of the T observed intervals a link was congested. This module slides a
window over a long observation horizon and re-runs a probability estimator
per window, yielding per-link congestion-probability *time series* — the
monitoring dashboard the paper's scenario calls for.

Non-stationarity is handled exactly the way Section 4 argues it should be:
each window's estimate is the link's average behaviour over that window,
so level shifts appear as steps in the series instead of corrupting a
per-interval diagnosis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import EstimationError
from repro.model.status import ObservationMatrix
from repro.probability.base import ProbabilityEstimator
from repro.probability.query import CongestionProbabilityModel
from repro.probability.registry import resolve_estimator
from repro.topology.graph import Network


@dataclass
class WindowEstimate:
    """One window's fitted model and its interval span [start, stop)."""

    start: int
    stop: int
    model: CongestionProbabilityModel


def peer_link_members(network: Network) -> Dict[int, List[int]]:
    """Monitored link indices grouped by owning AS, in index order.

    The per-peer view every monitoring surface needs (timeline series,
    streaming alert routing, peer reports); computed with one sweep over
    the link table.
    """
    members: Dict[int, List[int]] = {}
    for link in network.links:
        members.setdefault(link.asn, []).append(link.index)
    return members


@dataclass
class CongestionTimeline:
    """Per-window congestion-probability estimates over a horizon.

    Attributes
    ----------
    network:
        The monitored topology.
    windows:
        Fitted windows in chronological order.
    """

    network: Network
    windows: List[WindowEstimate] = field(default_factory=list)
    #: Lazily-built link-members-per-AS map (one link-table sweep, reused
    #: by every ``peer_series`` call instead of rescanning per peer).
    _peer_members: Optional[Dict[int, List[int]]] = field(
        default=None, repr=False, compare=False
    )

    def link_series(self, link: int) -> np.ndarray:
        """Congestion probability of ``link`` per window, shape (windows,)."""
        return np.array(
            [w.model.link_congestion_probability(link) for w in self.windows]
        )

    def set_series(self, links: Iterable[int]) -> np.ndarray:
        """Congestion probability of a link set per window."""
        members = sorted(links)
        return np.array([w.model.prob_all_congested(members) for w in self.windows])

    def peer_series(self, asn: int) -> np.ndarray:
        """Worst-link congestion probability of peer ``asn`` per window.

        The source ISP's per-peer health signal: the most congested
        monitored link inside the peer, per window.
        """
        if self._peer_members is None:
            self._peer_members = peer_link_members(self.network)
        members = self._peer_members.get(asn, [])
        if not members:
            raise EstimationError(f"no monitored links in AS {asn}")
        series = np.array(
            [
                max(w.model.link_congestion_probability(e) for e in members)
                for w in self.windows
            ]
        )
        return series

    def change_points(self, link: int, threshold: float = 0.2) -> List[int]:
        """Window indices where a link's probability jumps by > ``threshold``.

        A cheap level-shift detector over the window series — enough to
        flag the paper's "exceptional situations" (BGP failures, flash
        crowds, DDoS) as discontinuities in a peer's congestion level.
        """
        series = self.link_series(link)
        return [
            i + 1
            for i in range(len(series) - 1)
            if abs(series[i + 1] - series[i]) > threshold
        ]

    def window_spans(self) -> List[Tuple[int, int]]:
        """The [start, stop) interval span of each window."""
        return [(w.start, w.stop) for w in self.windows]


class WindowedEstimator:
    """Slide a probability estimator over a long observation horizon.

    Parameters
    ----------
    estimator:
        Any :class:`ProbabilityEstimator`, or a registered estimator name
        (see :mod:`repro.probability.registry`); defaults to
        Correlation-complete.
    window:
        Window length in intervals (the paper suggests horizons of
        "hours or so" per estimate).
    stride:
        Step between window starts; defaults to ``window`` (tumbling
        windows). Smaller strides give overlapping (smoother) series.
    """

    def __init__(
        self,
        estimator: Union[ProbabilityEstimator, str, None] = None,
        window: int = 200,
        stride: Optional[int] = None,
    ) -> None:
        if window < 2:
            raise EstimationError("window must cover at least 2 intervals")
        self.estimator = resolve_estimator(estimator)
        self.window = window
        self.stride = stride if stride is not None else window
        if self.stride < 1:
            raise EstimationError("stride must be >= 1")

    def fit(
        self, network: Network, observations: ObservationMatrix
    ) -> CongestionTimeline:
        """Fit one model per window over the whole horizon.

        Windows that produce no usable equations (e.g. everything congested
        throughout the window) are skipped rather than aborting the
        timeline.
        """
        total = observations.num_intervals
        if total < self.window:
            raise EstimationError(
                f"horizon of {total} intervals shorter than window {self.window}"
            )
        timeline = CongestionTimeline(network=network)
        start = 0
        while start + self.window <= total:
            stop = start + self.window
            # Packed backends hand out the window as a word slice (plus a
            # tail mask) — no re-packing and no dense matrix per window.
            chunk = observations.slice_intervals(start, stop)
            try:
                model = self.estimator.fit(network, chunk)
            except EstimationError:
                start += self.stride
                continue
            timeline.windows.append(WindowEstimate(start=start, stop=stop, model=model))
            start += self.stride
        if not timeline.windows:
            raise EstimationError("no window produced a usable estimate")
        return timeline
