"""Shared estimator interface, configuration, and fitting utilities.

Every Probability Computation algorithm in this package:

1. determines the potentially congested links from the observations;
2. assembles an unknown index (correlation subsets, or plain links for the
   Independence baseline);
3. chooses path sets, applies Eq. 1 in log domain using empirical all-good
   frequencies, and solves the resulting linear system;
4. wraps the solution into a :class:`CongestionProbabilityModel`.

The algorithms differ in steps 2-3; the common plumbing lives here.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import EstimationError
from repro.model.status import ObservationMatrix
from repro.probability.query import CongestionProbabilityModel
from repro.probability.subsets import SubsetIndex, potentially_congested_links
from repro.topology.graph import Network
from repro.util.rng import RandomState, as_generator


@dataclass
class EstimatorConfig:
    """Tuning knobs shared by the estimators.

    Attributes
    ----------
    requested_subset_size:
        Compute the probabilities of all correlation subsets up to this many
        links (Section 4's "sets of one, two, or three links" resource
        knob). Individual links need size 1; Fig. 4(d) uses 2.
    hard_subset_cap:
        Absolute bound on the size of any unknown admitted to the index;
        equations that would touch a larger subset are unusable.
    path_set_max_size:
        Bound on the size of the path sets enumerated by Algorithm 1's
        line 11 (and by the baselines' equation pools).
    path_set_max_count:
        Cap on the number of path subsets enumerated per correlation subset.
    pair_sample:
        Number of random multi-path sets added to the candidate pool for
        unknown discovery and baseline equations.
    min_frequency:
        Path sets whose empirical all-good frequency is at or below this
        bound are unusable (``log 0``); leave at 0 to only skip never-good
        sets.
    weighted:
        Solve by precision-weighted least squares: the log of an empirical
        frequency ``f`` over ``T`` intervals has variance ``(1-f)/(f T)``,
        so equations built from rarely-good path sets are down-weighted
        accordingly. The Correlation-heuristic baseline deliberately ignores
        this (its unweighted redundant pool is the noise source the paper
        describes).
    seed:
        Randomness for sampled candidate pools and tie-breaking.
    """

    requested_subset_size: int = 2
    hard_subset_cap: int = 6
    path_set_max_size: int = 3
    path_set_max_count: int = 200
    pair_sample: int = 800
    min_frequency: float = 0.0
    weighted: bool = True
    pruning_tolerance: float = 0.02
    prior_weight: float = 1.0
    prior_mode: str = "independence"
    seed: Optional[int] = 7

    def validate(self) -> None:
        """Raise :class:`EstimationError` on inconsistent parameters."""
        if self.requested_subset_size < 1:
            raise EstimationError("requested_subset_size must be >= 1")
        if not 0.0 <= self.pruning_tolerance < 1.0:
            raise EstimationError("pruning_tolerance must be in [0, 1)")
        if self.prior_mode not in ("independence", "correlation"):
            raise EstimationError(
                "prior_mode must be 'independence' or 'correlation'"
            )
        if self.hard_subset_cap < self.requested_subset_size:
            raise EstimationError("hard_subset_cap < requested_subset_size")
        if self.path_set_max_size < 1 or self.path_set_max_count < 1:
            raise EstimationError("path-set enumeration bounds must be >= 1")
        if not 0.0 <= self.min_frequency < 1.0:
            raise EstimationError("min_frequency must be in [0, 1)")


@dataclass
class FitReport:
    """Diagnostics attached to every fitted model.

    Attributes
    ----------
    num_unknowns, num_equations, rank:
        Size and rank of the solved system.
    num_identifiable:
        Unknowns pinned down uniquely.
    residual:
        Root-mean-square equation residual.
    path_sets:
        The path sets whose Eq. 1 equations entered the system, in
        selection order (Algorithm 1's output ``P^``).
    """

    num_unknowns: int = 0
    num_equations: int = 0
    rank: int = 0
    num_identifiable: int = 0
    residual: float = 0.0
    path_sets: List[FrozenSet[int]] = field(default_factory=list)


class FrequencyCache:
    """Memoised empirical all-good frequencies over path sets."""

    def __init__(self, observations: ObservationMatrix) -> None:
        self._observations = observations
        self._cache: Dict[FrozenSet[int], float] = {}

    @property
    def num_intervals(self) -> int:
        """Observation horizon ``T`` backing the frequencies."""
        return self._observations.num_intervals

    def __call__(self, path_set: Iterable[int]) -> float:
        key = frozenset(path_set)
        value = self._cache.get(key)
        if value is None:
            value = self._observations.all_good_frequency(key)
            self._cache[key] = value
        return value


def log_frequency_weight(frequency: float, num_intervals: int) -> float:
    """Precision (1/sigma) of ``log`` of an empirical frequency.

    A binomial proportion estimate ``f`` over ``T`` intervals has
    ``Var(log f) ~ (1 - f) / (f T)`` by the delta method, so the weight is
    ``sqrt(f T / (1 - f))``. ``f`` is clipped away from 0 and 1 to keep the
    weight finite.
    """
    clipped = float(np.clip(frequency, 1.0 / (2.0 * num_intervals), 0.999))
    return float(np.sqrt(num_intervals * clipped / (1.0 - clipped)))


def singleton_path_sets(
    observations: ObservationMatrix,
) -> List[FrozenSet[int]]:
    """All single-path sets that were good at least once."""
    always_congested = observations.always_congested_paths()
    return [
        frozenset({p})
        for p in range(observations.num_paths)
        if p not in always_congested
    ]


def sampled_path_combinations(
    network: Network,
    observations: ObservationMatrix,
    count: int,
    max_size: int,
    rng: np.random.Generator,
) -> List[FrozenSet[int]]:
    """Random small path sets biased toward paths sharing a correlation set.

    Paths that share an AS produce equations whose rows couple the joint
    unknowns of that AS — exactly the equations that distinguish correlated
    from independent links. Pure random combinations rarely intersect, so we
    sample a neighbour from the paths covering the links of a pivot path's
    ASes.
    """
    if count <= 0 or observations.num_paths < 2:
        return []
    always_congested = observations.always_congested_paths()
    usable = [
        p for p in range(observations.num_paths) if p not in always_congested
    ]
    if len(usable) < 2:
        return []
    results: Set[FrozenSet[int]] = set()
    attempts = 0
    max_attempts = count * 6
    while len(results) < count and attempts < max_attempts:
        attempts += 1
        pivot = int(rng.choice(usable))
        pivot_links = network.links_covered([pivot])
        neighbours = network.paths_covering(pivot_links) - {pivot}
        neighbours = sorted(p for p in neighbours if p not in always_congested)
        size = int(rng.integers(2, max_size + 1)) if max_size >= 2 else 2
        members = {pivot}
        if neighbours:
            picks = rng.choice(
                neighbours, size=min(size - 1, len(neighbours)), replace=False
            )
            members.update(int(p) for p in picks)
        else:
            members.add(int(rng.choice(usable)))
        if len(members) >= 2:
            results.add(frozenset(members))
    return sorted(results, key=sorted)


class ProbabilityEstimator(ABC):
    """Abstract Probability Computation algorithm.

    Subclasses implement :meth:`fit`, which consumes the network and the
    path observations and returns a queryable
    :class:`CongestionProbabilityModel` carrying a :class:`FitReport` on its
    ``report`` attribute.
    """

    #: Human-readable algorithm name (used in experiment tables).
    name: str = "abstract"

    def __init__(self, config: Optional[EstimatorConfig] = None) -> None:
        # Copy so per-estimator adjustments (e.g. the heuristic forcing
        # weighted=False) never leak into a config shared between estimators.
        self.config = replace(config) if config is not None else EstimatorConfig()
        self.config.validate()

    @abstractmethod
    def fit(
        self, network: Network, observations: ObservationMatrix
    ) -> CongestionProbabilityModel:
        """Estimate congestion probabilities from path observations."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _rng(self) -> np.random.Generator:
        return as_generator(self.config.seed)

    def _active_links(
        self, network: Network, observations: ObservationMatrix
    ) -> FrozenSet[int]:
        return potentially_congested_links(
            network, observations, self.config.pruning_tolerance
        )

    @staticmethod
    def _attach_report(
        model: CongestionProbabilityModel, report: FitReport
    ) -> CongestionProbabilityModel:
        model.report = report  # type: ignore[attr-defined]
        return model
