"""Shared estimator interface, configuration, and fitting utilities.

Every Probability Computation algorithm in this package runs the same
staged pipeline (see :mod:`repro.probability.pipeline`):

1. **prune** — determine the potentially congested links;
2. **frequency** — bind the fit to its empirical all-good frequency cache
   (cold, or checked out of a trial's shared workspace);
3. **discover** — assemble an unknown index (correlation subsets, or plain
   links for the Independence baseline) and the candidate path sets;
4. **assemble** — apply Eq. 1 in log domain and build the linear system;
5. **solve** — (bounded, optionally weighted) least squares;
6. **build_model** — wrap the solution into a
   :class:`CongestionProbabilityModel` carrying a :class:`FitReport`.

The algorithms differ in stages 3-4 and the model wrap; the common
plumbing lives here. ``FrequencyCache`` and ``FitReport`` are defined in
:mod:`repro.probability.pipeline` and re-exported here for compatibility.
"""

from __future__ import annotations

import weakref
from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import (
    Dict,
    FrozenSet,
    List,
    Optional,
    Set,
    Tuple,
)

import numpy as np

from repro.exceptions import EstimationError
from repro.model.status import ObservationMatrix
from repro.probability.pipeline import (
    EstimationPipeline,
    FitContext,
    FitReport,
    FrequencyCache,
    SharedFitWorkspace,
    StageFn,
)
from repro.probability.query import CongestionProbabilityModel
from repro.probability.subsets import potentially_congested_links
from repro.topology.graph import Network
from repro.util.rng import as_generator

__all__ = [
    "EstimatorConfig",
    "FitReport",
    "FrequencyCache",
    "ProbabilityEstimator",
    "log_frequency_weight",
    "log_frequency_weights",
    "sampled_path_combinations",
    "shared_sampled_pool",
    "singleton_path_sets",
]


@dataclass
class EstimatorConfig:
    """Tuning knobs shared by the estimators.

    Attributes
    ----------
    requested_subset_size:
        Compute the probabilities of all correlation subsets up to this many
        links (Section 4's "sets of one, two, or three links" resource
        knob). Individual links need size 1; Fig. 4(d) uses 2.
    hard_subset_cap:
        Absolute bound on the size of any unknown admitted to the index;
        equations that would touch a larger subset are unusable.
    path_set_max_size:
        Bound on the size of the path sets enumerated by Algorithm 1's
        line 11 (and by the baselines' equation pools).
    path_set_max_count:
        Cap on the number of path subsets enumerated per correlation subset.
    pair_sample:
        Number of random multi-path sets added to the candidate pool for
        unknown discovery and baseline equations.
    min_frequency:
        Path sets whose empirical all-good frequency is at or below this
        bound are unusable (``log 0``); leave at 0 to only skip never-good
        sets.
    weighted:
        Solve by precision-weighted least squares: the log of an empirical
        frequency ``f`` over ``T`` intervals has variance ``(1-f)/(f T)``,
        so equations built from rarely-good path sets are down-weighted
        accordingly. The Correlation-heuristic baseline deliberately ignores
        this (its unweighted redundant pool is the noise source the paper
        describes).
    sparse:
        Assemble and solve the equation system in sparse-row storage
        (column-index + value runs instead of dense ``num_unknowns``-wide
        rows). Purely a storage/solve-mechanics switch: admitted unknowns,
        equations, and solutions are bit-identical to the dense path —
        combine with ``requested_subset_size=1`` (lazily-discovered
        unknowns, see
        :meth:`~repro.probability.subsets.SubsetIndex.build_observed`)
        for the full internet-scale configuration.
    seed:
        Randomness for sampled candidate pools and tie-breaking.
    """

    requested_subset_size: int = 2
    hard_subset_cap: int = 6
    path_set_max_size: int = 3
    path_set_max_count: int = 200
    pair_sample: int = 800
    min_frequency: float = 0.0
    weighted: bool = True
    pruning_tolerance: float = 0.02
    prior_weight: float = 1.0
    prior_mode: str = "independence"
    sparse: bool = False
    seed: Optional[int] = 7

    def validate(self) -> None:
        """Raise :class:`EstimationError` on inconsistent parameters."""
        if self.requested_subset_size < 1:
            raise EstimationError("requested_subset_size must be >= 1")
        if not 0.0 <= self.pruning_tolerance < 1.0:
            raise EstimationError("pruning_tolerance must be in [0, 1)")
        if self.prior_mode not in ("independence", "correlation"):
            raise EstimationError("prior_mode must be 'independence' or 'correlation'")
        if self.hard_subset_cap < self.requested_subset_size:
            raise EstimationError("hard_subset_cap < requested_subset_size")
        if self.path_set_max_size < 1 or self.path_set_max_count < 1:
            raise EstimationError("path-set enumeration bounds must be >= 1")
        if not 0.0 <= self.min_frequency < 1.0:
            raise EstimationError("min_frequency must be in [0, 1)")


def log_frequency_weight(frequency: float, num_intervals: int) -> float:
    """Precision (1/sigma) of ``log`` of an empirical frequency.

    A binomial proportion estimate ``f`` over ``T`` intervals has
    ``Var(log f) ~ (1 - f) / (f T)`` by the delta method, so the weight is
    ``sqrt(f T / (1 - f))``. ``f`` is clipped away from 0 and 1 to keep the
    weight finite.
    """
    return float(log_frequency_weights(np.array([frequency]), num_intervals)[0])


def log_frequency_weights(frequencies: np.ndarray, num_intervals: int) -> np.ndarray:
    """Vectorised :func:`log_frequency_weight` over a frequency array."""
    clipped = np.clip(
        np.asarray(frequencies, dtype=float),
        1.0 / (2.0 * num_intervals),
        0.999,
    )
    return np.sqrt(num_intervals * clipped / (1.0 - clipped))


def singleton_path_sets(
    observations: ObservationMatrix,
) -> List[FrozenSet[int]]:
    """All single-path sets that were good at least once."""
    always_congested = observations.always_congested_paths()
    return [
        frozenset({p})
        for p in range(observations.num_paths)
        if p not in always_congested
    ]


def sampled_path_combinations(
    network: Network,
    observations: ObservationMatrix,
    count: int,
    max_size: int,
    rng: np.random.Generator,
) -> List[FrozenSet[int]]:
    """Random small path sets biased toward paths sharing a correlation set.

    Paths that share an AS produce equations whose rows couple the joint
    unknowns of that AS — exactly the equations that distinguish correlated
    from independent links. Pure random combinations rarely intersect, so we
    sample a neighbour from the paths covering the links of a pivot path's
    ASes.
    """
    if count <= 0 or observations.num_paths < 2:
        return []
    always_congested = observations.always_congested_paths()
    usable = [p for p in range(observations.num_paths) if p not in always_congested]
    if len(usable) < 2:
        return []
    results: Set[FrozenSet[int]] = set()
    max_attempts = count * 6
    # All pivot and size draws happen as two vectorized RNG calls up front;
    # the loop then only draws neighbour picks. Pivot neighbourhoods are
    # deterministic and memoised, so repeated pivots cost dict lookups
    # instead of coverage set algebra.
    pivots = rng.integers(0, len(usable), size=max_attempts)
    if max_size >= 2:
        sizes = rng.integers(2, max_size + 1, size=max_attempts)
    else:
        sizes = np.full(max_attempts, 2)
    incidence = network.incidence
    usable_mask = np.zeros(observations.num_paths, dtype=bool)
    usable_mask[usable] = True
    neighbour_cache: Dict[int, List[int]] = {}
    for attempt in range(max_attempts):
        if len(results) >= count:
            break
        pivot = usable[pivots[attempt]]
        neighbours = neighbour_cache.get(pivot)
        if neighbours is None:
            # Paths sharing a link with the pivot, restricted to usable
            # paths: one boolean slice of the incidence matrix.
            covering_mask = incidence[:, incidence[pivot]].any(axis=1)
            covering_mask &= usable_mask
            covering_mask[pivot] = False
            neighbours = np.flatnonzero(covering_mask).tolist()
            neighbour_cache[pivot] = neighbours
        size = int(sizes[attempt])
        members = {pivot}
        if neighbours:
            want = min(size - 1, len(neighbours))
            if want >= len(neighbours):
                members.update(neighbours)
            else:
                # Distinct picks by rejection on fast integer draws; path
                # sets are tiny relative to the neighbourhood, so repeats
                # are rare and each draw is a single cheap rng call.
                while len(members) < want + 1:
                    members.add(neighbours[rng.integers(len(neighbours))])
        else:
            members.add(usable[rng.integers(len(usable))])
        if len(members) >= 2:
            results.add(frozenset(members))
    return sorted(results, key=sorted)


#: Sampled candidate pools per observation set; weak keys so a pool (and
#: the Network objects in its keys) never outlives its observations.
_SAMPLED_POOLS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def shared_sampled_pool(
    network: Network,
    observations: ObservationMatrix,
    count: int,
    max_size: int,
    seed: Optional[int],
) -> List[FrozenSet[int]]:
    """Seed-keyed memo around :func:`sampled_path_combinations`.

    Estimators with the same config draw the same candidate pool (the
    sampler is a pure function of network, observations, bounds, and seed),
    so the pool is computed once per observation set and shared. Unseeded
    estimators bypass the memo. Entries live exactly as long as their
    observation set (weak keys), so neither pools nor networks outlive it.
    """
    if seed is None:
        return sampled_path_combinations(
            network, observations, count, max_size, as_generator(None)
        )
    cache = _SAMPLED_POOLS.get(observations)
    if cache is None:
        cache = {}
        _SAMPLED_POOLS[observations] = cache
    key = (network, count, max_size, seed)
    pool = cache.get(key)
    if pool is None:
        pool = sampled_path_combinations(
            network, observations, count, max_size, as_generator(seed)
        )
        cache[key] = pool
    # Copy so an in-place mutation by one estimator cannot corrupt the
    # pool every later same-seed estimator receives.
    return list(pool)


class ProbabilityEstimator(ABC):
    """Abstract Probability Computation algorithm.

    Every estimator is a *stage configuration* of the shared
    :class:`~repro.probability.pipeline.EstimationPipeline`: subclasses
    implement the ``discover``, ``assemble``, and ``build_model`` stages
    (the ``prune``/``frequency``/``solve`` stages are common), and
    :meth:`fit` runs the pipeline over a fresh
    :class:`~repro.probability.pipeline.FitContext`, returning a queryable
    :class:`CongestionProbabilityModel` carrying a :class:`FitReport` on
    its ``report`` attribute.
    """

    #: Human-readable algorithm name (used in experiment tables).
    name: str = "abstract"

    def __init__(self, config: Optional[EstimatorConfig] = None) -> None:
        # Copy so per-estimator adjustments (e.g. the heuristic forcing
        # weighted=False) never leak into a config shared between estimators.
        self.config = replace(config) if config is not None else EstimatorConfig()
        self.config.validate()

    # ------------------------------------------------------------------
    # The one fit path
    # ------------------------------------------------------------------
    def fit(
        self,
        network: Network,
        observations: ObservationMatrix,
        workspace: Optional[SharedFitWorkspace] = None,
    ) -> CongestionProbabilityModel:
        """Estimate congestion probabilities from path observations.

        ``workspace`` checks the fit into a trial's
        :class:`~repro.probability.pipeline.SharedFitWorkspace`: the fit
        reads the workspace's warm frequency cache and equation arena
        instead of cold-starting both. Injection is fixed at context
        creation — the estimator itself stays stateless between fits.
        """
        context = FitContext(
            network=network,
            observations=observations,
            config=self.config,
            frequency=(
                workspace.checkout(observations) if workspace is not None else None
            ),
            system_workspace=workspace.system if workspace is not None else None,
        )
        return self.pipeline().run(context)

    def pipeline(self) -> EstimationPipeline:
        """This estimator's staged fit path."""
        return EstimationPipeline(self._stages(), name=self.name)

    def stage_names(self) -> List[str]:
        """The estimator's pipeline stages, in execution order."""
        return [name for name, _ in self._stages()]

    def _stages(self) -> List[Tuple[str, StageFn]]:
        return [
            ("prune", self._stage_prune),
            ("frequency", self._stage_frequency),
            ("discover", self._stage_discover),
            ("assemble", self._stage_assemble),
            ("solve", self._stage_solve),
            ("build_model", self._stage_build_model),
        ]

    # ------------------------------------------------------------------
    # Shared stages
    # ------------------------------------------------------------------
    def _stage_prune(self, context: FitContext) -> None:
        """Drop always-good links; short-circuit when nothing can congest."""
        context.active = potentially_congested_links(
            context.network, context.observations, self.config.pruning_tolerance
        )
        context.always_good = (
            frozenset(range(context.network.num_links)) - context.active
        )
        if not context.active:
            context.finish(self._empty_model(context), FitReport())

    def _stage_frequency(self, context: FitContext) -> None:
        """Bind the fit's frequency cache (cold unless a workspace injected
        a warm one). Per-fit hit/miss accounting needs no snapshot here:
        the pipeline's context-local counter scope collects it."""
        if context.frequency is None:
            context.frequency = FrequencyCache(context.observations)

    def _stage_solve(self, context: FitContext) -> None:
        """Bounded least squares in log domain (probabilities <= 1)."""
        context.solution = context.system.solve(upper_bound=0.0)

    # ------------------------------------------------------------------
    # Estimator-specific stages
    # ------------------------------------------------------------------
    @abstractmethod
    def _stage_discover(self, context: FitContext) -> None:
        """Build the unknown index and candidate path sets."""

    @abstractmethod
    def _stage_assemble(self, context: FitContext) -> None:
        """Turn usable path sets into the log-domain equation system."""

    @abstractmethod
    def _stage_build_model(self, context: FitContext) -> None:
        """Wrap the solution into the model + report (``context.finish``)."""

    def _empty_model(self, context: FitContext) -> CongestionProbabilityModel:
        """The model when pruning leaves no potentially congested link."""
        return CongestionProbabilityModel(
            context.network, {}, {}, always_good_links=context.always_good
        )
