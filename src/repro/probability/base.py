"""Shared estimator interface, configuration, and fitting utilities.

Every Probability Computation algorithm in this package:

1. determines the potentially congested links from the observations;
2. assembles an unknown index (correlation subsets, or plain links for the
   Independence baseline);
3. chooses path sets, applies Eq. 1 in log domain using empirical all-good
   frequencies, and solves the resulting linear system;
4. wraps the solution into a :class:`CongestionProbabilityModel`.

The algorithms differ in steps 2-3; the common plumbing lives here.
"""

from __future__ import annotations

import weakref
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.exceptions import EstimationError
from repro.model.status import ObservationMatrix
from repro.probability.query import CongestionProbabilityModel
from repro.probability.subsets import potentially_congested_links
from repro.topology.graph import Network
from repro.util.rng import as_generator


@dataclass
class EstimatorConfig:
    """Tuning knobs shared by the estimators.

    Attributes
    ----------
    requested_subset_size:
        Compute the probabilities of all correlation subsets up to this many
        links (Section 4's "sets of one, two, or three links" resource
        knob). Individual links need size 1; Fig. 4(d) uses 2.
    hard_subset_cap:
        Absolute bound on the size of any unknown admitted to the index;
        equations that would touch a larger subset are unusable.
    path_set_max_size:
        Bound on the size of the path sets enumerated by Algorithm 1's
        line 11 (and by the baselines' equation pools).
    path_set_max_count:
        Cap on the number of path subsets enumerated per correlation subset.
    pair_sample:
        Number of random multi-path sets added to the candidate pool for
        unknown discovery and baseline equations.
    min_frequency:
        Path sets whose empirical all-good frequency is at or below this
        bound are unusable (``log 0``); leave at 0 to only skip never-good
        sets.
    weighted:
        Solve by precision-weighted least squares: the log of an empirical
        frequency ``f`` over ``T`` intervals has variance ``(1-f)/(f T)``,
        so equations built from rarely-good path sets are down-weighted
        accordingly. The Correlation-heuristic baseline deliberately ignores
        this (its unweighted redundant pool is the noise source the paper
        describes).
    seed:
        Randomness for sampled candidate pools and tie-breaking.
    """

    requested_subset_size: int = 2
    hard_subset_cap: int = 6
    path_set_max_size: int = 3
    path_set_max_count: int = 200
    pair_sample: int = 800
    min_frequency: float = 0.0
    weighted: bool = True
    pruning_tolerance: float = 0.02
    prior_weight: float = 1.0
    prior_mode: str = "independence"
    seed: Optional[int] = 7

    def validate(self) -> None:
        """Raise :class:`EstimationError` on inconsistent parameters."""
        if self.requested_subset_size < 1:
            raise EstimationError("requested_subset_size must be >= 1")
        if not 0.0 <= self.pruning_tolerance < 1.0:
            raise EstimationError("pruning_tolerance must be in [0, 1)")
        if self.prior_mode not in ("independence", "correlation"):
            raise EstimationError("prior_mode must be 'independence' or 'correlation'")
        if self.hard_subset_cap < self.requested_subset_size:
            raise EstimationError("hard_subset_cap < requested_subset_size")
        if self.path_set_max_size < 1 or self.path_set_max_count < 1:
            raise EstimationError("path-set enumeration bounds must be >= 1")
        if not 0.0 <= self.min_frequency < 1.0:
            raise EstimationError("min_frequency must be in [0, 1)")


@dataclass
class FitReport:
    """Diagnostics attached to every fitted model.

    Attributes
    ----------
    num_unknowns, num_equations, rank:
        Size and rank of the solved system.
    num_identifiable:
        Unknowns pinned down uniquely.
    residual:
        Root-mean-square equation residual.
    path_sets:
        The path sets whose Eq. 1 equations entered the system, in
        selection order (Algorithm 1's output ``P^``).
    frequency_cache_hits, frequency_cache_misses:
        :class:`FrequencyCache` traffic during the fit — how often an
        empirical all-good frequency was re-used vs computed by the packed
        kernel. Misses count distinct path sets evaluated against the
        observations; a hot windowed rerun should show hits dominating.
    """

    num_unknowns: int = 0
    num_equations: int = 0
    rank: int = 0
    num_identifiable: int = 0
    residual: float = 0.0
    path_sets: List[FrozenSet[int]] = field(default_factory=list)
    frequency_cache_hits: int = 0
    frequency_cache_misses: int = 0


class FrequencyCache:
    """Batch-aware, bounded memo over empirical all-good frequencies.

    A thin facade over the observation backend's batched Eq. 1 kernel
    (:meth:`repro.model.status.ObservationMatrix.all_good_frequencies`):
    single queries memoise through ``__call__``, and :meth:`query_many`
    evaluates a whole batch of path sets in one packed-kernel invocation,
    only computing the sets the memo has not seen.

    The memo is *bounded* (``max_entries``, FIFO eviction) so that windowed
    and long-horizon reruns cannot grow it without limit, and it counts
    hits/misses/evictions for diagnosability — estimators surface the
    counters in :class:`FitReport`.
    """

    #: Default bound on memoised path sets (~a few MB of keys at worst).
    DEFAULT_MAX_ENTRIES = 65536

    def __init__(
        self,
        observations: ObservationMatrix,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> None:
        if max_entries < 1:
            raise EstimationError("FrequencyCache max_entries must be >= 1")
        self._observations = observations
        self._cache: Dict[FrozenSet[int], float] = {}
        self._max_entries = max_entries
        # Keys accessed since the last reset_touched(), in first-touch
        # order (a dict used as an ordered set). ``None`` = tracking off
        # (the default), so ordinary fits pay neither time nor memory;
        # reset_touched() switches it on.
        self._touched: Optional[Dict[FrozenSet[int], None]] = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def num_intervals(self) -> int:
        """Observation horizon ``T`` backing the frequencies."""
        return self._observations.num_intervals

    def _store(self, key: FrozenSet[int], value: float) -> None:
        if len(self._cache) >= self._max_entries:
            # FIFO eviction: drop the oldest insertion (dicts preserve
            # insertion order). Estimators touch a path set in bursts, so
            # recency-of-insertion is a good enough proxy for usefulness.
            self._cache.pop(next(iter(self._cache)))
            self.evictions += 1
        self._cache[key] = value

    def __call__(self, path_set: Iterable[int]) -> float:
        key = frozenset(path_set)
        if self._touched is not None:
            self._touched[key] = None
        value = self._cache.get(key)
        if value is None:
            self.misses += 1
            value = self._observations.all_good_frequency(key)
            self._store(key, value)
        else:
            self.hits += 1
        return value

    def query_many(self, path_sets: Sequence[Iterable[int]]) -> np.ndarray:
        """Frequencies for a batch of path sets, one kernel call for misses.

        Returns a float array aligned with ``path_sets``. Duplicate keys
        within the batch are evaluated once.
        """
        keys = [frozenset(path_set) for path_set in path_sets]
        resolved: Dict[FrozenSet[int], float] = {}
        missing: List[FrozenSet[int]] = []
        if self._touched is not None:
            for key in keys:
                self._touched[key] = None
        for key in keys:
            if key in resolved:
                continue
            value = self._cache.get(key)
            if value is None:
                missing.append(key)
            else:
                self.hits += 1
                resolved[key] = value
        if missing:
            self.misses += len(missing)
            values = self._observations.all_good_frequencies(missing)
            for key, value in zip(missing, values):
                resolved[key] = float(value)
                self._store(key, float(value))
        return np.array([resolved[key] for key in keys])

    def prefetch(self, path_sets: Sequence[Iterable[int]]) -> None:
        """Warm the memo for ``path_sets`` without returning values."""
        self.query_many(path_sets)

    def reset_touched(self) -> None:
        """Start (or restart) access tracking from an empty touched set.

        Tracking is off by default so ordinary fits keep the documented
        bounded-memory behaviour; callers that need the access trace (the
        streaming engine, between prefetch and fit) switch it on here and
        clear it with the same call on each reuse.
        """
        self._touched = {}

    def touched_keys(self) -> List[FrozenSet[int]]:
        """Path sets accessed since the last :meth:`reset_touched`.

        The streaming engine prefetches the previous workload, resets, and
        harvests these after the fit — so the carried workload is exactly
        the frequency queries the fit actually made, and path sets the
        estimator no longer needs fall out instead of accumulating.
        Empty when tracking was never enabled.
        """
        return list(self._touched) if self._touched is not None else []


def log_frequency_weight(frequency: float, num_intervals: int) -> float:
    """Precision (1/sigma) of ``log`` of an empirical frequency.

    A binomial proportion estimate ``f`` over ``T`` intervals has
    ``Var(log f) ~ (1 - f) / (f T)`` by the delta method, so the weight is
    ``sqrt(f T / (1 - f))``. ``f`` is clipped away from 0 and 1 to keep the
    weight finite.
    """
    return float(log_frequency_weights(np.array([frequency]), num_intervals)[0])


def log_frequency_weights(frequencies: np.ndarray, num_intervals: int) -> np.ndarray:
    """Vectorised :func:`log_frequency_weight` over a frequency array."""
    clipped = np.clip(
        np.asarray(frequencies, dtype=float),
        1.0 / (2.0 * num_intervals),
        0.999,
    )
    return np.sqrt(num_intervals * clipped / (1.0 - clipped))


def singleton_path_sets(
    observations: ObservationMatrix,
) -> List[FrozenSet[int]]:
    """All single-path sets that were good at least once."""
    always_congested = observations.always_congested_paths()
    return [
        frozenset({p})
        for p in range(observations.num_paths)
        if p not in always_congested
    ]


def sampled_path_combinations(
    network: Network,
    observations: ObservationMatrix,
    count: int,
    max_size: int,
    rng: np.random.Generator,
) -> List[FrozenSet[int]]:
    """Random small path sets biased toward paths sharing a correlation set.

    Paths that share an AS produce equations whose rows couple the joint
    unknowns of that AS — exactly the equations that distinguish correlated
    from independent links. Pure random combinations rarely intersect, so we
    sample a neighbour from the paths covering the links of a pivot path's
    ASes.
    """
    if count <= 0 or observations.num_paths < 2:
        return []
    always_congested = observations.always_congested_paths()
    usable = [p for p in range(observations.num_paths) if p not in always_congested]
    if len(usable) < 2:
        return []
    results: Set[FrozenSet[int]] = set()
    max_attempts = count * 6
    # All pivot and size draws happen as two vectorized RNG calls up front;
    # the loop then only draws neighbour picks. Pivot neighbourhoods are
    # deterministic and memoised, so repeated pivots cost dict lookups
    # instead of coverage set algebra.
    pivots = rng.integers(0, len(usable), size=max_attempts)
    if max_size >= 2:
        sizes = rng.integers(2, max_size + 1, size=max_attempts)
    else:
        sizes = np.full(max_attempts, 2)
    incidence = network.incidence
    usable_mask = np.zeros(observations.num_paths, dtype=bool)
    usable_mask[usable] = True
    neighbour_cache: Dict[int, List[int]] = {}
    for attempt in range(max_attempts):
        if len(results) >= count:
            break
        pivot = usable[pivots[attempt]]
        neighbours = neighbour_cache.get(pivot)
        if neighbours is None:
            # Paths sharing a link with the pivot, restricted to usable
            # paths: one boolean slice of the incidence matrix.
            covering_mask = incidence[:, incidence[pivot]].any(axis=1)
            covering_mask &= usable_mask
            covering_mask[pivot] = False
            neighbours = np.flatnonzero(covering_mask).tolist()
            neighbour_cache[pivot] = neighbours
        size = int(sizes[attempt])
        members = {pivot}
        if neighbours:
            want = min(size - 1, len(neighbours))
            if want >= len(neighbours):
                members.update(neighbours)
            else:
                # Distinct picks by rejection on fast integer draws; path
                # sets are tiny relative to the neighbourhood, so repeats
                # are rare and each draw is a single cheap rng call.
                while len(members) < want + 1:
                    members.add(neighbours[rng.integers(len(neighbours))])
        else:
            members.add(usable[rng.integers(len(usable))])
        if len(members) >= 2:
            results.add(frozenset(members))
    return sorted(results, key=sorted)


#: Sampled candidate pools per observation set; weak keys so a pool (and
#: the Network objects in its keys) never outlives its observations.
_SAMPLED_POOLS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def shared_sampled_pool(
    network: Network,
    observations: ObservationMatrix,
    count: int,
    max_size: int,
    seed: Optional[int],
) -> List[FrozenSet[int]]:
    """Seed-keyed memo around :func:`sampled_path_combinations`.

    Estimators with the same config draw the same candidate pool (the
    sampler is a pure function of network, observations, bounds, and seed),
    so the pool is computed once per observation set and shared. Unseeded
    estimators bypass the memo. Entries live exactly as long as their
    observation set (weak keys), so neither pools nor networks outlive it.
    """
    if seed is None:
        return sampled_path_combinations(
            network, observations, count, max_size, as_generator(None)
        )
    cache = _SAMPLED_POOLS.get(observations)
    if cache is None:
        cache = {}
        _SAMPLED_POOLS[observations] = cache
    key = (network, count, max_size, seed)
    pool = cache.get(key)
    if pool is None:
        pool = sampled_path_combinations(
            network, observations, count, max_size, as_generator(seed)
        )
        cache[key] = pool
    # Copy so an in-place mutation by one estimator cannot corrupt the
    # pool every later same-seed estimator receives.
    return list(pool)


class ProbabilityEstimator(ABC):
    """Abstract Probability Computation algorithm.

    Subclasses implement :meth:`fit`, which consumes the network and the
    path observations and returns a queryable
    :class:`CongestionProbabilityModel` carrying a :class:`FitReport` on its
    ``report`` attribute.
    """

    #: Human-readable algorithm name (used in experiment tables).
    name: str = "abstract"

    def __init__(self, config: Optional[EstimatorConfig] = None) -> None:
        # Copy so per-estimator adjustments (e.g. the heuristic forcing
        # weighted=False) never leak into a config shared between estimators.
        self.config = replace(config) if config is not None else EstimatorConfig()
        self.config.validate()
        #: Optional hook: a callable mapping an :class:`ObservationMatrix`
        #: to the :class:`FrequencyCache` the fit should use. The streaming
        #: engine injects pre-warmed caches here so overlapping windowed
        #: refits skip re-deriving frequencies the previous window already
        #: computed. ``None`` (the default) builds a cold cache per fit.
        self.frequency_factory: Optional[
            Callable[[ObservationMatrix], FrequencyCache]
        ] = None

    def _make_frequency(self, observations: ObservationMatrix) -> FrequencyCache:
        """The frequency cache backing one fit (honours the injection hook)."""
        if self.frequency_factory is not None:
            return self.frequency_factory(observations)
        return FrequencyCache(observations)

    @abstractmethod
    def fit(
        self, network: Network, observations: ObservationMatrix
    ) -> CongestionProbabilityModel:
        """Estimate congestion probabilities from path observations."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _active_links(
        self, network: Network, observations: ObservationMatrix
    ) -> FrozenSet[int]:
        return potentially_congested_links(
            network, observations, self.config.pruning_tolerance
        )

    @staticmethod
    def _attach_report(
        model: CongestionProbabilityModel, report: FitReport
    ) -> CongestionProbabilityModel:
        model.report = report  # type: ignore[attr-defined]
        return model
