"""Correlation-heuristic: the earlier estimator of [9].

Like Correlation-complete it assumes Correlation Sets (Assumption 5) and
works with joint unknowns per correlation subset, but instead of *selecting*
a minimal rank-increasing collection of path sets, it pours a large redundant
equation pool into the solver: every single path, every subset selector, and
a big sample of multi-path combinations (including large ones whose all-good
frequencies are small and therefore noisy in log domain).

This is the behaviour the paper contrasts against: "these algorithms create
a significantly larger number of equations than ours, which introduces more
noise when solving the system" (Section 5.4) — on sparse topologies its
per-link accuracy sits between Independence and Correlation-complete.
Following [9], it reports *individual-link* probabilities (joint estimates
exist internally but are not advertised as identifiable).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

import numpy as np

from repro.exceptions import EstimationError
from repro.linalg.system import EquationSystem
from repro.probability.base import (
    FitReport,
    ProbabilityEstimator,
    shared_sampled_pool,
    singleton_path_sets,
)
from repro.probability.pipeline import FitContext
from repro.probability.query import CongestionProbabilityModel
from repro.probability.subsets import SubsetIndex


class CorrelationHeuristicEstimator(ProbabilityEstimator):
    """Per-link probabilities under Correlation Sets, via a redundant pool."""

    name = "Correlation-heuristic"

    #: Multiplier on the configured pair sample: the heuristic deliberately
    #: uses a much larger equation pool than Correlation-complete.
    POOL_FACTOR = 3

    def __init__(self, config=None) -> None:
        super().__init__(config)
        # The defining flaw of the heuristic: its redundant pool is solved
        # unweighted, so rarely-good (high-variance) path sets inject noise.
        self.config.weighted = False

    def _stage_discover(self, context: FitContext) -> None:
        """Redundant pool (singletons, oversampled combos, selectors) plus
        the singleton-subset index the joint unknowns live in."""
        pool: List[FrozenSet[int]] = list(singleton_path_sets(context.observations))
        pool.extend(
            shared_sampled_pool(
                context.network,
                context.observations,
                count=self.config.pair_sample * self.POOL_FACTOR,
                # Larger sets than Correlation-complete enumerates: their
                # small all-good frequencies carry most of the extra noise.
                max_size=self.config.path_set_max_size + 2,
                seed=self.config.seed,
            )
        )
        active = context.active
        active_sets = [
            frozenset(c & active)
            for c in context.network.correlation_sets
            if c & active
        ]
        for members in active_sets:
            for link in sorted(members):
                selector = context.network.paths_covering(
                    [link]
                ) - context.network.paths_covering(members - {link})
                if selector:
                    pool.append(frozenset(selector))
        context.pool = pool
        context.index = SubsetIndex.build(
            context.network,
            active,
            pool,
            requested_subset_size=1,
            hard_subset_cap=self.config.hard_subset_cap + 2,
        )

    def _stage_assemble(self, context: FitContext) -> None:
        """Deduplicate the pool, then evaluate every frequency in one batched
        kernel call and every equation row in one index sweep."""
        deduped: List[FrozenSet[int]] = list(dict.fromkeys(context.pool))
        frequencies = context.frequency.query_many(deduped)
        frequent = frequencies > self.config.min_frequency
        candidates = [s for s, keep in zip(deduped, frequent) if keep]
        if self.config.sparse:
            flat_positions, row_lengths, usable = context.index.decompose_batch(
                candidates
            )
            if row_lengths.shape[0] == 0:
                raise EstimationError(
                    "Correlation-heuristic: no usable path-set equations"
                )
        else:
            rows, usable = context.index.rows_matrix(candidates)
            if rows.shape[0] == 0:
                raise EstimationError(
                    "Correlation-heuristic: no usable path-set equations"
                )
        context.used_path_sets = [
            s for s, keep in zip(candidates, usable) if keep
        ]
        system = EquationSystem(
            len(context.index),
            workspace=context.system_workspace,
            sparse=self.config.sparse,
        )
        if self.config.sparse:
            system.add_sparse_batch(
                flat_positions, row_lengths, np.log(frequencies[frequent][usable])
            )
        else:
            system.add_batch(rows, np.log(frequencies[frequent][usable]))
        context.system = system

    def _stage_build_model(self, context: FitContext) -> None:
        solution = context.solution
        good = np.exp(np.minimum(solution.values, 0.0))
        estimates: Dict[FrozenSet[int], float] = {}
        identifiable: Dict[FrozenSet[int], bool] = {}
        for i, subset in enumerate(context.index.subsets):
            estimates[subset] = float(good[i])
            # Advertised output is per-link only ([9] computes "the
            # congestion probability of each individual link").
            identifiable[subset] = bool(solution.identifiable[i]) and len(subset) == 1
        model = CongestionProbabilityModel(
            context.network,
            estimates,
            identifiable,
            always_good_links=context.always_good,
        )
        report = FitReport(
            num_unknowns=len(context.index),
            num_equations=len(context.system),
            rank=solution.rank,
            num_identifiable=int(solution.identifiable.sum()),
            residual=solution.residual,
            path_sets=list(context.used_path_sets),
            frequency_cache_hits=context.frequency_hits,
            frequency_cache_misses=context.frequency_misses,
            equation_storage_bytes=context.system.storage_nbytes,
        )
        context.finish(model, report)
