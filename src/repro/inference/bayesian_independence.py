"""Bayesian-Independence (CLINK [11]).

Two steps (Section 3.1):

1. **Probability Computation** under the Independence assumption — the
   :class:`~repro.probability.independence.IndependenceEstimator` run over
   the whole observation window, yielding per-link congestion probabilities
   ``p_e``.
2. **Probabilistic Inference** — per interval, pick the candidate link set
   that (a) explains every congested path and (b) maximises the prior
   probability of the assignment

       prod_{e in S} p_e * prod_{e in candidates \\ S} (1 - p_e),

   equivalently minimises ``sum_{e in S} log((1 - p_e) / p_e)``. Exact
   maximisation is NP-complete [11]; like CLINK we use the greedy weighted
   set-cover approximation (pick the link minimising weight per newly
   explained path; links with ``p_e > 1/2`` have negative weight and are
   always beneficial, so they are taken up front).

The step-2 approximation of ``X_e(t)`` by its long-run expectation is the
source of inaccuracy the paper highlights under non-stationarity, and the
Independence assumption in step 1 is the one exposed by correlated links.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set

import numpy as np

from repro.exceptions import InferenceError
from repro.inference.base import BooleanInferenceAlgorithm, candidate_links
from repro.model.status import ObservationMatrix
from repro.probability.base import EstimatorConfig
from repro.probability.independence import IndependenceEstimator
from repro.probability.query import CongestionProbabilityModel
from repro.topology.graph import Network

#: Probability clamp so the set-cover weights stay finite.
_EPS = 1e-6


class BayesianIndependenceInference(BooleanInferenceAlgorithm):
    """CLINK: independence-based probability computation + greedy MAP cover."""

    name = "Bayesian-Independence"

    def __init__(self, config: Optional[EstimatorConfig] = None) -> None:
        self._estimator = IndependenceEstimator(config)
        self._model: Optional[CongestionProbabilityModel] = None
        self._marginals: Optional[np.ndarray] = None

    def prepare(self, network: Network, observations: ObservationMatrix) -> None:
        """Step 1: learn per-link congestion probabilities."""
        self._model = self._estimator.fit(network, observations)
        self._marginals = self._model.link_marginals()

    def infer(
        self, network: Network, congested_paths: FrozenSet[int]
    ) -> FrozenSet[int]:
        """Step 2: greedy MAP explanation of one interval.

        Raises
        ------
        InferenceError
            If called before :meth:`prepare`.
        """
        if self._marginals is None:
            raise InferenceError("Bayesian-Independence: call prepare() before infer()")
        candidates = candidate_links(network, congested_paths)
        if not candidates:
            return frozenset()
        probabilities = np.clip(self._marginals, _EPS, 1.0 - _EPS)
        weights = {
            link: float(np.log((1.0 - probabilities[link]) / probabilities[link]))
            for link in candidates
        }
        chosen: Set[int] = set()
        uncovered: Set[int] = set(congested_paths)
        # Links more likely congested than not are free to include.
        for link in sorted(candidates):
            if weights[link] <= 0.0:
                chosen.add(link)
                uncovered -= network.paths_covering([link])
        while uncovered:
            best_link = -1
            best_ratio = np.inf
            for link in sorted(candidates - chosen):
                cover = len(network.paths_covering([link]) & uncovered)
                if cover == 0:
                    continue
                ratio = weights[link] / cover
                if ratio < best_ratio:
                    best_ratio = ratio
                    best_link = link
            if best_link < 0:
                break
            chosen.add(best_link)
            uncovered -= network.paths_covering([best_link])
        return frozenset(chosen)
