"""Shared Boolean-inference interface and the Separability domain reduction.

Every algorithm starts from the same logical reduction: by Separability
(Assumption 1), a link on a *good* path is good, so the candidate congested
links of an interval are the links of congested paths minus the links of
good paths. Algorithms differ in which candidate subset they pick to explain
the congested paths.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, List

from repro.model.status import ObservationMatrix
from repro.topology.graph import Network


def candidate_links(
    network: Network, congested_paths: FrozenSet[int]
) -> FrozenSet[int]:
    """Links that may be congested given the interval's path observations.

    ``Links(P^c) \\ Links(P^good)``: every link of a congested path that does
    not also lie on a good path. Under Separability and perfect monitoring,
    the true congested set is always contained in this candidate set.
    """
    good_paths = frozenset(range(network.num_paths)) - congested_paths
    on_congested = network.links_covered(congested_paths)
    on_good = network.links_covered(good_paths)
    return on_congested - on_good


def uncovered_paths(
    network: Network,
    congested_paths: FrozenSet[int],
    chosen: FrozenSet[int],
) -> FrozenSet[int]:
    """Congested paths not explained by any chosen link."""
    return frozenset(
        p for p in congested_paths if not (frozenset(network.paths[p].links) & chosen)
    )


class BooleanInferenceAlgorithm(ABC):
    """Abstract per-interval congested-link inference.

    Bayesian algorithms require :meth:`prepare` (their Probability
    Computation step, run once over the whole observation window) before
    :meth:`infer` (their Probabilistic Inference step, run per interval);
    Sparsity's :meth:`prepare` is a no-op.
    """

    #: Human-readable algorithm name (used in experiment tables).
    name: str = "abstract"

    def prepare(self, network: Network, observations: ObservationMatrix) -> None:
        """Run the algorithm's learning step over the observation window."""

    @abstractmethod
    def infer(
        self, network: Network, congested_paths: FrozenSet[int]
    ) -> FrozenSet[int]:
        """Infer the congested link set for one interval's observations."""

    def infer_all(
        self, network: Network, observations: ObservationMatrix
    ) -> List[FrozenSet[int]]:
        """Prepare on the window, then infer every interval."""
        self.prepare(network, observations)
        return [
            self.infer(network, observations.congested_paths(t))
            for t in range(observations.num_intervals)
        ]
