"""Bayesian-Correlation ([10], developed for this paper).

Like Bayesian-Independence, a two-step Bayesian inference algorithm; the
difference is that step 1 assumes **Correlation Sets** instead of
Independence:

1. **Probability Computation** — the paper's Correlation-complete estimator
   (Algorithm 1), which yields joint all-good probabilities of correlation
   subsets (where identifiable).
2. **Probabilistic Inference** — per interval, choose the candidate subset
   maximising the joint assignment probability

       P(all of S congested, all of (candidates \\ S) good)

   computed per correlation set via inclusion–exclusion on the learned
   joints (falling back to per-link products — and hence effectively random
   tie-breaking via score jitter — where Identifiability++ fails, matching
   the paper: "it picks at random one of the solutions").

   The search is greedy (cover the congested paths choosing the link with
   the best score change per newly-explained path), followed by an
   *augmentation* pass that adds any candidate whose inclusion increases the
   joint probability — this is what lets correlated companions of
   already-chosen links be blamed together — and a pruning pass that drops
   redundant negative-contribution links.

Because the assignment probability factorises across correlation sets
(Assumption 5), the search maintains one log-term per correlation set and
re-evaluates only the term of the set a candidate belongs to — the
inclusion–exclusion is memoised per (set, congested-part), keeping step 2
fast even with large candidate sets.

Step 2 still approximates ``X_e(t)`` by long-run behaviour, which is exactly
the weakness the No-Stationarity scenario exposes (Fig. 3).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from repro.exceptions import InferenceError
from repro.inference.base import BooleanInferenceAlgorithm, candidate_links
from repro.model.status import ObservationMatrix
from repro.probability.base import EstimatorConfig
from repro.probability.correlation_complete import CorrelationCompleteEstimator
from repro.probability.query import PROB_FLOOR, CongestionProbabilityModel
from repro.topology.graph import Network
from repro.util.rng import RandomState, as_generator

#: Scale of the random jitter used to break ties between indistinguishable
#: solutions (the paper's "picks at random").
_JITTER = 1e-6


class _AssignmentScorer:
    """Per-interval incremental scorer of joint assignment probabilities.

    Holds the interval's candidate set partitioned by correlation set; the
    score of a solution ``S`` is the sum over correlation sets of

        log P(all of S∩C congested, all of (candidates∩C)\\S good)

    evaluated by inclusion–exclusion on the fitted model, memoised per
    (correlation set, congested part).
    """

    def __init__(
        self,
        model: CongestionProbabilityModel,
        candidates: FrozenSet[int],
        rng: np.random.Generator,
    ) -> None:
        self._model = model
        self._rng = rng
        self._set_of: Dict[int, int] = {}
        self._set_candidates: List[FrozenSet[int]] = []
        for members in model.network.correlation_sets:
            part = frozenset(members) & candidates
            if part:
                set_id = len(self._set_candidates)
                self._set_candidates.append(part)
                for link in part:
                    self._set_of[link] = set_id
        self._term_cache: Dict[Tuple[int, FrozenSet[int]], float] = {}

    def _term(self, set_id: int, congested: FrozenSet[int]) -> float:
        """Log-probability term of one correlation set, memoised."""
        key = (set_id, congested)
        cached = self._term_cache.get(key)
        if cached is not None:
            return cached
        part = self._set_candidates[set_id]
        good = part - congested
        probability = 0.0
        members = sorted(congested)
        for size in range(len(members) + 1):
            for subset in combinations(members, size):
                probability += (-1.0) ** size * self._model.prob_all_good(
                    frozenset(subset) | good
                )
        probability = min(max(probability, PROB_FLOOR), 1.0)
        value = float(np.log(probability)) + _JITTER * float(self._rng.random())
        self._term_cache[key] = value
        return value

    def initial_terms(self) -> List[float]:
        """Terms of the all-good assignment (no candidate congested)."""
        return [
            self._term(set_id, frozenset())
            for set_id in range(len(self._set_candidates))
        ]

    def delta_add(
        self, terms: List[float], chosen: Set[int], link: int
    ) -> Tuple[float, int, float]:
        """Score change from marking ``link`` congested.

        Returns (delta, set_id, new_term) so callers can commit the move
        without recomputation.
        """
        set_id = self._set_of[link]
        part = self._set_candidates[set_id]
        congested = (frozenset(chosen) & part) | {link}
        new_term = self._term(set_id, congested)
        return new_term - terms[set_id], set_id, new_term

    def delta_remove(
        self, terms: List[float], chosen: Set[int], link: int
    ) -> Tuple[float, int, float]:
        """Score change from un-marking ``link``."""
        set_id = self._set_of[link]
        part = self._set_candidates[set_id]
        congested = (frozenset(chosen) & part) - {link}
        new_term = self._term(set_id, congested)
        return new_term - terms[set_id], set_id, new_term


class BayesianCorrelationInference(BooleanInferenceAlgorithm):
    """Correlation-aware Bayesian inference (this paper's Boolean algorithm)."""

    name = "Bayesian-Correlation"

    def __init__(
        self,
        config: Optional[EstimatorConfig] = None,
        random_state: RandomState = 13,
    ) -> None:
        self._estimator = CorrelationCompleteEstimator(config)
        self._model: Optional[CongestionProbabilityModel] = None
        self._rng = as_generator(random_state)

    def prepare(self, network: Network, observations: ObservationMatrix) -> None:
        """Step 1: learn joint all-good probabilities (Algorithm 1)."""
        self._model = self._estimator.fit(network, observations)

    def infer(
        self, network: Network, congested_paths: FrozenSet[int]
    ) -> FrozenSet[int]:
        """Step 2: greedy + augment + prune MAP explanation of one interval.

        Raises
        ------
        InferenceError
            If called before :meth:`prepare`.
        """
        if self._model is None:
            raise InferenceError("Bayesian-Correlation: call prepare() before infer()")
        candidates = candidate_links(network, congested_paths)
        if not candidates:
            return frozenset()
        scorer = _AssignmentScorer(self._model, candidates, self._rng)
        terms = scorer.initial_terms()
        chosen: Set[int] = set()
        uncovered: Set[int] = set(congested_paths)

        # Cover phase: explain every congested path, preferring links whose
        # inclusion costs the least prior probability per newly-covered path.
        while uncovered:
            best: Optional[Tuple[int, int, float]] = None
            best_ratio = -np.inf
            for link in sorted(candidates - chosen):
                cover = len(network.paths_covering([link]) & uncovered)
                if cover == 0:
                    continue
                delta, set_id, new_term = scorer.delta_add(terms, chosen, link)
                ratio = delta / cover
                if ratio > best_ratio:
                    best_ratio = ratio
                    best = (link, set_id, new_term)
            if best is None:
                break
            link, set_id, new_term = best
            chosen.add(link)
            terms[set_id] = new_term
            uncovered -= network.paths_covering([link])

        # Augmentation phase: add candidates that increase the joint
        # probability outright (correlated companions of chosen links).
        improved = True
        while improved:
            improved = False
            for link in sorted(candidates - chosen):
                delta, set_id, new_term = scorer.delta_add(terms, chosen, link)
                if delta > 0:
                    chosen.add(link)
                    terms[set_id] = new_term
                    improved = True

        # Pruning phase: drop links whose removal keeps every congested path
        # explained and increases the joint probability.
        improved = True
        while improved:
            improved = False
            for link in sorted(chosen):
                without = chosen - {link}
                still_covered = all(
                    frozenset(network.paths[p].links) & without
                    for p in congested_paths
                    if frozenset(network.paths[p].links) & chosen
                )
                if not still_covered:
                    continue
                delta, set_id, new_term = scorer.delta_remove(terms, chosen, link)
                if delta > 0:
                    chosen = without
                    terms[set_id] = new_term
                    improved = True
                    break
        return frozenset(chosen)
