"""Sparsity (Tomo [6], Duffield [8]): greedy smallest explanation.

"The gist behind this algorithm is that a few congested links are
responsible for many congested paths; hence, the algorithm, which assumes
Homogeneity (Assumption 3), 'favors' links that participate in more
congested paths" (Section 3.1).

Implementation: greedy maximum coverage over the candidate links — repeat
picking the candidate traversed by the most still-unexplained congested
paths until every congested path is explained (or no candidate explains any
remaining path, which can happen under noisy E2E monitoring).

On the paper's Fig. 1, with congested paths {p1, p2, p3}, Sparsity infers
{e1, e3} (each covers two congested paths) — reproduced in the tests.
"""

from __future__ import annotations

from typing import FrozenSet, Set

from repro.inference.base import BooleanInferenceAlgorithm, candidate_links
from repro.topology.graph import Network


class SparsityInference(BooleanInferenceAlgorithm):
    """Greedy minimum-cardinality explanation of the congested paths."""

    name = "Sparsity"

    def infer(
        self, network: Network, congested_paths: FrozenSet[int]
    ) -> FrozenSet[int]:
        """Return a small congested-link set covering the congested paths."""
        candidates = candidate_links(network, congested_paths)
        uncovered: Set[int] = set(congested_paths)
        chosen: Set[int] = set()
        while uncovered:
            best_link = -1
            best_cover = 0
            for link in sorted(candidates - chosen):
                cover = len(network.paths_covering([link]) & uncovered)
                if cover > best_cover:
                    best_cover = cover
                    best_link = link
            if best_link < 0:
                # Remaining congested paths have no candidate links (only
                # possible under monitoring noise); they stay unexplained.
                break
            chosen.add(best_link)
            uncovered -= network.paths_covering([best_link])
        return frozenset(chosen)
