"""Boolean Inference algorithms (Section 3).

Given the congested path set ``P^c(t)`` of one interval, infer the congested
link set ``E^c(t)``. Three state-of-the-art algorithms are implemented:

* :class:`~repro.inference.sparsity.SparsityInference` — "Sparsity" (Tomo
  [6], Duffield's tree algorithm [8] adapted to meshes): greedy smallest
  explanation under the Homogeneity assumption;
* :class:`~repro.inference.bayesian_independence.BayesianIndependenceInference`
  — "Bayesian-Independence" (CLINK [11]): probability computation under
  Independence, then per-interval MAP via greedy weighted set cover;
* :class:`~repro.inference.bayesian_correlation.BayesianCorrelationInference`
  — "Bayesian-Correlation" ([10], this paper): probability computation with
  correlation sets (Correlation-complete), then correlation-aware MAP with
  random tie-breaking where Identifiability++ fails.

The paper's point — reproduced by the Fig. 3 experiments — is that each
algorithm breaks under the conditions its extra assumptions exclude, and all
break on sparse topologies.
"""

from repro.inference.base import BooleanInferenceAlgorithm, candidate_links
from repro.inference.sparsity import SparsityInference
from repro.inference.bayesian_independence import BayesianIndependenceInference
from repro.inference.bayesian_correlation import BayesianCorrelationInference

__all__ = [
    "BooleanInferenceAlgorithm",
    "candidate_links",
    "SparsityInference",
    "BayesianIndependenceInference",
    "BayesianCorrelationInference",
]
