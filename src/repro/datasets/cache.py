"""On-disk parse cache for dataset loading.

Parsing a large Topology Zoo file — or regenerating a synthetic topology —
costs far more than reading the derived network back, and campaign runs
load the same datasets over and over. The cache stores each derived
:class:`~repro.topology.graph.Network` as the stable JSON of
:mod:`repro.topology.serialization`, keyed by a digest of the loader's
source content (file bytes or generator config) and the
:class:`~repro.datasets.base.DatasetSpec`, so editing a dataset file or
changing the derivation spec invalidates the entry automatically.

Corrupt or stale cache entries are never fatal: any failure to read one
falls back to a fresh parse that overwrites the entry.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Optional

from repro.datasets.base import DatasetLoader, DatasetSpec, PathLike
from repro.exceptions import ReproError
from repro.topology.graph import Network
from repro.topology.serialization import load_network, save_network

#: Environment variable overriding the cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """The dataset cache directory (override with ``$REPRO_CACHE_DIR``)."""
    root = os.environ.get(CACHE_DIR_ENV)
    if root:
        return Path(root) / "datasets"
    return Path.home() / ".cache" / "repro-tomography" / "datasets"


def cache_key(
    loader: DatasetLoader, path: Optional[PathLike], spec: DatasetSpec
) -> str:
    """Digest identifying one (source content, loader, spec) combination."""
    digest = hashlib.sha256()
    digest.update(loader.format_name.encode())
    digest.update(b"\x00")
    digest.update(loader.cache_token(path))
    digest.update(b"\x00")
    digest.update(repr(spec).encode())
    return digest.hexdigest()[:24]


def load_with_cache(
    name: str,
    loader: DatasetLoader,
    path: Optional[PathLike],
    spec: DatasetSpec,
    cache_dir: Optional[PathLike] = None,
    use_cache: bool = True,
) -> Network:
    """Load a dataset through the on-disk cache.

    Parameters
    ----------
    name:
        Registry name of the dataset; becomes the network's name and the
        cache file prefix.
    loader, path, spec:
        What to load and how (see :mod:`repro.datasets.base`).
    cache_dir:
        Cache directory override (default :func:`default_cache_dir`).
    use_cache:
        When false, parse fresh and touch no cache files.
    """
    if not use_cache:
        network = loader.load(path, spec)
        network.name = name
        return network
    directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    cache_file = directory / f"{name}-{cache_key(loader, path, spec)}.json"
    if cache_file.exists():
        try:
            return load_network(cache_file)
        except ReproError:
            pass  # stale/corrupt entry: fall through to a fresh parse
    network = loader.load(path, spec)
    network.name = name
    try:
        directory.mkdir(parents=True, exist_ok=True)
        temporary = cache_file.with_suffix(".tmp")
        save_network(network, temporary)
        os.replace(temporary, cache_file)
    except OSError:
        pass  # read-only cache location: serve the parse uncached
    return network
