"""Rocketfuel-style ISP map loader.

Rocketfuel [Spring et al., SIGCOMM 2002] published router-level ISP maps
recovered from traceroutes; the widely-redistributed derivative is a plain
edge list with routers annotated by POP (point of presence)::

    # AS1221 (Telstra-like sample)
    r1@Sydney r2@Sydney 1
    r2@Sydney r7@Melbourne 10

One line per undirected edge: two node tokens and an optional weight
(ignored — the tomography model is unweighted). A node token is
``name@POP``; routers sharing a POP form one synthetic AS, standing in
for the paper's per-AS correlation sets (links inside one POP share
infrastructure and congest together). Nodes without a POP annotation each
become their own singleton AS. Lines starting with ``#`` are comments.
"""

from __future__ import annotations

from typing import Dict, Optional

import networkx as nx

from repro.datasets.base import (
    DatasetSpec,
    ParsedTopology,
    PathLike,
    dataset_stem,
    derive_network,
    read_dataset_text,
)
from repro.exceptions import DatasetError
from repro.topology.graph import Network


def parse_rocketfuel(text: str) -> ParsedTopology:
    """Parse a Rocketfuel-style edge list into a :class:`ParsedTopology`.

    Node ids are assigned in order of first appearance; POPs are numbered
    in sorted name order so the AS numbering is independent of line order.
    """
    node_ids: Dict[str, int] = {}
    pop_of: Dict[int, Optional[str]] = {}
    labels: Dict[int, str] = {}
    graph = nx.Graph()

    def node_for(token: str, line_number: int) -> int:
        if not token or token.startswith("@") or token.endswith("@"):
            raise DatasetError(
                f"rocketfuel line {line_number}: malformed node token {token!r}"
            )
        if token not in node_ids:
            node_ids[token] = len(node_ids)
            name, _, pop = token.partition("@")
            node = node_ids[token]
            pop_of[node] = pop or None
            labels[node] = name
            graph.add_node(node)
        return node_ids[token]

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) not in (2, 3):
            raise DatasetError(
                f"rocketfuel line {line_number}: expected 'u v [weight]', "
                f"got {line!r}"
            )
        if len(fields) == 3:
            try:
                float(fields[2])
            except ValueError:
                raise DatasetError(
                    f"rocketfuel line {line_number}: weight {fields[2]!r} "
                    "is not a number"
                ) from None
        u = node_for(fields[0], line_number)
        v = node_for(fields[1], line_number)
        if u != v:
            graph.add_edge(u, v)
    if graph.number_of_edges() == 0:
        raise DatasetError("rocketfuel map has no edges")

    pops = sorted({pop for pop in pop_of.values() if pop is not None})
    asn_of_pop = {pop: asn for asn, pop in enumerate(pops)}
    next_singleton = len(pops)
    asn_of: Dict[int, int] = {}
    for node in sorted(graph.nodes):
        pop = pop_of[node]
        if pop is None:
            asn_of[node] = next_singleton
            next_singleton += 1
        else:
            asn_of[node] = asn_of_pop[pop]
    return ParsedTopology(graph=graph, asn_of=asn_of, labels=labels)


class RocketfuelLoader:
    """Loader for Rocketfuel-style POP-annotated ISP edge lists."""

    format_name = "rocketfuel"
    description = "Rocketfuel-style ISP map (POP-annotated edge list)"

    def load(self, path: Optional[PathLike], spec: DatasetSpec) -> Network:
        text = read_dataset_text(path, self.format_name)
        parsed = parse_rocketfuel(text)
        name = dataset_stem(path)
        return derive_network(parsed, spec, name)

    def cache_token(self, path: Optional[PathLike]) -> bytes:
        return read_dataset_text(path, self.format_name).encode()
