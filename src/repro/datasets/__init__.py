"""Real-topology dataset loaders and the named-dataset registry.

Pluggable loaders parse real topology formats into the
:class:`~repro.topology.graph.Network` the estimation stack observes:

``gml``
    Topology Zoo GML backbone maps.
``rocketfuel``
    Rocketfuel-style POP-annotated ISP edge lists.
``caida``
    CAIDA AS-relationship graphs (``as-rel`` format).
``repro-json``
    Networks saved by :mod:`repro.topology.serialization`.
``brite`` / ``traceroute``
    The repository's synthetic generators behind the same protocol.

The :mod:`~repro.datasets.registry` names each bundled dataset and
:func:`~repro.datasets.registry.load_dataset` loads one through the
on-disk parse cache (:mod:`~repro.datasets.cache`). Campaigns sweep the
registry via :mod:`repro.experiments.realworld`; the CLI exposes
``datasets list / info / validate``.
"""

from repro.datasets.base import (
    DatasetLoader,
    DatasetSpec,
    ParsedTopology,
    derive_network,
    derive_network_compact,
    partition_into_ases,
    scan_nodes,
)
from repro.datasets.caida import (
    CaidaLoader,
    iter_caida_edges,
    load_caida_edge_arrays,
    parse_caida,
)
from repro.datasets.cache import default_cache_dir, load_with_cache
from repro.datasets.gml import GmlLoader, parse_gml
from repro.datasets.registry import (
    DATASETS,
    DatasetEntry,
    dataset_info,
    dataset_names,
    datasets_root,
    get_dataset,
    load_dataset,
    register_dataset,
    resolve_dataset_path,
)
from repro.datasets.rocketfuel import RocketfuelLoader, parse_rocketfuel
from repro.datasets.synthetic import (
    BriteLoader,
    JsonNetworkLoader,
    PowerLawAsLoader,
    TracerouteLoader,
    generate_powerlaw_edges,
)

__all__ = [
    "DatasetLoader",
    "DatasetSpec",
    "ParsedTopology",
    "derive_network",
    "derive_network_compact",
    "partition_into_ases",
    "scan_nodes",
    "GmlLoader",
    "parse_gml",
    "RocketfuelLoader",
    "parse_rocketfuel",
    "CaidaLoader",
    "parse_caida",
    "iter_caida_edges",
    "load_caida_edge_arrays",
    "BriteLoader",
    "TracerouteLoader",
    "JsonNetworkLoader",
    "PowerLawAsLoader",
    "generate_powerlaw_edges",
    "default_cache_dir",
    "load_with_cache",
    "DATASETS",
    "DatasetEntry",
    "dataset_info",
    "dataset_names",
    "datasets_root",
    "get_dataset",
    "load_dataset",
    "register_dataset",
    "resolve_dataset_path",
]
