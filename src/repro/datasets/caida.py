"""CAIDA AS-relationship loader.

CAIDA's `as-rel <https://www.caida.org/catalog/datasets/as-relationships/>`_
files describe the inferred AS-level Internet graph, one relationship per
line::

    # source: CAIDA AS relationships (sample)
    1221|4637|-1
    4637|3356|0

``a|b|-1`` is a provider-to-customer edge (``a`` provides transit to
``b``); ``a|b|0`` is a settlement-free peering edge. Lines starting with
``#`` are comments.

Here every AS is a single vertex that is also its own correlation set —
exactly the paper's Assumption 5 ("all links that belong to one AS are
assigned to a separate correlation set") taken to AS granularity. Both
relationship types become undirected edges: the tomography model cares
about which inter-domain links exist and which paths cross them, not about
the business relationship (kept as metadata for inspection).

Parsing is *streamed*: :func:`iter_caida_edges` validates one line at a
time and :func:`load_caida_edge_arrays` accumulates endpoints straight
into capacity-doubling numpy arrays, so an internet-scale snapshot (500k+
relationship lines) never exists as a Python list of tuples. The
historical :func:`parse_caida` (networkx graph + relationship dict) is a
thin consumer of the same iterator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Tuple

import networkx as nx
import numpy as np

from repro.datasets.base import (
    DatasetSpec,
    ParsedTopology,
    PathLike,
    dataset_stem,
    derive_network,
    read_dataset_text,
)
from repro.exceptions import DatasetError
from repro.topology.graph import Network

#: Relationship codes of the as-rel format.
PROVIDER_CUSTOMER = -1
PEER_PEER = 0


def iter_caida_edges(lines: Iterable[str]) -> Iterator[Tuple[int, int, int]]:
    """Stream validated ``(as1, as2, relationship)`` triples from as-rel lines.

    One line is held at a time; comment and blank lines are skipped.
    Raises :class:`DatasetError` (with the 1-based line number) on short
    lines, non-integer fields, unknown relationship codes, and self-loops
    — the same diagnostics :func:`parse_caida` has always produced.
    """
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("|")
        if len(fields) < 3:
            raise DatasetError(
                f"as-rel line {line_number}: expected 'as1|as2|rel', "
                f"got {line!r}"
            )
        try:
            a, b, relationship = (int(fields[0]), int(fields[1]), int(fields[2]))
        except ValueError:
            raise DatasetError(
                f"as-rel line {line_number}: non-integer field in {line!r}"
            ) from None
        if relationship not in (PROVIDER_CUSTOMER, PEER_PEER):
            raise DatasetError(
                f"as-rel line {line_number}: unknown relationship "
                f"{relationship} (expected -1 or 0)"
            )
        if a == b:
            raise DatasetError(f"as-rel line {line_number}: self-loop on AS {a}")
        yield a, b, relationship


@dataclass
class CaidaEdgeArrays:
    """A parsed as-rel file as flat arrays with compacted node ids.

    Attributes
    ----------
    nodes:
        Sorted unique AS numbers (int64); position = compact node id.
    src, dst:
        Edge endpoints as uint32 indices into ``nodes``, one entry per
        relationship line (in file order, duplicates preserved).
    relationships:
        Relationship code per line (int8: ``-1`` or ``0``).
    """

    nodes: np.ndarray
    src: np.ndarray
    dst: np.ndarray
    relationships: np.ndarray

    @property
    def num_nodes(self) -> int:
        return int(self.nodes.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.src.shape[0])

    @property
    def nbytes(self) -> int:
        return int(
            self.nodes.nbytes
            + self.src.nbytes
            + self.dst.nbytes
            + self.relationships.nbytes
        )


_INITIAL_EDGES = 1024


def load_caida_edge_arrays(lines: Iterable[str]) -> CaidaEdgeArrays:
    """Stream an as-rel file into :class:`CaidaEdgeArrays`.

    Endpoints accumulate into capacity-doubling int64 arrays (amortised
    O(1) per edge, no per-edge Python objects retained); one final
    ``np.unique`` pass compacts arbitrary AS numbers to dense node ids
    ready for :class:`~repro.topology.routing.CompactGraph`.
    """
    endpoints_a = np.empty(_INITIAL_EDGES, dtype=np.int64)
    endpoints_b = np.empty(_INITIAL_EDGES, dtype=np.int64)
    codes = np.empty(_INITIAL_EDGES, dtype=np.int8)
    count = 0
    for a, b, relationship in iter_caida_edges(lines):
        if count == endpoints_a.shape[0]:
            capacity = 2 * count
            grown_a = np.empty(capacity, dtype=np.int64)
            grown_a[:count] = endpoints_a[:count]
            endpoints_a = grown_a
            grown_b = np.empty(capacity, dtype=np.int64)
            grown_b[:count] = endpoints_b[:count]
            endpoints_b = grown_b
            grown_codes = np.empty(capacity, dtype=np.int8)
            grown_codes[:count] = codes[:count]
            codes = grown_codes
        endpoints_a[count] = a
        endpoints_b[count] = b
        codes[count] = relationship
        count += 1
    if count == 0:
        raise DatasetError("as-rel file has no relationships")
    stacked = np.concatenate([endpoints_a[:count], endpoints_b[:count]])
    nodes, compact = np.unique(stacked, return_inverse=True)
    compact = compact.astype(np.uint32)
    return CaidaEdgeArrays(
        nodes=nodes,
        src=compact[:count],
        dst=compact[count:],
        relationships=codes[:count].copy(),
    )


def parse_caida(
    text: str,
) -> Tuple[ParsedTopology, Dict[Tuple[int, int], int]]:
    """Parse CAIDA as-rel text.

    Returns the parsed topology plus the relationship of each (lower,
    higher) AS pair (``-1`` provider-customer, ``0`` peer-peer).
    """
    graph = nx.Graph()
    relationships: Dict[Tuple[int, int], int] = {}
    for a, b, relationship in iter_caida_edges(text.splitlines()):
        graph.add_edge(a, b)
        relationships[(min(a, b), max(a, b))] = relationship
    if graph.number_of_edges() == 0:
        raise DatasetError("as-rel file has no relationships")
    asn_of = {node: node for node in graph.nodes}
    labels = {node: f"AS{node}" for node in graph.nodes}
    return ParsedTopology(graph=graph, asn_of=asn_of, labels=labels), relationships


class CaidaLoader:
    """Loader for CAIDA AS-relationship files."""

    format_name = "caida"
    description = "CAIDA AS-relationship graph (as-rel format)"

    def load(self, path: Optional[PathLike], spec: DatasetSpec) -> Network:
        text = read_dataset_text(path, self.format_name)
        parsed, _ = parse_caida(text)
        name = dataset_stem(path)
        return derive_network(parsed, spec, name)

    def cache_token(self, path: Optional[PathLike]) -> bytes:
        return read_dataset_text(path, self.format_name).encode()
