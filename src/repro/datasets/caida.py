"""CAIDA AS-relationship loader.

CAIDA's `as-rel <https://www.caida.org/catalog/datasets/as-relationships/>`_
files describe the inferred AS-level Internet graph, one relationship per
line::

    # source: CAIDA AS relationships (sample)
    1221|4637|-1
    4637|3356|0

``a|b|-1`` is a provider-to-customer edge (``a`` provides transit to
``b``); ``a|b|0`` is a settlement-free peering edge. Lines starting with
``#`` are comments.

Here every AS is a single vertex that is also its own correlation set —
exactly the paper's Assumption 5 ("all links that belong to one AS are
assigned to a separate correlation set") taken to AS granularity. Both
relationship types become undirected edges: the tomography model cares
about which inter-domain links exist and which paths cross them, not about
the business relationship (kept as metadata for inspection).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import networkx as nx

from repro.datasets.base import (
    DatasetSpec,
    ParsedTopology,
    PathLike,
    dataset_stem,
    derive_network,
    read_dataset_text,
)
from repro.exceptions import DatasetError
from repro.topology.graph import Network

#: Relationship codes of the as-rel format.
PROVIDER_CUSTOMER = -1
PEER_PEER = 0


def parse_caida(
    text: str,
) -> Tuple[ParsedTopology, Dict[Tuple[int, int], int]]:
    """Parse CAIDA as-rel text.

    Returns the parsed topology plus the relationship of each (lower,
    higher) AS pair (``-1`` provider-customer, ``0`` peer-peer).
    """
    graph = nx.Graph()
    relationships: Dict[Tuple[int, int], int] = {}
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("|")
        if len(fields) < 3:
            raise DatasetError(
                f"as-rel line {line_number}: expected 'as1|as2|rel', "
                f"got {line!r}"
            )
        try:
            a, b, relationship = (int(fields[0]), int(fields[1]), int(fields[2]))
        except ValueError:
            raise DatasetError(
                f"as-rel line {line_number}: non-integer field in {line!r}"
            ) from None
        if relationship not in (PROVIDER_CUSTOMER, PEER_PEER):
            raise DatasetError(
                f"as-rel line {line_number}: unknown relationship "
                f"{relationship} (expected -1 or 0)"
            )
        if a == b:
            raise DatasetError(f"as-rel line {line_number}: self-loop on AS {a}")
        graph.add_edge(a, b)
        relationships[(min(a, b), max(a, b))] = relationship
    if graph.number_of_edges() == 0:
        raise DatasetError("as-rel file has no relationships")
    asn_of = {node: node for node in graph.nodes}
    labels = {node: f"AS{node}" for node in graph.nodes}
    return ParsedTopology(graph=graph, asn_of=asn_of, labels=labels), relationships


class CaidaLoader:
    """Loader for CAIDA AS-relationship files."""

    format_name = "caida"
    description = "CAIDA AS-relationship graph (as-rel format)"

    def load(self, path: Optional[PathLike], spec: DatasetSpec) -> Network:
        text = read_dataset_text(path, self.format_name)
        parsed, _ = parse_caida(text)
        name = dataset_stem(path)
        return derive_network(parsed, spec, name)

    def cache_token(self, path: Optional[PathLike]) -> bytes:
        return read_dataset_text(path, self.format_name).encode()
