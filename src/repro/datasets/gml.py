"""Topology Zoo GML loader.

The `Internet Topology Zoo <http://www.topology-zoo.org/>`_ publishes real
operator backbone maps as GML files::

    graph [
      node [ id 0 label "New York" Latitude 40.71 ]
      node [ id 1 label "Chicago" ]
      edge [ source 0 target 1 LinkSpeed "10" ]
    ]

The parser here is a small tolerant tokenizer rather than a full GML
implementation: Topology Zoo files routinely carry duplicate labels,
stray attributes, and nested blocks that trip strict parsers, while their
structural core (node ids, edge endpoints) is always well-formed. Only
``node``/``edge`` blocks are interpreted; everything else is skipped.

Single-ISP backbones carry no AS structure, so nodes are grouped into
synthetic per-region ASes with
:func:`~repro.datasets.base.partition_into_ases` (an ``asn`` node
attribute, when present, wins).
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Optional, Tuple, Union

import networkx as nx

from repro.datasets.base import (
    DatasetSpec,
    ParsedTopology,
    PathLike,
    dataset_stem,
    derive_network,
    partition_into_ases,
    read_dataset_text,
)
from repro.exceptions import DatasetError
from repro.topology.graph import Network

#: GML tokens: quoted strings, brackets, or bare words/numbers.
_TOKEN = re.compile(r'"([^"]*)"|(\[)|(\])|([^\s\[\]]+)')

#: A parsed GML value: a scalar or a nested block.
GmlValue = Union[str, int, float, List[Tuple[str, "GmlValue"]]]


def _iter_tokens(text: str) -> Iterator[Union[str, Tuple[str]]]:
    """Stream GML tokens; quoted strings keep a 1-tuple marker.

    A generator instead of a materialised list: large Topology Zoo (or
    future internet-scale) files tokenize to several objects per byte, so
    the parser pulls tokens one at a time and only block *structure* is
    ever resident.
    """
    for match in _TOKEN.finditer(text):
        quoted, open_bracket, close_bracket, word = match.groups()
        if quoted is not None:
            yield (quoted,)  # marked so "0" stays a string
        elif open_bracket:
            yield "["
        elif close_bracket:
            yield "]"
        elif word is not None and not word.startswith("#"):
            yield word


def _tokenize(text: str) -> List[Union[str, Tuple[str]]]:
    """Split GML text into tokens (materialised; kept for diagnostics)."""
    return list(_iter_tokens(text))


class _TokenStream:
    """Pull-based cursor over a token iterator with a running position."""

    __slots__ = ("_tokens", "position")

    def __init__(self, tokens: Iterator[Union[str, Tuple[str]]]) -> None:
        self._tokens = tokens
        self.position = 0

    def next(self) -> Optional[Union[str, Tuple[str]]]:
        """The next token, or ``None`` at end of input."""
        token = next(self._tokens, None)
        if token is not None:
            self.position += 1
        return token


def _coerce(word: str) -> Union[str, int, float]:
    """Interpret a bare GML token as int, float, or string."""
    try:
        return int(word)
    except ValueError:
        pass
    try:
        return float(word)
    except ValueError:
        return word


def _parse_block(stream: _TokenStream) -> List[Tuple[str, GmlValue]]:
    """Parse ``key value`` pairs until the matching ``]`` (or the end).

    Pull-based: tokens are consumed off ``stream`` one at a time, so the
    whole token list is never resident — only the entries of the blocks
    currently open on the recursion stack.
    """
    entries: List[Tuple[str, GmlValue]] = []
    while True:
        token = stream.next()
        if token is None or token == "]":
            return entries
        if token == "[" or isinstance(token, tuple):
            raise DatasetError(
                f"malformed GML: expected a key at token {stream.position - 1}"
            )
        key = token
        value_token = stream.next()
        if value_token is None or value_token == "]":
            raise DatasetError(f"malformed GML: key {key!r} has no value")
        if value_token == "[":
            entries.append((key, _parse_block(stream)))
        elif isinstance(value_token, tuple):
            entries.append((key, value_token[0]))
        else:
            entries.append((key, _coerce(value_token)))


def _block_get(block: List[Tuple[str, GmlValue]], key: str) -> Optional[GmlValue]:
    for entry_key, value in block:
        if entry_key == key:
            return value
    return None


def parse_gml(text: str, group_size: int = 4) -> ParsedTopology:
    """Parse Topology Zoo GML text into a :class:`ParsedTopology`.

    Raises
    ------
    DatasetError
        When no ``graph`` block, no nodes, or no edges are present, or a
        node/edge block is missing its id/endpoints.
    """
    entries = _parse_block(_TokenStream(_iter_tokens(text)))
    graph_block = _block_get(entries, "graph")
    if not isinstance(graph_block, list):
        raise DatasetError("GML file has no 'graph' block")

    graph = nx.Graph()
    labels: Dict[int, str] = {}
    declared_asn: Dict[int, int] = {}
    for key, value in graph_block:
        if key == "node" and isinstance(value, list):
            node_id = _block_get(value, "id")
            if not isinstance(node_id, int):
                raise DatasetError("GML node block without an integer 'id'")
            graph.add_node(node_id)
            label = _block_get(value, "label")
            if label is not None:
                labels[node_id] = str(label)
            asn = _block_get(value, "asn")
            if isinstance(asn, int):
                declared_asn[node_id] = asn
        elif key == "edge" and isinstance(value, list):
            source = _block_get(value, "source")
            target = _block_get(value, "target")
            if not isinstance(source, int) or not isinstance(target, int):
                raise DatasetError("GML edge block without integer endpoints")
            if source != target:
                graph.add_edge(source, target)
    if graph.number_of_nodes() == 0:
        raise DatasetError("GML graph has no nodes")
    if graph.number_of_edges() == 0:
        raise DatasetError("GML graph has no edges")

    if declared_asn and len(declared_asn) == graph.number_of_nodes():
        asn_of = dict(declared_asn)
    else:
        asn_of = partition_into_ases(graph, group_size)
    return ParsedTopology(graph=graph, asn_of=asn_of, labels=labels)


class GmlLoader:
    """Loader for Topology Zoo GML backbone maps."""

    format_name = "gml"
    description = "Topology Zoo GML backbone map"

    def load(self, path: Optional[PathLike], spec: DatasetSpec) -> Network:
        text = read_dataset_text(path, self.format_name)
        parsed = parse_gml(text, group_size=spec.group_size)
        name = dataset_stem(path)
        return derive_network(parsed, spec, name)

    def cache_token(self, path: Optional[PathLike]) -> bytes:
        return read_dataset_text(path, self.format_name).encode()
