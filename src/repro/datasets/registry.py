"""Named-dataset registry: bundled real topologies and synthetic substrates.

Every dataset the experiment drivers can sweep is registered here by name:
a loader, an optional bundled file (resolved against the datasets
directory), a derivation spec, and a description. ``load_dataset`` is the
one entry point — it resolves the file, consults the on-disk parse cache,
and returns the monitored :class:`~repro.topology.graph.Network`.

The bundled files live under ``tests/fixtures/datasets/`` in the source
tree (they double as offline test fixtures); deployments can point
``$REPRO_DATASETS_DIR`` at any directory holding the same filenames — for
example a full Topology Zoo checkout.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.datasets.base import DatasetLoader, DatasetSpec, PathLike
from repro.datasets.caida import CaidaLoader
from repro.datasets.cache import load_with_cache
from repro.datasets.gml import GmlLoader
from repro.datasets.rocketfuel import RocketfuelLoader
from repro.datasets.synthetic import BriteLoader, JsonNetworkLoader, TracerouteLoader
from repro.exceptions import DatasetError
from repro.topology.brite import BriteConfig
from repro.topology.graph import Network
from repro.topology.traceroute import TracerouteConfig

#: Environment variable overriding the bundled-datasets directory.
DATASETS_DIR_ENV = "REPRO_DATASETS_DIR"


@dataclass(frozen=True)
class DatasetEntry:
    """One registered dataset: loader + source + derivation spec."""

    name: str
    loader: DatasetLoader
    description: str
    filename: Optional[str] = None
    spec: DatasetSpec = field(default_factory=DatasetSpec)

    @property
    def format_name(self) -> str:
        """The loader's source-format identifier."""
        return self.loader.format_name

    @property
    def synthetic(self) -> bool:
        """Whether the dataset is generated rather than file-backed."""
        return self.filename is None


#: All registered datasets by name.
DATASETS: Dict[str, DatasetEntry] = {}


def register_dataset(entry: DatasetEntry, replace_existing: bool = False) -> None:
    """Register a dataset; re-registration requires ``replace_existing``."""
    if entry.name in DATASETS and not replace_existing:
        raise DatasetError(f"dataset {entry.name!r} is already registered")
    DATASETS[entry.name] = entry


def dataset_names() -> List[str]:
    """Registered dataset names, sorted."""
    return sorted(DATASETS)


def get_dataset(name: str) -> DatasetEntry:
    """Look up a registered dataset; raises with the known names."""
    try:
        return DATASETS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; known datasets: {dataset_names()}"
        ) from None


def datasets_root() -> Path:
    """Directory holding the bundled dataset files.

    ``$REPRO_DATASETS_DIR`` wins; the default is the source tree's
    ``tests/fixtures/datasets/``.
    """
    override = os.environ.get(DATASETS_DIR_ENV)
    if override:
        return Path(override)
    return (Path(__file__).resolve().parents[3] / "tests" / "fixtures" / "datasets")


def resolve_dataset_path(entry: DatasetEntry) -> Optional[Path]:
    """Absolute path of a file-backed dataset (None for synthetic ones)."""
    if entry.filename is None:
        return None
    path = datasets_root() / entry.filename
    if not path.exists():
        raise DatasetError(
            f"dataset {entry.name!r}: file {entry.filename!r} not found "
            f"under {datasets_root()} (set ${DATASETS_DIR_ENV} to the "
            "directory holding your dataset files)"
        )
    return path


def load_dataset(
    name: str,
    spec: Optional[DatasetSpec] = None,
    cache_dir: Optional[PathLike] = None,
    use_cache: bool = True,
) -> Network:
    """Load a registered dataset into a monitored :class:`Network`.

    Parameters
    ----------
    name:
        Registered dataset name (see :func:`dataset_names`).
    spec:
        Derivation override; defaults to the entry's spec, so two loads of
        the same name produce identical networks.
    cache_dir, use_cache:
        On-disk parse cache controls (see :mod:`repro.datasets.cache`).
    """
    entry = get_dataset(name)
    return load_with_cache(
        entry.name,
        entry.loader,
        resolve_dataset_path(entry),
        spec if spec is not None else entry.spec,
        cache_dir=cache_dir,
        use_cache=use_cache,
    )


def dataset_info(
    name: str, cache_dir: Optional[PathLike] = None, use_cache: bool = True
) -> Dict[str, object]:
    """Entry metadata plus the derived network's structural statistics."""
    entry = get_dataset(name)
    network = load_dataset(name, cache_dir=cache_dir, use_cache=use_cache)
    info: Dict[str, object] = {
        "name": entry.name,
        "format": entry.format_name,
        "source": entry.filename or "(generated)",
        "description": entry.description,
        "spec": entry.spec,
    }
    info.update(network.describe())
    return info


# ----------------------------------------------------------------------
# Bundled datasets
# ----------------------------------------------------------------------
register_dataset(
    DatasetEntry(
        name="abilene",
        loader=GmlLoader(),
        description="Internet2 Abilene US research backbone (Topology Zoo)",
        filename="abilene.gml",
        spec=DatasetSpec(
            num_vantage_points=4,
            num_destinations=7,
            num_paths=28,
            group_size=5,
            seed=1108,
        ),
    )
)
register_dataset(
    DatasetEntry(
        name="sample-eu-isp",
        loader=GmlLoader(),
        description="Fictitious 16-PoP European ISP backbone (GML sample)",
        filename="sample-eu-isp.gml",
        spec=DatasetSpec(
            num_vantage_points=4,
            num_destinations=12,
            num_paths=48,
            group_size=5,
            seed=1102,
        ),
    )
)
register_dataset(
    DatasetEntry(
        name="rocketfuel-1221",
        loader=RocketfuelLoader(),
        description="Rocketfuel-style AS1221 ISP map sample (POP-annotated)",
        filename="rocketfuel-1221.edges",
        spec=DatasetSpec(
            num_vantage_points=3,
            num_destinations=10,
            num_paths=30,
            seed=1103,
        ),
    )
)
register_dataset(
    DatasetEntry(
        name="caida-asrel",
        loader=CaidaLoader(),
        description="CAIDA AS-relationship graph sample (as-rel format)",
        filename="caida-asrel.txt",
        spec=DatasetSpec(
            num_vantage_points=3,
            num_destinations=12,
            num_paths=36,
            seed=1104,
        ),
    )
)
register_dataset(
    DatasetEntry(
        name="saved-peering",
        loader=JsonNetworkLoader(),
        description="Operator network snapshot saved as repro JSON",
        filename="saved-peering.json",
        spec=DatasetSpec(seed=1105),
    )
)
register_dataset(
    DatasetEntry(
        name="brite-dense",
        loader=BriteLoader(
            BriteConfig(
                num_ases=10,
                as_attachment=2,
                routers_per_as=4,
                inter_as_links=2,
                num_vantage_points=3,
                num_destinations=30,
                num_paths=80,
            )
        ),
        description="BRITE-like dense synthetic topology (generated)",
        spec=DatasetSpec(seed=1106),
    )
)
register_dataset(
    DatasetEntry(
        name="sparse-traceroute",
        loader=TracerouteLoader(
            TracerouteConfig(
                underlay=BriteConfig(
                    num_ases=24,
                    as_attachment=1,
                    routers_per_as=4,
                    inter_as_links=1,
                    num_vantage_points=2,
                    num_destinations=40,
                    num_paths=80,
                ),
                num_probes=400,
                response_prob=0.95,
                load_balance_prob=0.3,
                max_kept_paths=80,
            )
        ),
        description="Sparse traceroute-campaign topology (simulated)",
        spec=DatasetSpec(seed=1107),
    )
)
