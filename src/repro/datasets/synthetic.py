"""Generator-backed and saved-network dataset loaders.

The repository predates this subsystem with two synthetic topology paths
(the BRITE-like dense generator and the traceroute-campaign simulator)
plus a JSON persistence format for operator-collected networks. These
loaders put all three behind the same :class:`~repro.datasets.base.DatasetLoader`
protocol, so registry-driven campaigns can sweep real files and synthetic
substrates through one interface.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.datasets.base import DatasetSpec, PathLike, derive_network_compact
from repro.exceptions import DatasetError, TopologyError
from repro.topology.brite import BriteConfig, generate_brite_network
from repro.topology.graph import Network
from repro.topology.serialization import load_network
from repro.topology.traceroute import TracerouteConfig, generate_sparse_network


class BriteLoader:
    """Synthetic dense topology: the BRITE-like generator as a dataset.

    ``path`` is ignored; the generator seed is the spec's seed, so the
    dataset is a pure function of (config, spec) like every other loader.
    """

    format_name = "brite"
    description = "BRITE-like dense synthetic topology (generated)"

    def __init__(self, config: Optional[BriteConfig] = None) -> None:
        self.config = config or BriteConfig()

    def load(self, path: Optional[PathLike], spec: DatasetSpec) -> Network:
        return generate_brite_network(self.config, spec.seed)

    def cache_token(self, path: Optional[PathLike]) -> bytes:
        return repr(self.config).encode()


class TracerouteLoader:
    """Synthetic sparse topology: the traceroute-campaign simulator."""

    format_name = "traceroute"
    description = "Sparse traceroute-campaign topology (simulated)"

    def __init__(self, config: Optional[TracerouteConfig] = None) -> None:
        self.config = config or TracerouteConfig()

    def load(self, path: Optional[PathLike], spec: DatasetSpec) -> Network:
        return generate_sparse_network(self.config, spec.seed)

    def cache_token(self, path: Optional[PathLike]) -> bytes:
        return repr(self.config).encode()


def generate_powerlaw_edges(
    num_nodes: int, attachment: int = 2, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Barabási–Albert power-law AS graph as flat edge arrays.

    Preferential attachment without networkx and without per-edge Python
    objects: every edge endpoint is appended to a flat uint32 pool, and a
    uniform draw from the pool *is* a degree-proportional draw — the
    repeated-endpoint-array trick. Edge count is known up front
    (``attachment`` per new node plus the seed clique), so both endpoint
    arrays are preallocated; a 10k-node graph costs a few hundred KB.

    Returns ``(src, dst)`` uint32 arrays over dense node ids
    ``0..num_nodes-1``, suitable for
    :class:`~repro.topology.routing.CompactGraph` /
    :func:`~repro.datasets.base.derive_network_compact`. Deterministic in
    ``seed``.
    """
    if attachment < 1:
        raise DatasetError("generate_powerlaw_edges: attachment must be >= 1")
    if num_nodes < attachment + 1:
        raise DatasetError(
            f"generate_powerlaw_edges: need > {attachment} nodes "
            f"for attachment {attachment}, got {num_nodes}"
        )
    rng = np.random.default_rng(seed)
    clique = attachment + 1
    num_edges = clique * (clique - 1) // 2 + attachment * (num_nodes - clique)
    src = np.empty(num_edges, dtype=np.uint32)
    dst = np.empty(num_edges, dtype=np.uint32)
    pool = np.empty(2 * num_edges, dtype=np.uint32)
    edge_count = 0
    pool_count = 0
    for u in range(clique):
        for v in range(u + 1, clique):
            src[edge_count] = u
            dst[edge_count] = v
            edge_count += 1
            pool[pool_count] = u
            pool[pool_count + 1] = v
            pool_count += 2
    for node in range(clique, num_nodes):
        targets: set = set()
        # Rejection-sample distinct targets; the pool is much larger than
        # ``attachment``, so repeats are rare. Over-drawing in one batch
        # keeps the common case at a single rng call.
        while len(targets) < attachment:
            draws = rng.integers(pool_count, size=attachment + 2)
            for position in draws:
                targets.add(int(pool[position]))
                if len(targets) == attachment:
                    break
        for target in sorted(targets):
            src[edge_count] = target
            dst[edge_count] = node
            edge_count += 1
            pool[pool_count] = target
            pool[pool_count + 1] = node
            pool_count += 2
    return src, dst


class PowerLawAsLoader:
    """Synthetic internet-scale AS topology: power-law preferential attachment.

    Each AS is one vertex and its own correlation set (like the CAIDA
    loader), but the graph is generated, so 10k-node sweeps need no
    committed fixture. Derivation runs through
    :func:`~repro.datasets.base.derive_network_compact` — CSR adjacency,
    lazy endpoint pairs, shared BFS parent trees — so loading stays
    memory-bounded at internet scale.

    Deliberately *not* registered in the dataset registry: registry-driven
    campaigns sweep every registered dataset through the full realworld
    grid, which is not a sensible default for a 10k-node graph. The
    ``scaling-topology`` campaign constructs it directly.
    """

    format_name = "powerlaw-as"
    description = "Power-law synthetic AS graph (preferential attachment)"

    def __init__(self, num_nodes: int = 10_000, attachment: int = 2) -> None:
        self.num_nodes = num_nodes
        self.attachment = attachment

    def load(self, path: Optional[PathLike], spec: DatasetSpec) -> Network:
        src, dst = generate_powerlaw_edges(
            self.num_nodes, self.attachment, spec.seed
        )
        name = f"powerlaw-as-{self.num_nodes}"
        return derive_network_compact(
            self.num_nodes, src, dst, spec, name, sparse=True
        )

    def cache_token(self, path: Optional[PathLike]) -> bytes:
        return f"powerlaw-as:{self.num_nodes}:{self.attachment}".encode()


class JsonNetworkLoader:
    """Loader for networks saved by :mod:`repro.topology.serialization`.

    Saved networks already embed their monitored paths (they are operator
    snapshots, not raw maps), so the spec's derivation parameters are
    ignored.
    """

    format_name = "repro-json"
    description = "Saved repro network snapshot (JSON)"

    def load(self, path: Optional[PathLike], spec: DatasetSpec) -> Network:
        if path is None:
            raise DatasetError("repro-json loader requires a file path")
        try:
            return load_network(Path(path))
        except TopologyError as exc:
            raise DatasetError(f"cannot load network snapshot {path}: {exc}") from exc

    def cache_token(self, path: Optional[PathLike]) -> bytes:
        if path is None:
            raise DatasetError("repro-json loader requires a file path")
        try:
            return Path(path).read_bytes()
        except OSError as exc:
            raise DatasetError(f"cannot read network snapshot {path}: {exc}") from exc
