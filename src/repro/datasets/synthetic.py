"""Generator-backed and saved-network dataset loaders.

The repository predates this subsystem with two synthetic topology paths
(the BRITE-like dense generator and the traceroute-campaign simulator)
plus a JSON persistence format for operator-collected networks. These
loaders put all three behind the same :class:`~repro.datasets.base.DatasetLoader`
protocol, so registry-driven campaigns can sweep real files and synthetic
substrates through one interface.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.datasets.base import DatasetSpec, PathLike
from repro.exceptions import DatasetError, TopologyError
from repro.topology.brite import BriteConfig, generate_brite_network
from repro.topology.graph import Network
from repro.topology.serialization import load_network
from repro.topology.traceroute import TracerouteConfig, generate_sparse_network


class BriteLoader:
    """Synthetic dense topology: the BRITE-like generator as a dataset.

    ``path`` is ignored; the generator seed is the spec's seed, so the
    dataset is a pure function of (config, spec) like every other loader.
    """

    format_name = "brite"
    description = "BRITE-like dense synthetic topology (generated)"

    def __init__(self, config: Optional[BriteConfig] = None) -> None:
        self.config = config or BriteConfig()

    def load(self, path: Optional[PathLike], spec: DatasetSpec) -> Network:
        return generate_brite_network(self.config, spec.seed)

    def cache_token(self, path: Optional[PathLike]) -> bytes:
        return repr(self.config).encode()


class TracerouteLoader:
    """Synthetic sparse topology: the traceroute-campaign simulator."""

    format_name = "traceroute"
    description = "Sparse traceroute-campaign topology (simulated)"

    def __init__(self, config: Optional[TracerouteConfig] = None) -> None:
        self.config = config or TracerouteConfig()

    def load(self, path: Optional[PathLike], spec: DatasetSpec) -> Network:
        return generate_sparse_network(self.config, spec.seed)

    def cache_token(self, path: Optional[PathLike]) -> bytes:
        return repr(self.config).encode()


class JsonNetworkLoader:
    """Loader for networks saved by :mod:`repro.topology.serialization`.

    Saved networks already embed their monitored paths (they are operator
    snapshots, not raw maps), so the spec's derivation parameters are
    ignored.
    """

    format_name = "repro-json"
    description = "Saved repro network snapshot (JSON)"

    def load(self, path: Optional[PathLike], spec: DatasetSpec) -> Network:
        if path is None:
            raise DatasetError("repro-json loader requires a file path")
        try:
            return load_network(Path(path))
        except TopologyError as exc:
            raise DatasetError(f"cannot load network snapshot {path}: {exc}") from exc

    def cache_token(self, path: Optional[PathLike]) -> bytes:
        if path is None:
            raise DatasetError("repro-json loader requires a file path")
        try:
            return Path(path).read_bytes()
        except OSError as exc:
            raise DatasetError(f"cannot read network snapshot {path}: {exc}") from exc
