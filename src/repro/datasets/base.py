"""Dataset loader protocol and the graph -> monitored-network derivation.

A *dataset* is a real topology (Topology Zoo GML, a Rocketfuel-style ISP
map, a CAIDA AS-relationship graph, a saved ``repro`` JSON network) or a
synthetic substitute (the BRITE-like generator) presented behind one
uniform interface: a :class:`DatasetLoader` turns a file (or nothing, for
synthetic datasets) plus a :class:`DatasetSpec` into the
:class:`~repro.topology.graph.Network` the tomography stack observes.

Real topology files describe a *graph*, not a monitoring deployment, so
every file-backed loader shares the same derivation
(:func:`derive_network`): pick vantage and destination nodes
deterministically from the spec's seed, compute shortest router-level
routes, and abstract them to the AS level with
:class:`~repro.topology.aslevel.AsLevelBuilder` — exactly the pipeline the
paper's operator runs on her traceroute campaign. Single-ISP maps carry no
AS structure of their own; :func:`partition_into_ases` groups their
routers into contiguous clusters that stand in for the paper's per-AS
correlation sets (one set per POP-sized region).
"""

from __future__ import annotations

import re
import tracemalloc
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Protocol, Union, runtime_checkable

import networkx as nx
import numpy as np

from repro.exceptions import DatasetError
from repro.topology.aslevel import AsLevelBuilder, IdentityAsnMap
from repro.topology.brite import _dedupe_paths
from repro.topology.graph import Network
from repro.topology.routing import (
    CompactGraph,
    RouteOracle,
    bfs_parents_graph,
    route_from_parents,
    select_endpoint_pairs,
    select_endpoint_pairs_lazy,
)

#: Anything acceptable as a dataset file location.
PathLike = Union[str, Path]


@dataclass(frozen=True)
class DatasetSpec:
    """How to derive a monitored network from a parsed topology.

    Attributes
    ----------
    num_vantage_points:
        Monitoring vantage nodes (probe sources), clamped to the topology.
    num_destinations:
        Probe destination nodes, sampled from the non-vantage nodes.
    num_paths:
        Monitored paths requested (clamped to the available endpoint
        pairs); duplicates collapsing to the same AS-level link sequence
        are dropped, so the derived network may monitor fewer.
    group_size:
        For topologies without intrinsic AS structure (single-ISP maps):
        routers per synthetic AS cluster (one correlation set each).
    seed:
        Seed of the endpoint selection. Part of the dataset's identity:
        the same file + spec always derives the same network.
    """

    num_vantage_points: int = 3
    num_destinations: int = 10
    num_paths: int = 48
    group_size: int = 4
    seed: int = 0

    def validate(self) -> None:
        """Raise :class:`DatasetError` on inconsistent parameters."""
        if self.num_vantage_points < 1 or self.num_destinations < 1:
            raise DatasetError("DatasetSpec: need >= 1 vantage and destination")
        if self.num_paths < 1:
            raise DatasetError("DatasetSpec: need at least one monitored path")
        if self.group_size < 1:
            raise DatasetError("DatasetSpec: group_size must be >= 1")


@dataclass
class ParsedTopology:
    """A parsed topology file: the graph plus its AS structure.

    Attributes
    ----------
    graph:
        Undirected router-level (or AS-level) graph on integer node ids.
    asn_of:
        Node -> AS number. For AS-level datasets (CAIDA) this is the
        identity; for single-ISP maps it is a synthetic partition.
    labels:
        Optional human-readable node labels (city names, AS names).
    """

    graph: nx.Graph
    asn_of: Dict[int, int]
    labels: Dict[int, str] = field(default_factory=dict)


@runtime_checkable
class DatasetLoader(Protocol):
    """Uniform interface over file formats and synthetic generators.

    Attributes
    ----------
    format_name:
        Short identifier of the source format (``"gml"``, ``"brite"``, ...).
    description:
        One-line description shown by ``repro-tomography datasets list``.
    """

    format_name: str
    description: str

    def load(self, path: Optional[PathLike], spec: DatasetSpec) -> Network:
        """Parse ``path`` (ignored by synthetic loaders) into a network."""
        ...

    def cache_token(self, path: Optional[PathLike]) -> bytes:
        """Bytes identifying the source content for the on-disk cache."""
        ...


def partition_into_ases(graph: nx.Graph, group_size: int) -> Dict[int, int]:
    """Group a single-ISP graph's nodes into contiguous synthetic ASes.

    A deterministic BFS from the lowest node id (restarting per connected
    component) visits nodes in a stable order; consecutive chunks of
    ``group_size`` nodes form one AS. Contiguity matters: the chunks stand
    in for the paper's per-AS correlation sets, so each set should cover a
    connected region whose internal links plausibly share infrastructure.
    """
    if group_size < 1:
        raise DatasetError("partition_into_ases: group_size must be >= 1")
    order = []
    visited = set()
    for start in sorted(graph.nodes):
        if start in visited:
            continue
        queue = [start]
        visited.add(start)
        while queue:
            node = queue.pop(0)
            order.append(node)
            for neighbor in sorted(graph.neighbors(node)):
                if neighbor not in visited:
                    visited.add(neighbor)
                    queue.append(neighbor)
    return {node: position // group_size for position, node in enumerate(order)}


def derive_network(parsed: ParsedTopology, spec: DatasetSpec, name: str) -> Network:
    """Derive the monitored AS-level :class:`Network` from a parsed graph.

    Vantage and destination nodes are drawn without replacement from the
    node set using ``spec.seed`` (so a dataset is a pure function of its
    file and spec), shortest routes are abstracted through
    :class:`AsLevelBuilder`, and duplicate AS-level paths are dropped.
    """
    spec.validate()
    nodes = sorted(parsed.graph.nodes)
    if len(nodes) < 2:
        raise DatasetError(f"dataset {name!r}: need at least two nodes")
    rng = np.random.default_rng(spec.seed)
    num_vantage = min(spec.num_vantage_points, max(1, len(nodes) // 2))
    vantage = sorted(int(i) for i in rng.choice(nodes, size=num_vantage, replace=False))
    others = [node for node in nodes if node not in set(vantage)]
    num_destinations = min(spec.num_destinations, len(others))
    destinations = sorted(
        int(i)
        for i in rng.choice(others, size=num_destinations, replace=False)
    )
    available = len(vantage) * len(destinations)
    requested = min(spec.num_paths, available)
    pairs = select_endpoint_pairs(vantage, destinations, requested, rng)

    oracle = RouteOracle(parsed.graph)
    builder = AsLevelBuilder(parsed.asn_of, include_source_as=True)
    for source, destination in pairs:
        route = oracle.shortest(source, destination)
        if route is not None:
            builder.add_route(route)
    if builder.num_routes == 0:
        raise DatasetError(
            f"dataset {name!r}: no usable routes between the selected "
            "endpoints (is the graph connected?)"
        )
    network = builder.build(name=name)
    return _dedupe_paths(network, name)


def derive_network_compact(
    num_nodes: int,
    src: np.ndarray,
    dst: np.ndarray,
    spec: DatasetSpec,
    name: str,
    sparse: bool = True,
    stats: Optional[Dict[str, int]] = None,
) -> Network:
    """Derive a monitored network from an edge-array graph, at scale.

    The internet-scale twin of :func:`derive_network` for graphs given as
    flat endpoint arrays on dense node ids ``0..num_nodes-1`` (streamed
    CAIDA snapshots, the synthetic power-law generator). Differences from
    the eager path, by design:

    * endpoint pairs come from
      :func:`~repro.topology.routing.select_endpoint_pairs_lazy`, which
      never materialises the O(V x D) pair product;
    * one deterministic BFS parent tree per distinct vantage serves all of
      its destinations (instead of one ``nx.shortest_path`` per pair);
    * with ``sparse=True`` the graph is a CSR
      :class:`~repro.topology.routing.CompactGraph`, the router->AS map is
      the O(1) :class:`~repro.topology.aslevel.IdentityAsnMap`, and routes
      accumulate in a :class:`~repro.topology.routing.SparseRouteTable`.

    Both modes run the *same* BFS (FIFO frontier, ascending neighbours)
    over the same seed-deterministic endpoint draw, so the derived
    :class:`Network` is bit-identical across ``sparse`` settings — only
    peak memory differs.

    When ``stats`` is given (a dict) and :mod:`tracemalloc` is tracing,
    ``stats["construction_bytes"]`` records the bytes *retained* by the
    graph, router->AS map, and accumulated route storage at the moment
    route derivation finishes — the structures the sparse mode replaces —
    measured as a traced-allocation delta across this call.
    """
    spec.validate()
    trace_start = (
        tracemalloc.get_traced_memory()[0]
        if stats is not None and tracemalloc.is_tracing()
        else None
    )
    if num_nodes < 2:
        raise DatasetError(f"dataset {name!r}: need at least two nodes")
    rng = np.random.default_rng(spec.seed)
    num_vantage = min(spec.num_vantage_points, max(1, num_nodes // 2))
    vantage = np.sort(rng.choice(num_nodes, size=num_vantage, replace=False))
    others = np.setdiff1d(np.arange(num_nodes), vantage, assume_unique=True)
    num_destinations = min(spec.num_destinations, others.shape[0])
    destinations = np.sort(
        rng.choice(others, size=num_destinations, replace=False)
    )
    available = num_vantage * num_destinations
    requested = min(spec.num_paths, available)
    pairs = select_endpoint_pairs_lazy(
        [int(node) for node in vantage],
        [int(node) for node in destinations],
        requested,
        rng,
    )
    destinations_of: Dict[int, list] = {}
    for source, destination in pairs:
        destinations_of.setdefault(source, []).append(destination)

    if sparse:
        graph: Union[CompactGraph, nx.Graph] = CompactGraph.from_edges(
            num_nodes, src, dst
        )
        builder = AsLevelBuilder(
            IdentityAsnMap(num_nodes),
            include_source_as=True,
            sparse_paths=True,
            copy_mapping=False,
        )
    else:
        graph = nx.Graph()
        graph.add_nodes_from(range(num_nodes))
        graph.add_edges_from(
            (int(a), int(b)) for a, b in zip(src, dst) if int(a) != int(b)
        )
        builder = AsLevelBuilder(
            {node: node for node in range(num_nodes)}, include_source_as=True
        )
    # Deterministic route order shared by both modes: sources ascending,
    # then destinations ascending within each source's parent tree.
    for source in sorted(destinations_of):
        parents = (
            graph.bfs_parents(source)
            if isinstance(graph, CompactGraph)
            else bfs_parents_graph(graph, source)
        )
        for destination in sorted(destinations_of[source]):
            route = route_from_parents(parents, source, destination)
            if route is not None:
                builder.add_route(route)
        del parents
    if trace_start is not None and stats is not None:
        # Graph + AS map + route storage are all still live here, while the
        # (mode-shared) Network has not been materialised yet: the delta is
        # exactly the construction structures the sparse mode shrinks.
        stats["construction_bytes"] = max(
            0, tracemalloc.get_traced_memory()[0] - trace_start
        )
    if builder.num_routes == 0:
        raise DatasetError(
            f"dataset {name!r}: no usable routes between the selected "
            "endpoints (is the graph connected?)"
        )
    network = builder.build(name=name)
    return _dedupe_paths(network, name)


def read_dataset_text(path: Optional[PathLike], format_name: str) -> str:
    """Read a dataset file, with a uniform error for missing files."""
    if path is None:
        raise DatasetError(f"{format_name} loader requires a file path")
    file_path = Path(path)
    try:
        return file_path.read_text()
    except OSError as exc:
        raise DatasetError(
            f"cannot read {format_name} dataset {file_path}: {exc}"
        ) from exc


def dataset_stem(path: PathLike) -> str:
    """Filename without directories or extension: the default network name."""
    return Path(path).stem


#: GML node-block openers, for the streaming census in :func:`scan_nodes`.
_GML_NODE_BLOCK = re.compile(r"\bnode\s*\[")


def scan_nodes(
    path: PathLike,
    format_name: str,
    max_nodes: Optional[int] = None,
) -> Optional[int]:
    """Streaming node census of a dataset file, with a fail-fast bound.

    Reads the file line by line — never building a graph — and counts the
    nodes it declares: distinct AS numbers for ``caida``, ``node [``
    blocks for ``gml``. If ``max_nodes`` is given, raises
    :class:`DatasetError` the moment the count exceeds it, so validating
    an unexpectedly internet-sized snapshot aborts in O(bound) memory
    instead of parsing (and OOMing on) the whole file. Returns ``None``
    for formats without a file-backed node census (synthetic generators,
    saved JSON networks).
    """
    if format_name not in ("caida", "gml"):
        return None
    from repro.datasets.caida import iter_caida_edges

    file_path = Path(path)
    try:
        with file_path.open() as handle:
            if format_name == "caida":
                seen = set()
                for a, b, _ in iter_caida_edges(handle):
                    seen.add(a)
                    seen.add(b)
                    if max_nodes is not None and len(seen) > max_nodes:
                        raise DatasetError(
                            f"dataset {file_path.name}: more than "
                            f"{max_nodes} nodes (max-nodes guard)"
                        )
                return len(seen)
            count = 0
            for line in handle:
                count += len(_GML_NODE_BLOCK.findall(line))
                if max_nodes is not None and count > max_nodes:
                    raise DatasetError(
                        f"dataset {file_path.name}: more than "
                        f"{max_nodes} nodes (max-nodes guard)"
                    )
            return count
    except OSError as exc:
        raise DatasetError(
            f"cannot read {format_name} dataset {file_path}: {exc}"
        ) from exc
