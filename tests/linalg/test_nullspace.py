"""Tests for null spaces and the Algorithm 2 incremental update."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg.nullspace import (
    null_space,
    null_space_update,
    rank,
    rank_increases,
)


def test_null_space_of_full_rank():
    basis = null_space(np.eye(3))
    assert basis.shape == (3, 0)


def test_null_space_of_zero_matrix():
    basis = null_space(np.zeros((2, 3)))
    assert basis.shape == (3, 3)


def test_null_space_orthogonal_to_rows():
    matrix = np.array([[1.0, 1.0, 0.0], [0.0, 1.0, 1.0]])
    basis = null_space(matrix)
    assert basis.shape == (3, 1)
    assert np.allclose(matrix @ basis, 0.0, atol=1e-9)


def test_null_space_empty_rows():
    basis = null_space(np.zeros((0, 4)))
    assert basis.shape == (4, 4)


def test_rank():
    assert rank(np.eye(3)) == 3
    assert rank(np.zeros((3, 3))) == 0
    assert rank(np.array([[1.0, 2.0], [2.0, 4.0]])) == 1


def test_rank_increases_detects_new_direction():
    matrix = np.array([[1.0, 0.0, 0.0]])
    basis = null_space(matrix)
    assert rank_increases(basis, np.array([0.0, 1.0, 0.0]))
    assert not rank_increases(basis, np.array([5.0, 0.0, 0.0]))


def test_rank_increases_empty_null_space():
    basis = null_space(np.eye(2))
    assert not rank_increases(basis, np.array([1.0, 1.0]))


def test_update_matches_recompute_simple():
    matrix = np.array([[1.0, 1.0, 0.0, 0.0]])
    basis = null_space(matrix)
    row = np.array([0.0, 0.0, 1.0, 1.0])
    updated = null_space_update(basis, row)
    recomputed = null_space(np.vstack([matrix, row]))
    assert updated.shape == recomputed.shape
    # Same subspace: each updated column lies in the recomputed span.
    projector = recomputed @ recomputed.T
    assert np.allclose(projector @ updated, updated, atol=1e-8)


def test_update_no_op_for_dependent_row():
    matrix = np.array([[1.0, 0.0, 0.0]])
    basis = null_space(matrix)
    updated = null_space_update(basis, np.array([2.0, 0.0, 0.0]))
    assert updated.shape == basis.shape


def test_update_empty_basis():
    basis = np.zeros((3, 0))
    updated = null_space_update(basis, np.array([1.0, 0.0, 0.0]))
    assert updated.shape == (3, 0)


@settings(max_examples=60, deadline=None)
@given(
    matrix=arrays(
        np.float64,
        (4, 6),
        elements=st.sampled_from([0.0, 1.0]),
    ),
    row=arrays(
        np.float64,
        (6,),
        elements=st.sampled_from([0.0, 1.0]),
    ),
)
def test_update_equals_recompute_property(matrix, row):
    """Algorithm 2 invariant: the incrementally-updated null space spans
    exactly the null space of the extended matrix (when the row adds rank)."""
    basis = null_space(matrix)
    if not rank_increases(basis, row):
        return
    updated = null_space_update(basis, row)
    recomputed = null_space(np.vstack([matrix, row]))
    assert updated.shape[1] == recomputed.shape[1] == basis.shape[1] - 1
    extended = np.vstack([matrix, row])
    assert np.allclose(extended @ updated, 0.0, atol=1e-7)


@settings(max_examples=40, deadline=None)
@given(matrix=arrays( np.float64, (5, 5), elements=st.sampled_from([0.0, 1.0]), ))
def test_null_space_columns_orthonormal(matrix):
    basis = null_space(matrix)
    if basis.shape[1]:
        gram = basis.T @ basis
        assert np.allclose(gram, np.eye(basis.shape[1]), atol=1e-8)
