"""Sparse-storage EquationSystem: bit-identical to dense, far smaller.

The sparse mode stores rows as (column, value) entry runs and the solve
deduplicates on those keys before densifying only the unique rows —
every solution field must match the dense mode exactly (same floats, not
approximately), because the estimators expose ``sparse`` as a pure
storage switch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.linalg.system import EquationSystem, SystemWorkspace


def _random_system(
    num_rows: int,
    num_unknowns: int,
    seed: int,
    duplicate_fraction: float = 0.3,
):
    """Random sparse boolean rows + rhs/weights, with duplicated rows."""
    rng = np.random.default_rng(seed)
    rows = (rng.random((num_rows, num_unknowns)) < 0.15).astype(float)
    rows[rows.sum(axis=1) == 0, 0] = 1.0  # no empty equations
    duplicates = rng.random(num_rows) < duplicate_fraction
    rows[duplicates] = rows[0]
    rhs = -rng.random(num_rows)
    weights = 0.5 + rng.random(num_rows)
    return rows, rhs, weights


def _fill(system: EquationSystem, rows, rhs, weights, prior_rows=None):
    system.add_batch(rows, rhs, weights)
    if prior_rows is not None:
        p_rows, p_rhs, p_weights = prior_rows
        system.add_batch(p_rows, p_rhs, p_weights, prior=True)
    return system


def _assert_solutions_identical(dense_solution, sparse_solution):
    assert np.array_equal(dense_solution.values, sparse_solution.values)
    assert np.array_equal(
        dense_solution.identifiable, sparse_solution.identifiable
    )
    assert dense_solution.rank == sparse_solution.rank
    assert dense_solution.residual == sparse_solution.residual


@pytest.mark.parametrize("upper_bound", [None, 0.0])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_sparse_solve_bit_identical_to_dense(seed, upper_bound):
    rows, rhs, weights = _random_system(120, 40, seed)
    dense = _fill(EquationSystem(40), rows, rhs, weights)
    sparse = _fill(EquationSystem(40, sparse=True), rows, rhs, weights)
    _assert_solutions_identical(
        dense.solve(upper_bound=upper_bound),
        sparse.solve(upper_bound=upper_bound),
    )


def test_sparse_solve_with_priors_matches_dense():
    rows, rhs, weights = _random_system(60, 25, seed=5)
    priors = (np.eye(25), np.full(25, -0.1), np.full(25, 0.01))
    dense = _fill(EquationSystem(25), rows, rhs, weights, priors)
    sparse = _fill(EquationSystem(25, sparse=True), rows, rhs, weights, priors)
    _assert_solutions_identical(
        dense.solve(upper_bound=0.0), sparse.solve(upper_bound=0.0)
    )


def test_sparse_only_prior_equations_rejected():
    system = EquationSystem(4, sparse=True)
    system.add_batch(np.eye(4), np.zeros(4), np.ones(4), prior=True)
    with pytest.raises(EstimationError, match="only prior"):
        system.solve()


def test_add_sparse_batch_canonicalises_column_order():
    """Unsorted per-row columns must still dedupe against sorted ones."""
    reference = EquationSystem(6)
    reference.add_batch(
        np.array([[1.0, 0, 1.0, 0, 0, 1.0], [1.0, 0, 1.0, 0, 0, 1.0]]),
        np.array([-0.5, -0.5]),
        np.array([1.0, 1.0]),
    )
    system = EquationSystem(6, sparse=True)
    system.add_sparse_batch(
        np.array([0, 2, 5, 5, 0, 2]),  # second row descending-ish
        np.array([3, 3]),
        np.array([-0.5, -0.5]),
        np.array([1.0, 1.0]),
    )
    assert np.array_equal(system.matrix, reference.matrix)
    _assert_solutions_identical(reference.solve(), system.solve())


def test_sparse_matrix_property_materialises_rows():
    rows, rhs, weights = _random_system(30, 12, seed=3)
    sparse = _fill(EquationSystem(12, sparse=True), rows, rhs, weights)
    assert np.array_equal(sparse.matrix, rows)
    assert np.array_equal(sparse.rhs, rhs)
    assert np.array_equal(sparse.weights, weights)


def test_workspace_backed_sparse_system_and_generation_guard():
    workspace = SystemWorkspace()
    rows, rhs, weights = _random_system(50, 20, seed=8)
    first = _fill(
        EquationSystem(20, workspace=workspace, sparse=True),
        rows,
        rhs,
        weights,
    )
    expected = _fill(EquationSystem(20), rows, rhs, weights).solve()
    _assert_solutions_identical(expected, first.solve())
    # A newer system recycles the arena; the old handle must refuse.
    second = EquationSystem(20, workspace=workspace, sparse=True)
    with pytest.raises(EstimationError, match="recycled"):
        first.solve()
    del second


def test_workspace_alternates_dense_and_sparse_modes():
    workspace = SystemWorkspace()
    rows, rhs, weights = _random_system(40, 15, seed=9)
    dense = _fill(EquationSystem(15, workspace=workspace), rows, rhs, weights)
    dense_solution = dense.solve()
    sparse = _fill(
        EquationSystem(15, workspace=workspace, sparse=True), rows, rhs, weights
    )
    _assert_solutions_identical(dense_solution, sparse.solve())


def test_storage_nbytes_reflects_the_two_layouts():
    rows, rhs, weights = _random_system(200, 80, seed=4, duplicate_fraction=0)
    dense = _fill(EquationSystem(80), rows, rhs, weights)
    sparse = _fill(EquationSystem(80, sparse=True), rows, rhs, weights)
    entries = int(np.count_nonzero(rows))
    per_row = 200 * (8 + 8 + 1)
    assert dense.storage_nbytes == 200 * 80 * 8 + per_row
    assert sparse.storage_nbytes == entries * 16 + 200 * 8 + per_row
    assert sparse.storage_nbytes < dense.storage_nbytes / 2
