"""Tests for the equation-system container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.linalg.system import EquationSystem


def test_solve_determined_system():
    system = EquationSystem(2)
    system.add(np.array([1.0, 0.0]), 3.0)
    system.add(np.array([0.0, 1.0]), -2.0)
    solution = system.solve()
    assert np.allclose(solution.values, [3.0, -2.0])
    assert solution.identifiable.all()
    assert solution.rank == 2
    assert solution.residual == pytest.approx(0.0, abs=1e-9)


def test_solve_underdetermined_flags_unidentifiable():
    system = EquationSystem(3)
    system.add(np.array([1.0, 1.0, 0.0]), 2.0)
    system.add(np.array([0.0, 0.0, 1.0]), 5.0)
    solution = system.solve()
    assert not solution.identifiable[0]
    assert not solution.identifiable[1]
    assert solution.identifiable[2]
    assert solution.values[2] == pytest.approx(5.0)


def test_solve_upper_bound():
    system = EquationSystem(1)
    system.add(np.array([1.0]), 1.5)  # wants x = 1.5 but bound is 0
    solution = system.solve(upper_bound=0.0)
    assert solution.values[0] <= 1e-9


def test_weights_tilt_inconsistent_equations():
    system = EquationSystem(1)
    system.add(np.array([1.0]), 0.0, weight=10.0)
    system.add(np.array([1.0]), 1.0, weight=0.1)
    solution = system.solve()
    assert abs(solution.values[0]) < 0.01


def test_prior_rows_excluded_from_identifiability():
    system = EquationSystem(2)
    system.add(np.array([1.0, 1.0]), -1.0)
    # Prior pinning the difference; without it the split is ambiguous.
    system.add(np.array([1.0, -1.0]), 0.0, weight=0.5, prior=True)
    solution = system.solve()
    # Values are pinned by the prior (even split)...
    assert solution.values[0] == pytest.approx(-0.5, abs=1e-6)
    # ...but identifiability reflects data only.
    assert not solution.identifiable.any()
    assert solution.rank == 1


def test_only_prior_equations_rejected():
    system = EquationSystem(1)
    system.add(np.array([1.0]), 0.0, prior=True)
    with pytest.raises(EstimationError):
        system.solve()


def test_empty_system_rejected():
    system = EquationSystem(2)
    with pytest.raises(EstimationError):
        system.solve()


def test_zero_unknowns():
    system = EquationSystem(0)
    solution = system.solve()
    assert solution.values.shape == (0,)
    assert solution.rank == 0


def test_row_width_checked():
    system = EquationSystem(2)
    with pytest.raises(EstimationError):
        system.add(np.array([1.0]), 0.0)


def test_nonpositive_weight_rejected():
    system = EquationSystem(1)
    with pytest.raises(EstimationError):
        system.add(np.array([1.0]), 0.0, weight=0.0)


def test_matrix_and_rhs_accessors():
    system = EquationSystem(2)
    system.add(np.array([1.0, 0.0]), 4.0)
    assert system.matrix.shape == (1, 2)
    assert system.rhs.tolist() == [4.0]
    assert len(system) == 1
