"""Tests for the three Boolean-inference algorithms.

The Section 3.1 toy behaviours are the anchor: on Fig. 1 with all three
paths congested, Sparsity picks {e1, e3}; with e2, e3 perfectly correlated,
Bayesian-Independence still picks {e1, e3} while Bayesian-Correlation picks
{e2, e3}.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InferenceError
from repro.inference.base import candidate_links
from repro.inference.bayesian_correlation import BayesianCorrelationInference
from repro.inference.bayesian_independence import BayesianIndependenceInference
from repro.inference.sparsity import SparsityInference
from repro.metrics.boolean import evaluate_inference
from repro.probability.base import EstimatorConfig
from repro.simulation.congestion import CongestionModel, Driver
from repro.simulation.experiment import run_experiment
from repro.simulation.probing import oracle_path_status
from repro.simulation.scenarios import ScenarioConfig, ScenarioKind, build_scenario


@pytest.fixture
def correlated_observations(fig1_case1):
    """e2, e3 perfectly correlated (p = 0.3); e1, e4 always good."""
    model = CongestionModel(4, [Driver(0.3, frozenset({1, 2}))])
    states = model.sample(3000, np.random.default_rng(2))
    return oracle_path_status(fig1_case1, states)


def test_candidate_links_reduction(fig1_case1):
    # p1, p2 congested, p3 good: e3, e4 exonerated by p3; e1, e2 remain.
    candidates = candidate_links(fig1_case1, frozenset({0, 1}))
    assert candidates == frozenset({0, 1})


def test_candidate_links_all_congested(fig1_case1):
    candidates = candidate_links(fig1_case1, frozenset({0, 1, 2}))
    assert candidates == frozenset({0, 1, 2, 3})


def test_candidate_links_empty(fig1_case1):
    assert candidate_links(fig1_case1, frozenset()) == frozenset()


def test_sparsity_picks_covering_links(fig1_case1):
    # Section 3.1: congested paths {p1, p2, p3} -> Sparsity infers {e1, e3}.
    inferred = SparsityInference().infer(fig1_case1, frozenset({0, 1, 2}))
    assert inferred == frozenset({0, 2})


def test_sparsity_single_path(fig1_case1):
    # Only p3 congested: candidates are e4, e3 minus links on good paths
    # (e3 is on good p2) -> {e4}.
    inferred = SparsityInference().infer(fig1_case1, frozenset({2}))
    assert inferred == frozenset({3})


def test_sparsity_nothing_congested(fig1_case1):
    assert SparsityInference().infer(fig1_case1, frozenset()) == frozenset()


def test_bayesian_independence_requires_prepare(fig1_case1):
    algorithm = BayesianIndependenceInference()
    with pytest.raises(InferenceError):
        algorithm.infer(fig1_case1, frozenset({0}))


def test_bayesian_correlation_requires_prepare(fig1_case1):
    algorithm = BayesianCorrelationInference()
    with pytest.raises(InferenceError):
        algorithm.infer(fig1_case1, frozenset({0}))


def test_bayesian_independence_fooled_by_correlation(
    fig1_case1, correlated_observations
):
    # Section 3.1: "Bayesian-Independence incorrectly determines that
    # {e1, e3} is the solution with the highest probability and always
    # picks it over the correct one, {e2, e3}".
    algorithm = BayesianIndependenceInference(EstimatorConfig(pruning_tolerance=0.0))
    algorithm.prepare(fig1_case1, correlated_observations)
    inferred = algorithm.infer(fig1_case1, frozenset({0, 1, 2}))
    assert inferred == frozenset({0, 2})


def test_bayesian_correlation_handles_correlation(fig1_case1, correlated_observations):
    algorithm = BayesianCorrelationInference(
        EstimatorConfig(requested_subset_size=2, pruning_tolerance=0.0),
        random_state=3,
    )
    algorithm.prepare(fig1_case1, correlated_observations)
    inferred = algorithm.infer(fig1_case1, frozenset({0, 1, 2}))
    assert inferred == frozenset({1, 2})


def test_infer_all_returns_one_set_per_interval(fig1_case1, correlated_observations):
    algorithm = SparsityInference()
    results = algorithm.infer_all(fig1_case1, correlated_observations)
    assert len(results) == correlated_observations.num_intervals


@pytest.mark.parametrize(
    "algorithm_factory",
    [
        SparsityInference,
        lambda: BayesianIndependenceInference(EstimatorConfig(seed=1)),
        lambda: BayesianCorrelationInference(EstimatorConfig(seed=1), random_state=1),
    ],
)
def test_inference_decent_on_dense_topology(algorithm_factory, small_brite):
    scenario = build_scenario(small_brite, ScenarioConfig(kind=ScenarioKind.RANDOM), 4)
    experiment = run_experiment(scenario, 80, random_state=5, oracle=True)
    metrics = evaluate_inference(algorithm_factory(), experiment)
    # Dense topology + perfect observations: the favourable regime.
    assert metrics.detection_rate > 0.85
    assert metrics.false_positive_rate < 0.15


def test_inference_inferred_sets_within_candidates(small_brite):
    scenario = build_scenario(small_brite, ScenarioConfig(kind=ScenarioKind.RANDOM), 4)
    experiment = run_experiment(scenario, 30, random_state=5, oracle=True)
    algorithm = BayesianIndependenceInference(EstimatorConfig(seed=1))
    algorithm.prepare(small_brite, experiment.observations)
    for t in range(experiment.num_intervals):
        congested_paths = experiment.observations.congested_paths(t)
        inferred = algorithm.infer(small_brite, congested_paths)
        assert inferred <= candidate_links(small_brite, congested_paths)


def test_inference_explains_all_congested_paths(small_brite):
    scenario = build_scenario(small_brite, ScenarioConfig(kind=ScenarioKind.RANDOM), 4)
    experiment = run_experiment(scenario, 30, random_state=6, oracle=True)
    algorithm = SparsityInference()
    for t in range(experiment.num_intervals):
        congested_paths = experiment.observations.congested_paths(t)
        inferred = algorithm.infer(small_brite, congested_paths)
        for p in congested_paths:
            # With oracle observations every congested path has a candidate,
            # so the cover must explain it.
            assert frozenset(small_brite.paths[p].links) & inferred
