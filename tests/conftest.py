"""Shared fixtures: toy topologies, small generated networks, observations."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.simulation.congestion import CongestionModel, Driver
from repro.simulation.probing import oracle_path_status
from repro.topology.brite import BriteConfig, generate_brite_network
from repro.topology.builders import fig1_topology
from repro.topology.traceroute import TracerouteConfig, generate_sparse_network


@pytest.fixture(scope="session", autouse=True)
def isolated_dataset_cache(tmp_path_factory):
    """Point the dataset parse cache at a per-session scratch directory.

    Keeps the suite hermetic (no writes under ``~/.cache``) while still
    exercising — and benefiting from — the cache across tests.
    """
    cache_dir = tmp_path_factory.mktemp("dataset-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield cache_dir
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture
def fig1_case1():
    """The paper's Fig. 1 toy topology, correlation sets of Case 1."""
    return fig1_topology(case=1)


@pytest.fixture
def fig1_case2():
    """The paper's Fig. 1 toy topology, correlation sets of Case 2."""
    return fig1_topology(case=2)


@pytest.fixture
def fig1_model():
    """Ground truth on Fig. 1: e2, e3 perfectly correlated, e1 independent.

    e4 is never congested, so path p3 is good whenever e3 is good.
    """
    return CongestionModel(
        4,
        [
            Driver(probability=0.3, links=frozenset({1, 2})),
            Driver(probability=0.2, links=frozenset({0})),
        ],
    )


@pytest.fixture
def fig1_observations(fig1_case1, fig1_model):
    """Long oracle observation window on Fig. 1 Case 1."""
    states = fig1_model.sample(8000, np.random.default_rng(42))
    return oracle_path_status(fig1_case1, states)


@pytest.fixture(scope="session")
def small_brite():
    """A small dense Brite-style network (deterministic)."""
    config = BriteConfig(
        num_ases=10,
        as_attachment=2,
        routers_per_as=4,
        inter_as_links=2,
        num_vantage_points=3,
        num_destinations=30,
        num_paths=80,
    )
    return generate_brite_network(config, 7)


@pytest.fixture(scope="session")
def small_sparse():
    """A small sparse traceroute-derived network (deterministic)."""
    config = TracerouteConfig(
        underlay=BriteConfig(
            num_ases=24,
            as_attachment=1,
            routers_per_as=4,
            inter_as_links=1,
            num_vantage_points=2,
            num_destinations=40,
            num_paths=80,
        ),
        num_probes=400,
        response_prob=0.95,
        load_balance_prob=0.3,
        max_kept_paths=80,
    )
    return generate_sparse_network(config, 7)
