"""Checkpoint/restore: a restarted monitor continues the stream exactly."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.probability.base import EstimatorConfig
from repro.probability.correlation_complete import CorrelationCompleteEstimator
from repro.simulation.congestion import CongestionModel, Driver, NonStationaryModel
from repro.simulation.probing import oracle_path_status
from repro.streaming import AlertManager, AlertPolicy, StreamingEstimator
from repro.streaming.checkpoint import (
    checkpoint_state,
    restore_engine,
    save_checkpoint,
)
from repro.topology.builders import fig1_topology


@pytest.fixture(scope="module")
def setup():
    network = fig1_topology(case=1)
    quiet = CongestionModel(4, [Driver(0.1, frozenset({0}))])
    busy = CongestionModel(4, [Driver(0.7, frozenset({0}))])
    truth = NonStationaryModel([(quiet, 400), (busy, 400)])
    states = truth.sample(800, np.random.default_rng(4))
    dense = oracle_path_status(network, states).matrix
    return network, dense


def _engine(network, with_alerts=True):
    manager = (
        AlertManager(network, AlertPolicy(peer_high=0.5, peer_low=0.4, link_shift=0.2))
        if with_alerts
        else None
    )
    return StreamingEstimator(
        network,
        CorrelationCompleteEstimator(EstimatorConfig(pruning_tolerance=0.0)),
        window=150,
        stride=70,
        alert_manager=manager,
    )


def test_restart_resumes_identically(setup, tmp_path):
    network, dense = setup
    uninterrupted = _engine(network)
    uninterrupted.ingest(dense)

    interrupted = _engine(network)
    interrupted.ingest(dense[:430])
    path = save_checkpoint(interrupted, tmp_path / "monitor.json")
    resumed = restore_engine(
        path,
        network,
        CorrelationCompleteEstimator(EstimatorConfig(pruning_tolerance=0.0)),
        alert_manager=AlertManager(
            network, AlertPolicy(peer_high=0.5, peer_low=0.4, link_shift=0.2)
        ),
    )
    assert resumed.intervals_ingested == 430
    assert resumed.next_window_start == interrupted.next_window_start
    resumed.ingest(dense[430:])

    spans = (interrupted.timeline.window_spans() + resumed.timeline.window_spans())
    assert spans == uninterrupted.timeline.window_spans()
    for full, part in zip(
        uninterrupted.timeline.windows,
        interrupted.timeline.windows + resumed.timeline.windows,
    ):
        for link in range(network.num_links):
            assert full.model.link_congestion_probability(
                link
            ) == part.model.link_congestion_probability(link)
    # Alerts continue with the same identities and *global* window indices:
    # detector hysteresis and numbering survive the restart.
    full_alerts = [
        (a.kind, a.scope, a.target, a.window_index)
        for a in uninterrupted.alerts
    ]
    split_alerts = [
        (a.kind, a.scope, a.target, a.window_index)
        for a in interrupted.alerts + resumed.alerts
    ]
    assert full_alerts == split_alerts
    assert resumed.refits + interrupted.refits - resumed.refits >= 0


def test_checkpoint_preserves_counters_and_workload(setup, tmp_path):
    network, dense = setup
    engine = _engine(network, with_alerts=False)
    engine.ingest(dense[:430])
    state = checkpoint_state(engine)
    resumed = restore_engine(
        state,
        network,
        CorrelationCompleteEstimator(EstimatorConfig(pruning_tolerance=0.0)),
    )
    assert resumed.refits == engine.refits
    assert resumed.cache_hits == engine.cache_hits
    assert resumed.cache_misses == engine.cache_misses
    assert resumed._workload == engine._workload
    assert (resumed.buffer.view().matrix == engine.buffer.view().matrix).all()


def test_checkpoint_is_json_and_portable(setup, tmp_path):
    network, dense = setup
    engine = _engine(network, with_alerts=False)
    engine.ingest(dense[:430])
    path = save_checkpoint(engine, tmp_path / "state.json")
    document = json.loads(path.read_text())
    assert document["version"] == 1
    assert document["num_paths"] == network.num_paths
    assert isinstance(document["ring"]["words"], str)  # base64, not binary


def test_window_numbering_survives_repeated_restores(setup, tmp_path):
    """Alert window indices stay global across checkpoint generations."""
    network, dense = setup
    uninterrupted = _engine(network)
    uninterrupted.ingest(dense)

    engine = _engine(network)
    engine.ingest(dense[:300])
    alerts = list(engine.alerts)
    for boundary in (550, 800):  # two restart generations
        state = checkpoint_state(engine)
        engine = restore_engine(
            state,
            network,
            CorrelationCompleteEstimator(EstimatorConfig(pruning_tolerance=0.0)),
            alert_manager=AlertManager(
                network,
                AlertPolicy(peer_high=0.5, peer_low=0.4, link_shift=0.2),
            ),
        )
        start = engine.intervals_ingested
        engine.ingest(dense[start:boundary])
        alerts.extend(engine.alerts)
    assert engine.windows_emitted == uninterrupted.windows_emitted
    assert [(a.kind, a.scope, a.target, a.window_index) for a in alerts] == [
        (a.kind, a.scope, a.target, a.window_index)
        for a in uninterrupted.alerts
    ]


def test_restore_applies_new_alert_policy_to_old_targets(setup):
    """Thresholds are config, not state: a restart picks up policy changes."""
    network, dense = setup
    engine = _engine(network)  # peer_high=0.5
    engine.ingest(dense[:300])
    assert engine.alert_manager._peer_threshold  # targets seen pre-restart
    state = checkpoint_state(engine)
    raised_policy = AlertPolicy(peer_high=0.9, peer_low=0.8, link_shift=0.2)
    resumed = restore_engine(
        state,
        network,
        CorrelationCompleteEstimator(EstimatorConfig(pruning_tolerance=0.0)),
        alert_manager=AlertManager(network, raised_policy),
    )
    manager = resumed.alert_manager
    for target, detector in manager._peer_threshold.items():
        assert detector.high == 0.9, target  # new policy, old target
        # ... while the hysteresis state survived the restart.
        assert detector.active == engine.alert_manager._peer_threshold[target].active


def test_checkpoint_preserves_resource_bounds(setup):
    network, dense = setup
    engine = StreamingEstimator(
        network,
        CorrelationCompleteEstimator(EstimatorConfig(pruning_tolerance=0.0)),
        window=150,
        stride=70,
        workload_limit=123,
        max_windows=3,
        max_alerts=2,
    )
    engine.ingest(dense[:300])
    resumed = restore_engine(
        checkpoint_state(engine),
        network,
        CorrelationCompleteEstimator(EstimatorConfig(pruning_tolerance=0.0)),
    )
    assert resumed.workload_limit == 123
    assert resumed.max_windows == 3
    assert resumed.max_alerts == 2


def test_restore_rejects_estimator_mismatch(setup):
    from repro.probability.independence import IndependenceEstimator

    network, dense = setup
    engine = _engine(network, with_alerts=False)
    engine.ingest(dense[:200])
    state = checkpoint_state(engine)
    with pytest.raises(EstimationError):
        restore_engine(state, network, IndependenceEstimator())


def test_restore_validates_structure(setup, tmp_path):
    network, dense = setup
    engine = _engine(network, with_alerts=False)
    engine.ingest(dense[:200])
    state = checkpoint_state(engine)

    wrong_version = dict(state, version=99)
    with pytest.raises(EstimationError):
        restore_engine(wrong_version, network)

    wrong_paths = dict(state, num_paths=state["num_paths"] + 1)
    with pytest.raises(EstimationError):
        restore_engine(wrong_paths, network)

    wrong_links = dict(state, num_links=state["num_links"] + 1)
    with pytest.raises(EstimationError):
        restore_engine(wrong_links, network)


def test_checkpoint_preserves_kernel_pin(setup, tmp_path):
    network, dense = setup
    engine = StreamingEstimator(
        network,
        CorrelationCompleteEstimator(EstimatorConfig(pruning_tolerance=0.0)),
        window=150,
        stride=70,
        kernel="numpy",
    )
    engine.ingest(dense[:300])
    path = save_checkpoint(engine, tmp_path / "pinned.json")
    restored = restore_engine(
        path,
        network,
        estimator=CorrelationCompleteEstimator(
            EstimatorConfig(pruning_tolerance=0.0)
        ),
    )
    assert restored.kernel == "numpy"
    # An unpinned engine round-trips as unpinned.
    free = _engine(network, with_alerts=False)
    free.ingest(dense[:300])
    path = save_checkpoint(free, tmp_path / "free.json")
    restored = restore_engine(
        path,
        network,
        estimator=CorrelationCompleteEstimator(
            EstimatorConfig(pruning_tolerance=0.0)
        ),
    )
    assert restored.kernel is None


def test_engine_rejects_unknown_kernel(setup):
    network, _ = setup
    with pytest.raises(ValueError, match="unknown kernel"):
        StreamingEstimator(network, window=16, kernel="simd")
