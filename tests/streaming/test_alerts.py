"""Online alerting: detectors, hysteresis, offline change-point parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.probability.base import EstimatorConfig
from repro.probability.correlation_complete import CorrelationCompleteEstimator
from repro.probability.windowed import WindowedEstimator, peer_link_members
from repro.simulation.congestion import CongestionModel, Driver, NonStationaryModel
from repro.simulation.probing import oracle_path_status
from repro.streaming import (
    AlertManager,
    AlertPolicy,
    LevelShiftDetector,
    StreamingEstimator,
    ThresholdDetector,
)
from repro.topology.builders import fig1_topology


# ----------------------------------------------------------------------
# Detector units
# ----------------------------------------------------------------------
def test_threshold_detector_hysteresis():
    detector = ThresholdDetector(high=0.5, low=0.3)
    assert detector.update(0.4) is None
    assert detector.update(0.6) == "raise"
    # Inside the hysteresis band: neither re-raise nor clear.
    assert detector.update(0.4) is None
    assert detector.update(0.55) is None
    assert detector.update(0.2) == "clear"
    assert detector.update(0.6) == "raise"


def test_threshold_detector_validation():
    with pytest.raises(ValueError):
        ThresholdDetector(high=1.5)
    with pytest.raises(ValueError):
        ThresholdDetector(high=0.4, low=0.5)
    with pytest.raises(ValueError):
        ThresholdDetector(high=0.5, low=-0.1)  # could never clear


def test_level_shift_detector_matches_change_points_semantics():
    series = [0.1, 0.12, 0.5, 0.52, 0.1, 0.11]
    detector = LevelShiftDetector(threshold=0.2)
    fired = [i for i, value in enumerate(series) if detector.update(value) is not None]
    expected = [
        i + 1
        for i in range(len(series) - 1)
        if abs(series[i + 1] - series[i]) > 0.2
    ]
    assert fired == expected == [2, 4]


def test_level_shift_detector_rearm_hysteresis():
    # Oscillating series: without rearm it flaps, with rearm one alert
    # per episode.
    series = [0.1, 0.5, 0.1, 0.5, 0.5, 0.5, 0.1]
    flapping = LevelShiftDetector(threshold=0.2)
    fired = [i for i, v in enumerate(series) if flapping.update(v) is not None]
    assert len(fired) == 4
    damped = LevelShiftDetector(threshold=0.2, rearm=0.1)
    fired = [i for i, v in enumerate(series) if damped.update(v) is not None]
    # Fires at the first jump, stays disarmed through the oscillation,
    # re-arms once the series settles at 0.5, fires on the drop back.
    assert fired == [1, 6]


def test_level_shift_detector_rearm_recovers_after_spike():
    """A one-window spike must not kill the detector permanently."""
    detector = LevelShiftDetector(threshold=0.25, rearm=0.05)
    series = [0.1, 0.6, 0.1, 0.1, 0.1, 0.9]
    fired = [i for i, v in enumerate(series) if detector.update(v) is not None]
    # Fires on the spike, re-arms once the series settles back at 0.1,
    # then catches the later genuine flash crowd.
    assert fired == [1, 5]
    assert detector._armed is False  # freshly disarmed by the last shift


def test_level_shift_detector_validation():
    with pytest.raises(ValueError):
        LevelShiftDetector(threshold=0.0)


# ----------------------------------------------------------------------
# Manager over a real streaming run
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def shifting_run():
    network = fig1_topology(case=1)
    quiet = CongestionModel(4, [Driver(0.1, frozenset({0}))])
    busy = CongestionModel(4, [Driver(0.7, frozenset({0}))])
    truth = NonStationaryModel([(quiet, 400), (busy, 400)])
    states = truth.sample(800, np.random.default_rng(4))
    dense = oracle_path_status(network, states).matrix
    return network, dense


def test_manager_flags_the_flash_crowd(shifting_run):
    network, dense = shifting_run
    manager = AlertManager(
        network,
        AlertPolicy(peer_high=0.5, peer_low=0.4, link_shift=0.2),
    )
    engine = StreamingEstimator(
        network,
        CorrelationCompleteEstimator(EstimatorConfig(pruning_tolerance=0.0)),
        window=200,
        alert_manager=manager,
    )
    engine.ingest(dense)
    kinds = {(a.kind, a.scope, a.target) for a in engine.alerts}
    # e0 (the shifting link, owned by AS 0) must raise both detector types.
    assert ("level_shift", "link", 0) in kinds
    assert ("threshold_raise", "peer", 0) in kinds
    shift = next(a for a in engine.alerts if a.kind == "level_shift")
    assert shift.window_index == 2  # busy epoch starts at window 2
    assert shift.value > shift.baseline
    assert "e0" in shift.message


def test_streaming_shifts_match_offline_change_points(shifting_run):
    """With rearm disabled, streaming level shifts == offline change_points."""
    network, dense = shifting_run
    from repro.model.status import ObservationMatrix

    estimator = CorrelationCompleteEstimator(EstimatorConfig(pruning_tolerance=0.0))
    offline = WindowedEstimator(estimator, window=200).fit(
        network, ObservationMatrix(dense)
    )
    manager = AlertManager(
        network, AlertPolicy(peer_high=None, link_shift=0.2, rearm=None)
    )
    engine = StreamingEstimator(
        network,
        CorrelationCompleteEstimator(EstimatorConfig(pruning_tolerance=0.0)),
        window=200,
        alert_manager=manager,
    )
    engine.ingest(dense)
    for link in range(network.num_links):
        streamed = [
            a.window_index
            for a in engine.alerts
            if a.kind == "level_shift" and a.scope == "link" and a.target == link
        ]
        assert streamed == offline.change_points(link, threshold=0.2)


def test_peer_link_members_grouping(shifting_run):
    network, _ = shifting_run
    members = peer_link_members(network)
    assert set(members) == {link.asn for link in network.links}
    flattened = sorted(index for group in members.values() for index in group)
    assert flattened == list(range(network.num_links))
