"""Streaming-vs-offline equivalence: the subsystem's defining invariant.

A :class:`StreamingEstimator` fed a horizon round by round must reproduce
the offline :class:`WindowedEstimator` timelines exactly — same window
spans, same link/set/peer series to 1e-9 (in practice bit-identical) —
across packed and dense offline backends, tumbling and overlapping
strides, and arbitrary ingest chunkings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.model.status import ObservationMatrix
from repro.probability.base import EstimatorConfig
from repro.probability.correlation_complete import CorrelationCompleteEstimator
from repro.probability.independence import IndependenceEstimator
from repro.probability.windowed import WindowedEstimator
from repro.simulation.congestion import CongestionModel, Driver, NonStationaryModel
from repro.simulation.probing import oracle_path_status
from repro.streaming import StreamingEstimator
from repro.topology.builders import fig1_topology


@pytest.fixture(scope="module")
def network():
    return fig1_topology(case=1)


@pytest.fixture(scope="module")
def horizon(network):
    """An 800-interval shifting horizon (quiet 400, busy 400) on Fig. 1."""
    quiet = CongestionModel(4, [Driver(0.1, frozenset({0}))])
    busy = CongestionModel(4, [Driver(0.7, frozenset({0}))])
    truth = NonStationaryModel([(quiet, 400), (busy, 400)])
    states = truth.sample(800, np.random.default_rng(4))
    return oracle_path_status(network, states).matrix


def _estimator():
    return CorrelationCompleteEstimator(EstimatorConfig(pruning_tolerance=0.0))


def _stream(network, dense, window, stride, chunks, **kwargs):
    engine = StreamingEstimator(
        network, _estimator(), window=window, stride=stride, **kwargs
    )
    pos = 0
    for n in chunks:
        engine.ingest(dense[pos : pos + n])
        pos += n
    assert pos == dense.shape[0]
    return engine


def _chunkings(total, seed):
    rng = np.random.default_rng(seed)
    round_by_round = [1] * total
    ragged = []
    pos = 0
    while pos < total:
        n = int(rng.integers(1, 97))
        n = min(n, total - pos)
        ragged.append(n)
        pos += n
    return {"round_by_round": round_by_round, "ragged": ragged, "bulk": [total]}


def _assert_timelines_match(network, offline, streaming, tol=1e-9):
    assert offline.window_spans() == streaming.window_spans()
    for link in range(network.num_links):
        np.testing.assert_allclose(
            streaming.link_series(link),
            offline.link_series(link),
            atol=tol,
            rtol=0,
        )
    np.testing.assert_allclose(
        streaming.set_series([0, 1]), offline.set_series([0, 1]), atol=tol, rtol=0
    )
    for asn in {link.asn for link in network.links}:
        np.testing.assert_allclose(
            streaming.peer_series(asn), offline.peer_series(asn), atol=tol, rtol=0
        )


@pytest.mark.parametrize("backend", ["packed", "dense"])
@pytest.mark.parametrize("window,stride", [(200, 200), (200, 100), (150, 70)])
def test_streaming_matches_offline(network, horizon, backend, window, stride):
    observations = ObservationMatrix(horizon, backend=backend)
    offline = WindowedEstimator(_estimator(), window=window, stride=stride).fit(
        network, observations
    )
    for label, chunks in _chunkings(horizon.shape[0], seed=window + stride).items():
        engine = _stream(network, horizon, window, stride, chunks)
        _assert_timelines_match(network, offline, engine.timeline, tol=1e-9)
        assert engine.refits == len(offline.windows), label


def test_streaming_matches_offline_other_estimator(network, horizon):
    """The engine is estimator-agnostic (Independence baseline)."""
    observations = ObservationMatrix(horizon)
    offline = WindowedEstimator(IndependenceEstimator(), window=200).fit(
        network, observations
    )
    engine = StreamingEstimator(network, IndependenceEstimator(), window=200)
    engine.ingest(horizon)
    _assert_timelines_match(network, offline, engine.timeline)


def test_warm_workload_does_not_change_results(network, horizon):
    """Prefetching is an amortisation, never a value change."""
    cold = StreamingEstimator(
        network, _estimator(), window=150, stride=70, workload_limit=0
    )
    warm = StreamingEstimator(network, _estimator(), window=150, stride=70)
    cold.ingest(horizon)
    warm.ingest(horizon)
    assert cold.timeline.window_spans() == warm.timeline.window_spans()
    for link in range(network.num_links):
        assert np.array_equal(
            cold.timeline.link_series(link), warm.timeline.link_series(link)
        )
    # The warm engine resolves the fit's queries from the prefetched
    # workload (hits), never computing more distinct sets than a cold
    # start — the per-window query set collapses into one batched kernel
    # call instead of being re-derived query by query during the fit.
    assert warm.cache_hits > cold.cache_hits
    assert warm.cache_misses <= cold.cache_misses


def test_refits_are_incremental_not_full_horizon(network, horizon):
    """Each refit touches one window, regardless of how much history exists."""
    engine = StreamingEstimator(network, _estimator(), window=150, stride=70)
    engine.ingest(horizon)
    # Every emitted window spans exactly `window` intervals; the engine
    # never fit anything wider than one window even though the stream was
    # > 5 windows long.
    for start, stop in engine.timeline.window_spans():
        assert stop - start == engine.window
    assert engine.refits == len(engine.timeline.windows)


def test_unusable_windows_skipped_like_offline(network):
    blocks = np.vstack([np.ones((100, 3), dtype=bool), np.zeros((100, 3), dtype=bool)])
    offline = WindowedEstimator(_estimator(), window=100).fit(
        network, ObservationMatrix(blocks)
    )
    engine = StreamingEstimator(network, _estimator(), window=100)
    engine.ingest(blocks)
    assert engine.timeline.window_spans() == offline.window_spans() == [(100, 200)]
    assert engine.skipped_windows == 1


def test_skipped_window_keeps_warm_workload(network, horizon):
    """One degenerate window must not cold-start the refits after it."""
    engine = StreamingEstimator(network, _estimator(), window=100)
    engine.ingest(horizon[:200])
    warm = list(engine._workload)
    assert warm
    engine.ingest(np.ones((100, network.num_paths), dtype=bool))  # skipped
    assert engine.skipped_windows == 1
    assert engine._workload == warm


def test_eviction_never_outruns_refit_cursor(network, horizon):
    """Tiny retention with bulk ingest still yields the full timeline."""
    offline = WindowedEstimator(_estimator(), window=100).fit(
        network, ObservationMatrix(horizon)
    )
    engine = StreamingEstimator(network, _estimator(), window=100, retention=100)
    engine.ingest(horizon)  # one giant chunk; engine must self-throttle
    _assert_timelines_match(network, offline, engine.timeline)


def test_engine_validation(network):
    with pytest.raises(EstimationError):
        StreamingEstimator(network, window=1)
    with pytest.raises(EstimationError):
        StreamingEstimator(network, window=10, stride=0)
    with pytest.raises(EstimationError):
        StreamingEstimator(network, workload_limit=-1)
    engine = StreamingEstimator(network)
    with pytest.raises(EstimationError):
        engine.ingest(np.zeros(5, dtype=bool))


def test_workload_tracks_fit_queries_not_prefetch_history(network, horizon):
    """The carried workload is what the last fit queried — stale sets drop."""
    engine = StreamingEstimator(network, _estimator(), window=150, stride=70)
    sizes = []
    for start in range(0, 800, 50):
        engine.ingest(horizon[start : start + 50])
        sizes.append(len(engine._workload))
    # Once windows repeat the same query pattern the workload stabilises
    # instead of monotonically accumulating every set ever prefetched.
    assert sizes[-1] <= max(sizes[:-1])
    cache_probe = {frozenset({0})}
    assert len(engine._workload) < 8192  # nowhere near the cap on fig1
    del cache_probe


def test_frequency_cache_touch_tracking_is_opt_in(network, horizon):
    """Offline fits must not accumulate a touched set (bounded-memory memo)."""
    from repro.probability.base import FrequencyCache

    cache = FrequencyCache(ObservationMatrix(horizon[:100]))
    cache(frozenset({0}))
    cache.query_many([frozenset({1}), frozenset({0, 1})])
    assert cache.touched_keys() == []  # tracking off by default
    cache.reset_touched()
    cache(frozenset({0}))
    assert cache.touched_keys() == [frozenset({0})]
    cache.reset_touched()
    assert cache.touched_keys() == []


def test_engine_leaves_estimator_stateless(network, horizon):
    """Cache injection flows through the fit context, never the estimator.

    The engine used to swap a mutable ``frequency_factory`` attribute on
    the estimator around every refit (stateful injection that could leak
    across fits); the pipeline's SharedFitWorkspace replaced it. The same
    estimator instance must therefore produce an untouched cold fit right
    after serving the engine.
    """
    import numpy as np

    from repro.probability.base import EstimatorConfig
    from repro.probability.correlation_complete import (
        CorrelationCompleteEstimator,
    )

    estimator = _estimator()
    assert not hasattr(estimator, "frequency_factory")
    engine = StreamingEstimator(network, estimator, window=200)
    engine.ingest(horizon[:400])
    observations = ObservationMatrix(horizon[:200])
    after_engine = estimator.fit(network, observations)
    fresh = CorrelationCompleteEstimator(
        EstimatorConfig(pruning_tolerance=0.0)
    ).fit(network, observations)
    assert np.array_equal(after_engine.link_marginals(), fresh.link_marginals())
    assert after_engine.report.frequency_cache_misses == (
        fresh.report.frequency_cache_misses
    )


def test_bounded_derived_state(network, horizon):
    """max_windows/max_alerts cap memory while keeping global numbering."""
    from repro.streaming import AlertManager, AlertPolicy

    engine = StreamingEstimator(
        network,
        _estimator(),
        window=150,
        stride=70,
        max_windows=3,
        max_alerts=2,
        alert_manager=AlertManager(
            network, AlertPolicy(peer_high=0.5, peer_low=0.4, link_shift=0.2)
        ),
    )
    engine.ingest(horizon)
    assert engine.windows_emitted > 3  # more emitted than retained
    assert len(engine.timeline.windows) == 3
    assert len(engine.alerts) <= 2
    # The retained tail is the newest windows, spans intact.
    spans = engine.timeline.window_spans()
    assert spans == sorted(spans)
    assert spans[-1][1] <= horizon.shape[0]
    with pytest.raises(EstimationError):
        StreamingEstimator(network, max_windows=0)
    with pytest.raises(EstimationError):
        StreamingEstimator(network, max_alerts=-1)


def test_run_from_chunk_iterator(network, horizon):
    engine = StreamingEstimator(network, _estimator(), window=200)
    chunks = (horizon[pos : pos + 33] for pos in range(0, 800, 33))
    timeline = engine.run(chunks, max_intervals=500)
    assert engine.intervals_ingested == 500
    assert timeline.window_spans() == [(0, 200), (200, 400)]


def test_kernel_pin_is_scoped_to_refits(network, horizon):
    """A pinned engine fits identically and never leaks the selection."""
    from repro.model import kernels
    from repro.probability.independence import IndependenceEstimator

    dense = horizon
    kernels.reset_kernel_selection()
    free = StreamingEstimator(
        network,
        IndependenceEstimator(EstimatorConfig(pruning_tolerance=0.0)),
        window=100,
        stride=50,
    )
    pinned = StreamingEstimator(
        network,
        IndependenceEstimator(EstimatorConfig(pruning_tolerance=0.0)),
        window=100,
        stride=50,
        kernel="numpy",
    )
    free.ingest(dense[:400])
    pinned.ingest(dense[:400])
    assert len(free.timeline.windows) == len(pinned.timeline.windows)
    for a, b in zip(free.timeline.windows, pinned.timeline.windows):
        np.testing.assert_array_equal(
            a.model.link_marginals(), b.model.link_marginals()
        )
    # Ingesting through the pinned engine must not change the global
    # selection outside its refits.
    assert kernels.requested_kernel() == kernels.AUTO
