"""Observation sources: prober streaming, replay, NDJSON round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ScenarioError
from repro.simulation.congestion import CongestionModel, Driver, NonStationaryModel
from repro.simulation.probing import (
    PathProber,
    StreamingProber,
    oracle_path_status,
)
from repro.streaming.ingest import (
    MatrixSource,
    NDJSONTraceSource,
    ProberSource,
    write_ndjson_trace,
)
from repro.topology.builders import fig1_topology


@pytest.fixture(scope="module")
def network():
    return fig1_topology(case=1)


@pytest.fixture(scope="module")
def truth():
    quiet = CongestionModel(4, [Driver(0.2, frozenset({0, 1}))])
    busy = CongestionModel(4, [Driver(0.6, frozenset({2}))])
    return NonStationaryModel([(quiet, 30), (busy, 45)])


# ----------------------------------------------------------------------
# Ground-truth streaming
# ----------------------------------------------------------------------
def test_sample_stream_matches_batch_sample(truth):
    batch = truth.sample(500, np.random.default_rng(9))
    stream = truth.sample_stream(13, np.random.default_rng(9))
    chunks = [next(stream) for _ in range(-(-500 // 13))]
    assert (np.vstack(chunks)[:500] == batch).all()


def test_sample_stream_validation(truth):
    with pytest.raises(ScenarioError):
        next(truth.sample_stream(0))


# ----------------------------------------------------------------------
# StreamingProber
# ----------------------------------------------------------------------
def test_streaming_oracle_chunk_size_invariance(network, truth):
    """Oracle rounds are chunking-invariant: same seed, any block size.

    The ground-truth substream is seeded independently of the chunk size
    and :meth:`sample_stream` carries epoch state across chunks, so the
    concatenated observation stream must not depend on how it was blocked.
    """
    prober_small = StreamingProber(network, truth, chunk_intervals=17)
    prober_large = StreamingProber(network, truth, chunk_intervals=300)
    small = np.vstack(list(prober_small.rounds(300, random_state=5)))
    large = np.vstack(list(prober_large.rounds(300, random_state=5)))
    assert small.shape == (300, network.num_paths)
    assert (small == large).all()
    # And the stream equals the oracle of the same derived state stream.
    seed_rng = np.random.default_rng(5)
    state_rng = np.random.default_rng(seed_rng.integers(0, 2**63 - 1))
    states = next(truth.sample_stream(300, state_rng))
    assert (large == oracle_path_status(network, states).matrix).all()


def test_streaming_prober_deterministic_and_bounded(network, truth):
    prober = StreamingProber(
        network, truth, prober=PathProber(num_packets=500), chunk_intervals=16
    )
    first = list(prober.rounds(100, random_state=3))
    second = list(prober.rounds(100, random_state=3))
    assert sum(chunk.shape[0] for chunk in first) == 100
    assert first[-1].shape[0] == 100 % 16 or first[-1].shape[0] == 16
    for a, b in zip(first, second):
        assert (a == b).all()


def test_streaming_prober_validation(network, truth):
    with pytest.raises(ScenarioError):
        StreamingProber(network, truth, chunk_intervals=0)


# ----------------------------------------------------------------------
# Sources
# ----------------------------------------------------------------------
def test_prober_source(network, truth):
    source = ProberSource(
        StreamingProber(network, truth, chunk_intervals=32),
        num_intervals=96,
        random_state=11,
    )
    assert source.num_paths == network.num_paths
    chunks = list(source.chunks())
    assert sum(c.shape[0] for c in chunks) == 96


def test_matrix_source_round_trip(network, truth):
    states = truth.sample(120, np.random.default_rng(8))
    observations = oracle_path_status(network, states)
    source = MatrixSource(observations, chunk_intervals=50)
    replayed = np.vstack(list(source.chunks()))
    assert (replayed == observations.matrix).all()
    with pytest.raises(ScenarioError):
        MatrixSource(observations, chunk_intervals=0)
    with pytest.raises(ScenarioError):
        MatrixSource(np.zeros(4, dtype=bool))


def test_ndjson_round_trip(network, truth, tmp_path):
    states = truth.sample(150, np.random.default_rng(2))
    observations = oracle_path_status(network, states)
    trace = tmp_path / "campaign.ndjson"
    written = write_ndjson_trace(trace, observations)
    assert written == 150
    source = NDJSONTraceSource(trace, chunk_intervals=40)
    assert source.num_paths == network.num_paths
    replayed = np.vstack(list(source.chunks()))
    assert (replayed == observations.matrix).all()
    # Replays are repeatable (the file is re-read lazily each time).
    replayed_again = np.vstack(list(source.chunks()))
    assert (replayed_again == replayed).all()


def test_ndjson_write_from_chunks(tmp_path):
    chunks = [
        np.array([[0, 1, 0], [1, 0, 0]], dtype=bool),
        np.array([[0, 0, 1]], dtype=bool),
    ]
    trace = tmp_path / "stream.ndjson"
    assert write_ndjson_trace(trace, iter(chunks), num_paths=3) == 3
    replayed = np.vstack(list(NDJSONTraceSource(trace, 2).chunks()))
    assert (replayed == np.vstack(chunks)).all()
    with pytest.raises(ScenarioError):
        write_ndjson_trace(trace, iter(chunks))  # num_paths required


def test_ndjson_rejects_malformed(tmp_path):
    bad = tmp_path / "bad.ndjson"
    bad.write_text('{"type": "round", "congested": []}\n')
    with pytest.raises(ScenarioError):
        NDJSONTraceSource(bad)
    worse = tmp_path / "worse.ndjson"
    worse.write_text(
        '{"type": "header", "num_paths": 2}\n'
        '{"type": "round", "congested": [5]}\n'
    )
    with pytest.raises(ScenarioError):
        list(NDJSONTraceSource(worse).chunks())
