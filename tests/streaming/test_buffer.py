"""PackedRingBuffer: append/eviction/window semantics vs dense reference."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import EstimationError
from repro.streaming.buffer import PackedRingBuffer


def _random_horizon(rng, rounds, paths, density=0.3):
    return rng.random((rounds, paths)) < density


def test_validation():
    with pytest.raises(EstimationError):
        PackedRingBuffer(0)
    with pytest.raises(EstimationError):
        PackedRingBuffer(3, retention=0)
    ring = PackedRingBuffer(3)
    with pytest.raises(EstimationError):
        ring.append(np.zeros((4, 2), dtype=bool))
    with pytest.raises(EstimationError):
        ring.append(np.zeros(4, dtype=bool))


def test_append_and_full_view_matches_dense():
    rng = np.random.default_rng(0)
    horizon = _random_horizon(rng, 1000, 9)
    ring = PackedRingBuffer(9, retention=2048)
    pos = 0
    while pos < 1000:
        n = int(rng.integers(1, 100))
        ring.append(horizon[pos : pos + n])
        pos += n
    assert ring.end_interval == 1000
    assert ring.first_interval == 0
    assert len(ring) == 1000
    assert (ring.view().matrix == horizon).all()


def test_windows_match_dense_slices():
    rng = np.random.default_rng(1)
    horizon = _random_horizon(rng, 700, 5)
    ring = PackedRingBuffer(5, retention=1024)
    ring.append(horizon)
    for start, stop in [(0, 700), (0, 64), (64, 640), (13, 205), (699, 700),
                        (128, 128), (640, 700)]:
        window = ring.window(start, stop)
        assert window.num_intervals == stop - start
        assert (window.matrix == horizon[start:stop]).all(), (start, stop)


def test_word_aligned_windows_are_zero_copy():
    rng = np.random.default_rng(2)
    horizon = _random_horizon(rng, 512, 4)
    ring = PackedRingBuffer(4, retention=1024)
    ring.append(horizon[:500])
    aligned = ring.window(64, 448)
    assert np.shares_memory(aligned._backend.words, ring._words)
    # Windows touching the partially-filled live-edge word are copies:
    # sharing that word with the writer would corrupt the view's counts
    # on the next append.
    live_edge = ring.window(128, 500)
    assert not np.shares_memory(live_edge._backend.words, ring._words)
    unaligned = ring.window(13, 205)
    assert not np.shares_memory(unaligned._backend.words, ring._words)


def test_live_edge_window_immutable_after_append():
    """Regression: a window ending mid-word must not see later appends."""
    ring = PackedRingBuffer(2, retention=1024)
    ring.append(np.zeros((10, 2), dtype=bool))
    view = ring.window(0, 10)
    assert view._backend.congestion_counts().tolist() == [0, 0]
    ring.append(np.ones((10, 2), dtype=bool))
    assert view._backend.congestion_counts().tolist() == [0, 0]
    assert view.all_good_frequency([0, 1]) == 1.0


def test_aligned_snapshot_views_survive_compaction():
    """Views alias old storage; compaction must never rewrite it."""
    rng = np.random.default_rng(3)
    horizon = _random_horizon(rng, 4000, 3)
    ring = PackedRingBuffer(3, retention=256)
    ring.append(horizon[:256])
    view = ring.window(64, 192)  # fully word-aligned: immutable snapshot
    expected = horizon[64:192].copy()
    ring.append(horizon[256:4000])  # forces evictions + compactions
    assert ring.compactions > 0
    assert (view.matrix == expected).all()


def test_eviction_bounds_retention_and_rejects_evicted_windows():
    rng = np.random.default_rng(4)
    horizon = _random_horizon(rng, 3000, 6)
    ring = PackedRingBuffer(6, retention=200)  # rounds up to 256
    assert ring.retention == 256
    pos = 0
    while pos < 3000:
        n = int(rng.integers(1, 70))
        ring.append(horizon[pos : pos + n])
        pos += n
        first, end = ring.first_interval, ring.end_interval
        assert end - first <= ring.retention
        assert first % 64 == 0
        assert (ring.view().matrix == horizon[first:end]).all()
    with pytest.raises(EstimationError):
        ring.window(0, 100)
    with pytest.raises(EstimationError):
        ring.window(ring.first_interval, ring.end_interval + 1)


def test_oversized_chunk_split():
    rng = np.random.default_rng(5)
    horizon = _random_horizon(rng, 2000, 2)
    ring = PackedRingBuffer(2, retention=128)
    ring.append(horizon)  # single append far beyond retention
    first, end = ring.first_interval, ring.end_interval
    assert end == 2000 and end - first <= ring.retention
    assert (ring.view().matrix == horizon[first:end]).all()


def test_snapshot_restore_round_trip():
    rng = np.random.default_rng(6)
    horizon = _random_horizon(rng, 900, 4)
    ring = PackedRingBuffer(4, retention=512)
    ring.append(horizon)
    words, first, end = ring.snapshot()
    restored = PackedRingBuffer.restore(words, first, end, retention=512)
    assert restored.first_interval == ring.first_interval
    assert restored.end_interval == ring.end_interval
    assert (restored.view().matrix == ring.view().matrix).all()
    # The restored ring keeps ingesting from where it left off.
    extra = _random_horizon(rng, 90, 4)
    restored.append(extra)
    tail = restored.window(end, end + 90)
    assert (tail.matrix == extra).all()


def test_restore_validation():
    with pytest.raises(EstimationError):
        PackedRingBuffer.restore(np.zeros((2, 1), np.uint64), 3, 70, 128)
    with pytest.raises(EstimationError):
        PackedRingBuffer.restore(np.zeros((2, 1), np.uint64), 0, 100, 128)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    retention=st.integers(65, 400),
    paths=st.integers(1, 8),
)
def test_property_random_chunking_matches_dense(seed, retention, paths):
    rng = np.random.default_rng(seed)
    total = int(rng.integers(100, 1200))
    horizon = _random_horizon(rng, total, paths)
    ring = PackedRingBuffer(paths, retention=retention)
    pos = 0
    while pos < total:
        n = int(rng.integers(1, 97))
        ring.append(horizon[pos : pos + n])
        pos += n
    first, end = ring.first_interval, ring.end_interval
    assert end == total
    assert end - first <= ring.retention
    assert (ring.view().matrix == horizon[first:end]).all()
    # Random interior window
    if end - first > 2:
        lo = int(rng.integers(first, end - 1))
        hi = int(rng.integers(lo + 1, end + 1))
        assert (ring.window(lo, hi).matrix == horizon[lo:hi]).all()
