"""Tests for per-peer reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.peers import build_peer_report
from repro.probability.base import EstimatorConfig
from repro.probability.correlation_complete import CorrelationCompleteEstimator
from repro.simulation.congestion import CongestionModel, Driver
from repro.simulation.probing import oracle_path_status


@pytest.fixture
def fitted(fig1_case1):
    truth = CongestionModel(
        4,
        [
            Driver(0.2, frozenset({0})),
            Driver(0.4, frozenset({1, 2})),
        ],
    )
    states = truth.sample(6000, np.random.default_rng(1))
    observations = oracle_path_status(fig1_case1, states)
    model = CorrelationCompleteEstimator(
        EstimatorConfig(requested_subset_size=2, pruning_tolerance=0.0)
    ).fit(fig1_case1, observations)
    return truth, model


def test_summaries_cover_every_peer(fig1_case1, fitted):
    _, model = fitted
    report = build_peer_report(fig1_case1, model)
    assert {s.asn for s in report.summaries} == {0, 1, 2}


def test_worst_peer_ranked_first(fig1_case1, fitted):
    _, model = fitted
    report = build_peer_report(fig1_case1, model)
    # AS 1 = {e2, e3} with p = 0.4 is the worst peer.
    assert report.ranked()[0].asn == 1


def test_any_link_congestion(fig1_case1, fitted):
    truth, model = fitted
    report = build_peer_report(fig1_case1, model)
    summary = report.summary_for(1)
    assert summary is not None
    expected = 1.0 - truth.prob_all_good([1, 2])
    assert summary.any_link_congestion == pytest.approx(expected, abs=0.05)


def test_correlated_group_found(fig1_case1, fitted):
    truth, model = fitted
    report = build_peer_report(fig1_case1, model)
    groups = [g for g in report.correlated_groups if g.links == frozenset({1, 2})]
    assert groups
    assert groups[0].asn == 1
    assert groups[0].joint_probability == pytest.approx(
        truth.prob_all_congested([1, 2]), abs=0.05
    )
    assert groups[0].identifiable


def test_min_joint_probability_filters(fig1_case1, fitted):
    _, model = fitted
    report = build_peer_report(fig1_case1, model, min_joint_probability=0.99)
    assert report.correlated_groups == []


def test_missing_peer(fig1_case1, fitted):
    _, model = fitted
    report = build_peer_report(fig1_case1, model)
    assert report.summary_for(42) is None


def test_table_rendering(fig1_case1, fitted):
    _, model = fitted
    report = build_peer_report(fig1_case1, model)
    table = report.to_table()
    assert "peer" in table
    assert "AS1" in table


def test_identifiable_fraction_bounds(fig1_case1, fitted):
    _, model = fitted
    report = build_peer_report(fig1_case1, model)
    for summary in report.summaries:
        assert 0.0 <= summary.identifiable_fraction <= 1.0
