"""Tests for assumptions/conditions machinery and Table 2."""

from __future__ import annotations

from repro.model.assumptions import (
    Assumption,
    Condition,
    TABLE2_MATRIX,
    check_identifiability,
    check_identifiability_pp,
    table2_rows,
)
from repro.topology.builders import line_topology


def test_identifiability_holds_on_fig1(fig1_case1):
    assert check_identifiability(fig1_case1) == []


def test_identifiability_fails_on_line():
    # Every link of a line is traversed by exactly the same (single) path.
    network = line_topology(3)
    violations = check_identifiability(network)
    assert len(violations) == 2  # links 1 and 2 collide with link 0


def test_identifiability_pp_holds_case1(fig1_case1):
    assert check_identifiability_pp(fig1_case1) == []


def test_identifiability_pp_fails_case2(fig1_case2):
    # The paper's example: {e1, e4} and {e2, e3} are both traversed by
    # {p1, p2, p3}.
    violations = check_identifiability_pp(fig1_case2)
    assert (frozenset({0, 3}), frozenset({1, 2})) in violations or (
        frozenset({1, 2}),
        frozenset({0, 3}),
    ) in violations


def test_identifiability_pp_respects_max_size(fig1_case2):
    # Bounding to singletons hides the size-2 violation.
    assert check_identifiability_pp(fig1_case2, max_subset_size=1) == []


def test_table2_sparsity_column():
    sources = TABLE2_MATRIX["Sparsity"]
    assert Assumption.HOMOGENEITY.value in sources
    assert Assumption.INDEPENDENCE.value not in sources
    assert Condition.IDENTIFIABILITY.value in sources
    assert "Other approx./heuristic" in sources


def test_table2_bayesian_independence_columns():
    step1 = TABLE2_MATRIX["Bayesian-Indep. Step 1"]
    step2 = TABLE2_MATRIX["Bayesian-Indep. Step 2"]
    assert Assumption.INDEPENDENCE.value in step1
    assert Assumption.INDEPENDENCE.value in step2
    # The approximation/heuristic row is checked only for step 2.
    assert "Other approx./heuristic" not in step1
    assert "Other approx./heuristic" in step2


def test_table2_bayesian_correlation_columns():
    step1 = TABLE2_MATRIX["Bayesian-Corr. Step 1"]
    assert Assumption.CORRELATION_SETS.value in step1
    assert Condition.IDENTIFIABILITY_PP.value in step1
    assert Assumption.INDEPENDENCE.value not in step1


def test_table2_rows_rendering():
    rows = table2_rows()
    labels = [label for label, _ in rows]
    assert labels[0] == "Separability"
    assert labels[-1] == "Other approx./heuristic"
    # Separability and E2E Monitoring are sources for every algorithm.
    for label, checked in rows[:2]:
        assert all(checked.values())
