"""Packed vs dense observation backends: equivalence property tests.

The bit-packed ``uint64`` backend is the production storage; the dense
boolean backend is the executable specification. These tests check that
every frequency query agrees between the two across randomized observation
matrices (including horizons that are not a multiple of 64, all-good and
all-congested extremes), that interval slicing agrees at arbitrary (word-
aligned and unaligned) offsets, and that every estimator produces
*identical* fitted probabilities (to 1e-9) regardless of backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.packed import WORD_BITS, pack_bool_matrix, unpack_words
from repro.model.status import ObservationMatrix
from repro.probability.base import EstimatorConfig
from repro.probability.correlation_complete import CorrelationCompleteEstimator
from repro.probability.correlation_heuristic import CorrelationHeuristicEstimator
from repro.probability.independence import IndependenceEstimator
from repro.simulation.congestion import CongestionModel, Driver
from repro.simulation.experiment import run_experiment
from repro.simulation.probing import oracle_path_status
from repro.simulation.scenarios import ScenarioConfig, ScenarioKind, build_scenario


def _random_matrices(seed: int, trials: int):
    """Randomized (T, paths) boolean matrices with deliberate edge cases."""
    rng = np.random.default_rng(seed)
    for trial in range(trials):
        num_intervals = int(rng.integers(1, 400))
        num_paths = int(rng.integers(1, 30))
        kind = trial % 5
        if kind == 0:
            matrix = np.zeros((num_intervals, num_paths), dtype=bool)
        elif kind == 1:
            matrix = np.ones((num_intervals, num_paths), dtype=bool)
        elif kind == 2:
            # Horizon precisely off a word boundary.
            num_intervals = int(rng.integers(1, 7)) * WORD_BITS + int(
                rng.integers(1, WORD_BITS)
            )
            matrix = rng.random((num_intervals, num_paths)) < rng.random()
        else:
            matrix = rng.random((num_intervals, num_paths)) < rng.random()
        yield matrix


def _random_path_sets(rng, num_paths, count=12):
    sets = [[]]
    for _ in range(count):
        size = int(rng.integers(1, min(num_paths, 6) + 1))
        sets.append(sorted(rng.choice(num_paths, size=size, replace=False).tolist()))
    return sets


def test_pack_roundtrip_exact():
    rng = np.random.default_rng(0)
    for matrix in _random_matrices(seed=1, trials=40):
        words = pack_bool_matrix(matrix)
        assert words.dtype == np.uint64
        assert np.array_equal(unpack_words(words, matrix.shape[0]), matrix)


def test_query_equivalence_randomized():
    rng = np.random.default_rng(2)
    for matrix in _random_matrices(seed=3, trials=60):
        packed = ObservationMatrix(matrix, backend="packed")
        dense = ObservationMatrix(matrix, backend="dense")
        assert packed.backend_name == "packed"
        assert dense.backend_name == "dense"
        sets = _random_path_sets(rng, matrix.shape[1])
        np.testing.assert_allclose(
            packed.all_good_frequencies(sets),
            dense.all_good_frequencies(sets),
            rtol=0,
            atol=0,
        )
        for path_set in sets:
            assert packed.all_good_frequency(path_set) == dense.all_good_frequency(
                path_set
            )
        np.testing.assert_allclose(
            packed.path_congestion_frequency(),
            dense.path_congestion_frequency(),
            rtol=0,
            atol=0,
        )
        for tolerance in (0.0, 0.15):
            assert packed.always_good_paths(tolerance) == dense.always_good_paths(
                tolerance
            )
            assert packed.always_congested_paths(
                tolerance
            ) == dense.always_congested_paths(tolerance)
        interval = int(rng.integers(matrix.shape[0]))
        assert packed.congested_paths(interval) == dense.congested_paths(interval)


def test_slice_equivalence_aligned_and_unaligned():
    rng = np.random.default_rng(4)
    matrix = rng.random((500, 17)) < 0.3
    packed = ObservationMatrix(matrix, backend="packed")
    dense = ObservationMatrix(matrix, backend="dense")
    windows = [(0, 64), (64, 192), (0, 500), (3, 130), (65, 100), (499, 500), (100, 100)]
    windows += [tuple(sorted(rng.integers(0, 501, size=2).tolist())) for _ in range(20)]
    for start, stop in windows:
        packed_window = packed.slice_intervals(start, stop)
        dense_window = dense.slice_intervals(start, stop)
        assert packed_window.num_intervals == stop - start
        if stop > start:
            assert np.array_equal(packed_window.matrix, matrix[start:stop])
            assert np.array_equal(dense_window.matrix, matrix[start:stop])
            sets = _random_path_sets(rng, matrix.shape[1], count=6)
            np.testing.assert_allclose(
                packed_window.all_good_frequencies(sets),
                dense_window.all_good_frequencies(sets),
                rtol=0,
                atol=0,
            )


def test_slice_out_of_range_rejected():
    obs = ObservationMatrix(np.zeros((10, 2), dtype=bool))
    with pytest.raises(IndexError):
        obs.slice_intervals(-1, 5)
    with pytest.raises(IndexError):
        obs.slice_intervals(0, 11)


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        ObservationMatrix(np.zeros((2, 2), dtype=bool), backend="sparse")


def test_padding_bits_never_leak():
    # All-congested with T one past a word boundary: the 63 padding bits
    # must not count as good intervals.
    matrix = np.ones((WORD_BITS + 1, 3), dtype=bool)
    packed = ObservationMatrix(matrix)
    assert packed.all_good_frequency([0]) == 0.0
    assert packed.always_congested_paths() == frozenset({0, 1, 2})


def _dense_copy(observations: ObservationMatrix) -> ObservationMatrix:
    return ObservationMatrix(observations.matrix, backend="dense")


@pytest.fixture(scope="module")
def fig_scenario_observations(request):
    """A Fig. 3/4-style simulated experiment on the toy topology."""
    from repro.topology.builders import fig1_topology

    network = fig1_topology(case=1)
    truth = CongestionModel(
        4,
        [
            Driver(probability=0.3, links=frozenset({1, 2})),
            Driver(probability=0.2, links=frozenset({0})),
        ],
    )
    states = truth.sample(3000, np.random.default_rng(11))
    return network, oracle_path_status(network, states)


@pytest.mark.parametrize(
    "estimator_factory",
    [
        lambda: IndependenceEstimator(EstimatorConfig(pruning_tolerance=0.0)),
        lambda: CorrelationHeuristicEstimator(EstimatorConfig(pruning_tolerance=0.0)),
        lambda: CorrelationCompleteEstimator(EstimatorConfig(pruning_tolerance=0.0)),
    ],
    ids=["independence", "heuristic", "complete"],
)
def test_estimator_outputs_identical_across_backends(
    fig_scenario_observations, estimator_factory
):
    network, observations = fig_scenario_observations
    packed_model = estimator_factory().fit(network, observations)
    dense_model = estimator_factory().fit(network, _dense_copy(observations))
    assert set(packed_model.subsets) == set(dense_model.subsets)
    for subset in packed_model.subsets:
        assert packed_model.prob_all_good(subset) == pytest.approx(
            dense_model.prob_all_good(subset), abs=1e-9
        )
        assert packed_model.is_identifiable(subset) == dense_model.is_identifiable(
            subset
        )
    for link in range(network.num_links):
        assert packed_model.link_congestion_probability(link) == pytest.approx(
            dense_model.link_congestion_probability(link), abs=1e-9
        )


def test_estimator_outputs_identical_on_simulated_scenario():
    """Backend equivalence on a generated Brite scenario with noisy probing."""
    from repro.topology.brite import BriteConfig, generate_brite_network

    network = generate_brite_network(
        BriteConfig(
            num_ases=8,
            as_attachment=2,
            routers_per_as=3,
            inter_as_links=2,
            num_vantage_points=2,
            num_destinations=20,
            num_paths=40,
        ),
        13,
    )
    scenario = build_scenario(network, ScenarioConfig(kind=ScenarioKind.RANDOM), 17)
    experiment = run_experiment(scenario, 400, random_state=19)
    assert experiment.observations.backend_name == "packed"
    for estimator_factory in (
        lambda: IndependenceEstimator(EstimatorConfig(seed=3)),
        lambda: CorrelationCompleteEstimator(EstimatorConfig(seed=3)),
    ):
        packed_model = estimator_factory().fit(network, experiment.observations)
        dense_model = estimator_factory().fit(
            network, _dense_copy(experiment.observations)
        )
        packed_marginals = packed_model.link_marginals()
        dense_marginals = dense_model.link_marginals()
        np.testing.assert_allclose(packed_marginals, dense_marginals, rtol=0, atol=1e-9)


def test_frequency_cache_counters_and_bound():
    from repro.probability.base import FrequencyCache

    rng = np.random.default_rng(23)
    obs = ObservationMatrix(rng.random((200, 10)) < 0.3)
    cache = FrequencyCache(obs, max_entries=4)
    sets = [[0], [1], [2], [0, 1]]
    cache.query_many(sets)
    assert cache.misses == 4
    assert cache.hits == 0
    cache.query_many(sets)
    assert cache.hits == 4
    # Exceeding the bound evicts FIFO instead of growing without limit.
    cache([3])
    cache([4])
    assert cache.evictions == 2
    assert cache.hits == 4
    # The evicted oldest entry recomputes (a miss), fresh ones hit.
    cache([0])
    assert cache.misses == 7


def test_fit_report_exposes_cache_counters(fig_scenario_observations):
    network, observations = fig_scenario_observations
    model = CorrelationCompleteEstimator(
        EstimatorConfig(pruning_tolerance=0.0)
    ).fit(network, observations)
    report = model.report
    assert report.frequency_cache_misses > 0
    assert report.frequency_cache_hits > 0
