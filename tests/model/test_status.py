"""Tests for ObservationMatrix (repro.model.status)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.status import ObservationMatrix


def _obs(matrix):
    return ObservationMatrix(np.asarray(matrix, dtype=bool))


def test_dimensions():
    obs = _obs([[0, 1], [1, 0], [0, 0]])
    assert obs.num_intervals == 3
    assert obs.num_paths == 2


def test_rejects_non_2d():
    with pytest.raises(ValueError):
        ObservationMatrix(np.zeros(3, dtype=bool))


def test_congested_paths_per_interval():
    obs = _obs([[0, 1, 1], [0, 0, 0]])
    assert obs.congested_paths(0) == frozenset({1, 2})
    assert obs.congested_paths(1) == frozenset()


def test_path_congestion_frequency():
    obs = _obs([[0, 1], [1, 1], [0, 1], [0, 1]])
    assert obs.path_congestion_frequency().tolist() == [0.25, 1.0]


def test_all_good_frequency_single():
    obs = _obs([[0, 1], [1, 0], [0, 0], [0, 0]])
    assert obs.all_good_frequency([0]) == 0.75
    assert obs.all_good_frequency([1]) == 0.75


def test_all_good_frequency_joint():
    obs = _obs([[0, 1], [1, 0], [0, 0], [0, 0]])
    assert obs.all_good_frequency([0, 1]) == 0.5


def test_all_good_frequency_empty_set():
    obs = _obs([[1, 1]])
    assert obs.all_good_frequency([]) == 1.0


def test_always_good_paths_strict():
    obs = _obs([[0, 1], [0, 0], [0, 1]])
    assert obs.always_good_paths() == frozenset({0})


def test_always_good_paths_tolerance():
    # Path 1 congested once in 10 intervals: within a 0.15 tolerance.
    matrix = np.zeros((10, 2), dtype=bool)
    matrix[3, 1] = True
    obs = ObservationMatrix(matrix)
    assert obs.always_good_paths() == frozenset({0})
    assert obs.always_good_paths(0.15) == frozenset({0, 1})


def test_always_congested_paths():
    obs = _obs([[1, 1], [1, 0], [1, 1]])
    assert obs.always_congested_paths() == frozenset({0})


def test_always_congested_tolerance():
    matrix = np.ones((10, 1), dtype=bool)
    matrix[0, 0] = False
    obs = ObservationMatrix(matrix)
    assert obs.always_congested_paths() == frozenset()
    assert obs.always_congested_paths(0.15) == frozenset({0})


def test_tolerance_validation():
    obs = _obs([[0]])
    with pytest.raises(ValueError):
        obs.always_good_paths(1.0)
    with pytest.raises(ValueError):
        obs.always_congested_paths(-0.1)
