"""The pluggable frequency-kernel layer: dispatch, fallback, and parity.

Two families of guarantees:

* **Dispatch** — ``REPRO_KERNEL`` / :func:`set_kernel` / :func:`use_kernel`
  select kernels predictably, unknown names fail fast, and requesting a
  kernel that cannot run degrades to the numpy kernel with exactly one
  warning.
* **Parity** — every available kernel is bit-identical to the dense
  reference backend on a property sweep over window offsets, window
  lengths, and path-set widths, including unaligned ``slice_intervals``
  windows and the strided word views served by the streaming ring buffer.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.model import kernels
from repro.model.kernels import (
    NumpyKernel,
    active_kernel,
    get_kernel,
    kernel_names,
    microbenchmark,
    requested_kernel,
    reset_kernel_selection,
    set_kernel,
    use_kernel,
)
from repro.model.kernels.numpy_kernel import (
    GATHER_WORKING_SET_BYTES,
    MIN_GATHER_CHUNK,
    gather_chunk,
)
from repro.model.status import ObservationMatrix
from repro.streaming.buffer import PackedRingBuffer


@pytest.fixture(autouse=True)
def clean_selection(monkeypatch):
    """Each test starts from env-free auto selection and leaves no override."""
    monkeypatch.delenv(kernels.KERNEL_ENV, raising=False)
    reset_kernel_selection()
    yield
    reset_kernel_selection()


def available_kernel_names():
    return [name for name in kernel_names() if get_kernel(name).is_available()]


class TestDispatch:
    def test_registry_prefers_compiled_kernel(self):
        assert kernel_names() == ["numba", "numpy"]

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            get_kernel("simd")

    def test_numpy_kernel_always_available(self):
        kernel = get_kernel("numpy")
        assert kernel.is_available()
        assert kernel.unavailable_reason() == ""
        assert not kernel.releases_gil

    def test_auto_resolves_to_an_available_kernel(self):
        assert requested_kernel() == kernels.AUTO
        assert active_kernel().is_available()

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "numpy")
        assert requested_kernel() == "numpy"
        assert active_kernel() is get_kernel("numpy")

    def test_set_kernel_overrides_env(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "auto")
        assert set_kernel("numpy") is get_kernel("numpy")
        assert active_kernel() is get_kernel("numpy")
        set_kernel(None)
        assert requested_kernel() == "auto"

    def test_set_kernel_unknown_rejected(self):
        with pytest.raises(ValueError):
            set_kernel("simd")

    def test_use_kernel_scopes_and_restores(self):
        before = requested_kernel()
        with use_kernel("numpy") as kernel:
            assert kernel is get_kernel("numpy")
            assert active_kernel() is kernel
        assert requested_kernel() == before

    def test_use_kernel_none_is_a_noop_scope(self):
        with use_kernel(None) as kernel:
            assert kernel is active_kernel()
        assert requested_kernel() == kernels.AUTO

    def test_unavailable_request_falls_back_with_one_warning(self, monkeypatch):
        """``REPRO_KERNEL=numba`` without numba degrades cleanly, warns once."""
        numba = kernels.KERNELS["numba"]
        monkeypatch.setattr(numba, "is_available", lambda: False)
        monkeypatch.setattr(
            numba, "unavailable_reason", lambda: "numba is not importable"
        )
        monkeypatch.setenv(kernels.KERNEL_ENV, "numba")
        reset_kernel_selection()
        with pytest.warns(RuntimeWarning, match="falling back to 'numpy'"):
            assert active_kernel() is get_kernel("numpy")
        # Re-resolving the same unavailable request must stay silent.
        kernels._resolved = None  # force re-resolution without clearing _warned
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert active_kernel() is get_kernel("numpy")

    def test_auto_fallback_is_silent(self, monkeypatch):
        numba = kernels.KERNELS["numba"]
        monkeypatch.setattr(numba, "is_available", lambda: False)
        reset_kernel_selection()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert active_kernel().is_available()

    def test_microbenchmark_times_available_kernels(self):
        for name in available_kernel_names():
            assert microbenchmark(get_kernel(name), repeats=1) > 0.0


class TestGatherChunk:
    def test_narrow_batches_get_large_chunks(self):
        chunk = gather_chunk(widest=2, num_words=4, index_itemsize=8)
        assert chunk > MIN_GATHER_CHUNK
        assert chunk * 2 * (4 * 8 + 8) <= GATHER_WORKING_SET_BYTES

    def test_wide_sets_floor_instead_of_degenerating(self):
        # One very wide set over a long horizon used to drive chunk to 1.
        assert gather_chunk(widest=4096, num_words=512, index_itemsize=8) == (
            MIN_GATHER_CHUNK
        )

    def test_index_dtype_counts_toward_the_working_set(self):
        ignoring = gather_chunk(widest=64, num_words=1, index_itemsize=0)
        counting = gather_chunk(widest=64, num_words=1, index_itemsize=8)
        assert counting < ignoring

    def test_degenerate_shapes(self):
        assert gather_chunk(widest=0, num_words=0, index_itemsize=8) >= (
            MIN_GATHER_CHUNK
        )


def _reference_union_popcounts(matrix, path_sets):
    """Dense OR/any reference for congested-in-any counts."""
    counts = []
    for path_set in path_sets:
        members = list(path_set)
        if not members:
            counts.append(0)
        else:
            counts.append(int(matrix[:, members].any(axis=1).sum()))
    return np.array(counts, dtype=np.int64)


@pytest.mark.parametrize("name", kernel_names())
class TestKernelParity:
    @pytest.fixture(autouse=True)
    def skip_unavailable(self, name):
        kernel = get_kernel(name)
        if not kernel.is_available():
            pytest.skip(f"kernel {name} unavailable: "
                        f"{kernel.unavailable_reason()}")

    def test_union_popcounts_unit_contract(self, name):
        """Raw kernel call vs dense reference, dummy padding and length 0."""
        rng = np.random.default_rng(31)
        matrix = rng.random((3 * 64 + 17, 19)) < 0.35
        obs = ObservationMatrix(matrix, backend="packed")
        words = obs._backend.words
        num_paths = matrix.shape[1]
        path_sets = [[], [0], [num_paths - 1], list(range(num_paths))] + [
            sorted(rng.choice(num_paths, size=k, replace=False).tolist())
            for k in (1, 2, 5, 9)
            for _ in range(4)
        ]
        widest = max(len(s) for s in path_sets)
        indices = np.full((len(path_sets), widest), num_paths, dtype=np.intp)
        lengths = np.zeros(len(path_sets), dtype=np.int64)
        for i, members in enumerate(path_sets):
            indices[i, : len(members)] = members
            lengths[i] = len(members)
        counts = get_kernel(name).union_popcounts(words, indices, lengths, {})
        np.testing.assert_array_equal(
            counts, _reference_union_popcounts(matrix, path_sets)
        )

    def test_congestion_counts_match_dense(self, name):
        rng = np.random.default_rng(37)
        matrix = rng.random((5 * 64 + 1, 11)) < 0.5
        obs = ObservationMatrix(matrix, backend="packed")
        with use_kernel(name):
            np.testing.assert_array_equal(
                obs._backend.congestion_counts(),
                matrix.sum(axis=0, dtype=np.int64),
            )

    def test_window_offset_length_widest_sweep(self, name):
        """Packed == dense over a (offset, length, widest) property grid.

        Offsets straddle word boundaries (so unaligned ``slice_intervals``
        bit-shifting is exercised), lengths include sub-word, exact-word,
        and multi-word windows, and path-set widths run from empty to the
        full path population.
        """
        rng = np.random.default_rng(41)
        matrix = rng.random((7 * 64 + 13, 23)) < 0.3
        packed = ObservationMatrix(matrix, backend="packed")
        dense = ObservationMatrix(matrix, backend="dense")
        num_paths = matrix.shape[1]
        with use_kernel(name):
            for offset in (0, 1, 31, 63, 64, 65, 127, 200):
                for length in (1, 7, 63, 64, 65, 130, 256):
                    stop = offset + length
                    if stop > matrix.shape[0]:
                        continue
                    packed_window = packed.slice_intervals(offset, stop)
                    dense_window = dense.slice_intervals(offset, stop)
                    sets = [[]] + [
                        sorted(
                            rng.choice(
                                num_paths, size=widest, replace=False
                            ).tolist()
                        )
                        for widest in (1, 2, 3, 5, 8, 13, num_paths)
                    ]
                    np.testing.assert_array_equal(
                        packed_window.all_good_frequencies(sets),
                        dense_window.all_good_frequencies(sets),
                    )
                    interval = int(rng.integers(length))
                    assert packed_window.congested_paths(
                        interval
                    ) == dense_window.congested_paths(interval)

    def test_strided_ring_window_views(self, name):
        """Ring-buffer windows are strided word views; kernels must accept
        them and agree with a dense recomputation of the same rows."""
        rng = np.random.default_rng(43)
        num_paths = 13
        ring = PackedRingBuffer(num_paths, retention=512)
        stream = rng.random((900, num_paths)) < 0.25
        with use_kernel(name):
            for lo in range(0, stream.shape[0], 37):
                ring.append(stream[lo : lo + 37])
            for start, stop in (
                (ring.first_interval, ring.first_interval + 64),
                (ring.first_interval + 3, ring.first_interval + 130),
                (ring.end_interval - 65, ring.end_interval),
                (ring.first_interval, ring.end_interval),
            ):
                window = ring.window(start, stop)
                reference = ObservationMatrix(
                    stream[start:stop], backend="dense"
                )
                sets = [[]] + [
                    sorted(
                        rng.choice(num_paths, size=k, replace=False).tolist()
                    )
                    for k in (1, 3, 6, num_paths)
                ]
                np.testing.assert_array_equal(
                    window.all_good_frequencies(sets),
                    reference.all_good_frequencies(sets),
                )
                np.testing.assert_array_equal(
                    window.path_congestion_frequency(),
                    reference.path_congestion_frequency(),
                )

    def test_kernels_agree_pairwise(self, name):
        """Every available kernel reproduces the numpy kernel's exact bits."""
        rng = np.random.default_rng(47)
        matrix = rng.random((321, 17)) < 0.4
        sets = [[]] + [
            sorted(rng.choice(17, size=k, replace=False).tolist())
            for k in (1, 2, 4, 8, 17)
            for _ in range(3)
        ]
        with use_kernel("numpy"):
            reference = ObservationMatrix(matrix).all_good_frequencies(sets)
        with use_kernel(name):
            np.testing.assert_array_equal(
                ObservationMatrix(matrix).all_good_frequencies(sets), reference
            )


def test_numpy_kernel_scratch_caches_padded_words():
    rng = np.random.default_rng(53)
    matrix = rng.random((100, 5)) < 0.5
    obs = ObservationMatrix(matrix, backend="packed")
    kernel = NumpyKernel()
    words = obs._backend.words
    scratch: dict = {}
    indices = np.array([[0, 5], [1, 2]], dtype=np.intp)  # 5 = dummy row
    lengths = np.array([1, 2], dtype=np.int64)
    first = kernel.union_popcounts(words, indices, lengths, scratch)
    padded = scratch["words_padded"]
    assert padded.shape == (6, words.shape[1])
    assert not padded[-1].any()
    second = kernel.union_popcounts(words, indices, lengths, scratch)
    assert scratch["words_padded"] is padded
    np.testing.assert_array_equal(first, second)


def test_backend_pickle_drops_kernel_scratch():
    import pickle

    rng = np.random.default_rng(59)
    obs = ObservationMatrix(rng.random((130, 7)) < 0.5, backend="packed")
    obs.all_good_frequencies([[0, 1], [2]])  # populate the scratch
    restored = pickle.loads(pickle.dumps(obs))
    assert restored._backend._kernel_scratch == {}
    np.testing.assert_array_equal(
        restored.all_good_frequencies([[0, 1], [2]]),
        obs.all_good_frequencies([[0, 1], [2]]),
    )
